"""Benchmark: Figure 13 — compaction execution parallelism.

Paper: 1.9x throughput from 8 sub-compaction workers (13a) and
+17.9% from co-scheduling compactions (13b), most visible on
write-heavy workloads where compaction gates PUT progress.
"""

from conftest import ratio, run_once

from repro.bench.experiments import fig13


def test_fig13_compaction(benchmark):
    result = run_once(benchmark, fig13.run)
    print()
    print(result)
    # 13a: WR-ONLY scales with sub-compaction count.
    intra = {row["x"]: row["kqps"] for row in result.rows
             if row["part"] == "13a" and row["workload"] == "WR-ONLY"}
    assert ratio(intra[8], intra[1]) > 1.5
    # 13b: co-scheduling more compactions helps WR-ONLY.
    inter = {row["x"]: row["kqps"] for row in result.rows
             if row["part"] == "13b" and row["workload"] == "WR-ONLY"}
    assert ratio(inter[4], inter[1]) > 1.1
