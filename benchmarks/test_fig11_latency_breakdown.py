"""Benchmark: Figure 11 — GET/PUT/DEL latency breakdown.

Paper: SSD accesses dominate (97.4%/97.6% across commands); PUT adds
only ~10.5 us despite its third NVMe access because the first two
overlap (it lands *below* GET, 84 vs 116 us).
"""

from conftest import run_once

from repro.bench.experiments import fig11


def test_fig11_latency_breakdown(benchmark):
    result = run_once(benchmark, fig11.run)
    print()
    print(result)
    for value_size in (256, 1024):
        get = result.row_for(command="GET", value_size=value_size)
        put = result.row_for(command="PUT", value_size=value_size)
        dele = result.row_for(command="DEL", value_size=value_size)
        # SSD time dominates every command.
        for row in (get, put, dele):
            assert row["ssd_pct"] > 90
        # GET = 2 serial reads; PUT overlaps its first two accesses.
        assert put["total_us"] < get["total_us"]
        # DEL ~ PUT minus the value write.
        assert abs(dele["total_us"] - put["total_us"]) < 0.3 * put["total_us"]
