"""Benchmark: Figure 9 — throughput during node join/leave.

Paper: a 3-node cluster (R=3) running YCSB-A/B sees throughput dips
after join/leave start (up to 49%/66% for YCSB-A) from COPY traffic
and view-inconsistency NACKs, recovering after each operation ends.
"""

from conftest import run_once

from repro.bench.experiments import fig9


def test_fig9_join_leave(benchmark):
    result = run_once(benchmark, fig9.run, workloads=("B",))
    print()
    print(result)
    rows = [r for r in result.rows if r["workload"] == "YCSB-B"]
    phases = {r["phase"] for r in rows}
    # Both membership operations actually ran during the window.
    assert "joining" in phases
    assert "leaving" in phases
    steady = [r["kqps"] for r in rows if r["phase"] == "steady"]
    assert steady and min(steady) > 0
    # Throughput never collapses to zero mid-run (drop the wind-down
    # tail buckets where the drivers are finishing).
    active = [r["kqps"] for r in rows[:-2]]
    assert min(active) > 0.1 * max(active)
