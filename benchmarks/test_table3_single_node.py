"""Benchmark: Table 3 — single-node comparison on a SmartNIC JBOF.

Paper: FAWN-JBOF has the lowest latency (one access) but only
7.7-24.1% usable capacity and ~61-88 KQPS (synchronous I/O);
KVell-JBOF has the worst latency (B-tree on a wimpy core) and <3%
capacity; LEED exposes 95%+ of the flash, reads at ~116/133 us, and
delivers the highest node throughput (856-860 rd / 577-608 wr KQPS).
"""

from conftest import ratio, run_once

from repro.bench.experiments import table3


def test_table3_single_node(benchmark):
    result = run_once(benchmark, table3.run)
    print()
    print(result)
    leed = result.row_for(system="LEED", value_size=256)
    fawn = result.row_for(system="FAWN-JBOF", value_size=256)
    kvell = result.row_for(system="KVell-JBOF", value_size=256)
    # Capacity: LEED >> FAWN >> KVell.
    assert leed["max_capacity_pct"] > 75
    assert fawn["max_capacity_pct"] < 40
    assert kvell["max_capacity_pct"] < 5
    # Latency: FAWN single-access fastest; KVell slowest; LEED ~2x FAWN.
    assert fawn["rd_lat_us"] < leed["rd_lat_us"] < kvell["rd_lat_us"]
    assert 1.5 < ratio(leed["rd_lat_us"], fawn["rd_lat_us"]) < 3.0
    # Throughput: LEED >> KVell > FAWN (reads).
    assert leed["rd_kqps"] > 1.5 * kvell["rd_kqps"]
    assert kvell["rd_kqps"] > 2 * fawn["rd_kqps"]
    # PUT adds little over GET on LEED (overlapped accesses).
    assert leed["wr_lat_us"] < leed["rd_lat_us"]
