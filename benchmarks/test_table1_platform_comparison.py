"""Benchmark: Table 1 — data store node comparison.

Paper rows: skew 16/64/1024, network density 0.25/3.2/12.5 GbE per
core, storage density 5K/125K/500K IOPS per core, and the
balls-into-bins maximum load shrinking with node count.
"""

from conftest import run_once

from repro.bench.experiments import table1


def test_table1_platform_comparison(benchmark):
    result = run_once(benchmark, table1.run)
    print()
    print(result)
    rows = {row["platform"]: row for row in result.rows}
    pi = rows["raspberry-pi-3b-plus"]
    server = rows["xeon-server-jbof"]
    stingray = rows["stingray-ps1100r"]
    # Row 1: storage hierarchy skew explodes on the SmartNIC JBOF.
    assert stingray["flash_dram_skew"] > 5 * server["flash_dram_skew"]
    assert server["flash_dram_skew"] > pi["flash_dram_skew"]
    # Row 2: network density, 0.25 GbE (Pi) to 12.5 GbE (Stingray).
    assert pi["gbe_per_core"] == 0.25
    assert stingray["gbe_per_core"] == 12.5
    # Row 3: storage density up by two orders of magnitude.
    assert stingray["iops_per_core"] > 100 * pi["iops_per_core"]
    # Row 4: a 3-node cluster sees a far larger max load than 100 nodes.
    assert stingray["max_load_at_1m"] > 10 * pi["max_load_at_1m"]
