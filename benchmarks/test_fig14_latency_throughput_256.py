"""Benchmark: Figure 14 (appendix) — latency vs throughput at 256 B.

Same sweep as Figure 6 with small objects; the paper reports similar
shapes to the 1 KB case.
"""

from conftest import run_once

from repro.bench.experiments import fig6


def test_fig14_latency_throughput_256(benchmark):
    result = run_once(benchmark, fig6.run, value_size=256,
                      workloads=("B", "WR"))
    print()
    print(result)
    for workload in ("YCSB-B", "YCSB-WR"):
        leed = [r for r in result.rows
                if r["workload"] == workload
                and r["system"] == "SmartNIC-LEED"]
        assert leed
        # Throughput tracks offered load until saturation.
        series = sorted(leed, key=lambda r: r["offered_kqps"])
        assert series[0]["kqps"] <= series[-1]["kqps"] * 1.2
