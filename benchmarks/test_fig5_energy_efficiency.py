"""Benchmark: Figure 5 — queries/Joule across the three platforms.

Paper: SmartNIC-LEED beats Server-KVell by 4.2x/3.8x and
Embedded-FAWN by 17.5x/19.1x on average (256 B / 1 KB), with the
one crossover on read-only YCSB-C where KVell's in-memory index
shines.
"""

import statistics

from conftest import ratio, run_once

from repro.bench.experiments import fig5


def test_fig5_energy_efficiency(benchmark):
    result = run_once(benchmark, fig5.run, value_sizes=(256, 1024))
    print()
    print(result)
    for value_size, kvell_floor, fawn_floor in ((256, 1.3, 5), (1024, 1.5, 5)):
        leed = {row["workload"]: row["kq_per_joule"] for row in result.rows
                if row["system"] == "SmartNIC-LEED"
                and row["value_size"] == value_size}
        kvell = {row["workload"]: row["kq_per_joule"] for row in result.rows
                 if row["system"] == "Server-KVell"
                 and row["value_size"] == value_size}
        fawn = {row["workload"]: row["kq_per_joule"] for row in result.rows
                if row["system"] == "Embedded-FAWN"
                and row["value_size"] == value_size}
        # Mean advantage over Server-KVell (paper: 4.2x/3.8x).
        kvell_ratios = [ratio(leed[w], kvell[w]) for w in leed]
        assert statistics.mean(kvell_ratios) > kvell_floor, value_size
        # Mean advantage over Embedded-FAWN (paper: 17.5x/19.1x).
        fawn_ratios = [ratio(leed[w], fawn[w]) for w in leed]
        assert statistics.mean(fawn_ratios) > fawn_floor, value_size
        # LEED wins the read-heavy workloads outright.
        for workload in ("YCSB-B", "YCSB-D"):
            assert leed[workload] > kvell[workload] > fawn[workload], \
                (value_size, workload)
