"""Benchmark: Figure 8 — load-aware scheduling on/off.

Paper (YCSB-B): +52.2% throughput and -34.4%/-33.7% average/99.9th
latency with the coupled token engine + flow control, weakening under
severe incast.  In this reproduction the throughput gain appears at
high skew; the tail-latency collapse is the robust signal (the
simulator's FCFS queues are work-conserving, so shedding-and-retry is
the only throughput cost overload can inflict — see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.bench.experiments import fig8


def test_fig8_load_aware(benchmark):
    result = run_once(benchmark, fig8.run)
    print()
    print(result)
    for skew in (0.9, 0.99):
        on = result.row_for(workload="YCSB-B", skew=skew, ls="on")
        off = result.row_for(workload="YCSB-B", skew=skew, ls="off")
        # High-skew YCSB-B: flow control collapses the tail while
        # keeping (or beating) the throughput.
        assert on["kqps"] > 0.9 * off["kqps"], skew
        assert on["p999_ms"] < 0.5 * off["p999_ms"], skew
    extreme_on = result.row_for(workload="YCSB-B", skew=0.99, ls="on")
    extreme_off = result.row_for(workload="YCSB-B", skew=0.99, ls="off")
    assert extreme_on["kqps"] > extreme_off["kqps"]
