"""Benchmark: Figure 6 — latency vs throughput, 1 KB objects.

Paper: Server-KVell reaches the highest raw throughput (2.9x LEED on
average), Embedded-FAWN(100) is 22x below KVell even with ideal
scaling, and near saturation LEED delivers the lowest latencies.
"""

from conftest import run_once

from repro.bench.experiments import fig6

WORKLOADS = ("A", "B", "C")


def test_fig6_latency_throughput(benchmark):
    result = run_once(benchmark, fig6.run, workloads=WORKLOADS)
    print()
    print(result)
    for workload in ("YCSB-" + w for w in WORKLOADS):
        rows = [r for r in result.rows if r["workload"] == workload]
        by_system = {}
        for row in rows:
            by_system.setdefault(row["system"], []).append(row)
        # Latency grows with offered load for every real system.
        for system in ("SmartNIC-LEED", "Embedded-FAWN(10)"):
            series = sorted(by_system[system],
                            key=lambda r: r["offered_kqps"])
            assert series[-1]["avg_latency_ms"] >= series[0][
                "avg_latency_ms"] * 0.8
        # JBOF systems sustain more than the FAWN(100) ideal; the
        # margin is widest on read-heavy mixes (write-heavy YCSB-A is
        # bounded by hot-key chain serialization at simulator scale).
        leed_peak = max(r["kqps"] for r in by_system["SmartNIC-LEED"])
        fawn100_peak = max(r["kqps"]
                           for r in by_system["Embedded-FAWN(100)"])
        if workload == "YCSB-A":
            assert leed_peak > fawn100_peak
        else:
            assert leed_peak > 2 * fawn100_peak
        # FAWN latencies are milliseconds; LEED sub-millisecond at
        # moderate load.
        leed_low = min(r["avg_latency_ms"]
                       for r in by_system["SmartNIC-LEED"])
        fawn_low = min(r["avg_latency_ms"]
                       for r in by_system["Embedded-FAWN(10)"])
        assert fawn_low > 2 * leed_low
