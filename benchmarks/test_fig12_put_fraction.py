"""Benchmark: Figure 12 — throughput vs PUT fraction.

Paper: LEED loses ~3% of throughput per +10% PUT; FAWN on the Pi
*gains* with PUTs because appends are sequential on its SD medium.
"""

from conftest import run_once

from repro.bench.experiments import fig12


def test_fig12_put_fraction(benchmark):
    result = run_once(benchmark, fig12.run)
    print()
    print(result)
    leed = sorted((r for r in result.rows
                   if r["system"] == "LEED-stingray-1024B"),
                  key=lambda r: r["put_pct"])
    fawn = sorted((r for r in result.rows
                   if r["system"] == "FAWN-pi-1024B"),
                  key=lambda r: r["put_pct"])
    # FAWN rises with PUT share.
    assert fawn[-1]["kqps"] > 1.3 * fawn[0]["kqps"]
    # LEED stays within a modest band (paper: ~3% per +10% PUT).
    leed_values = [r["kqps"] for r in leed]
    assert min(leed_values) > 0.7 * max(leed_values)
