"""Shared helpers for the benchmark suite.

Every benchmark runs one paper experiment at the "quick" scale inside
``benchmark.pedantic(..., rounds=1)`` — the simulation is
deterministic, so repeated rounds would only re-measure wall time —
prints the reproduced table, and asserts the paper's qualitative
relationships (who wins, roughly by how much, where crossovers fall).
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer; return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def ratio(numerator: float, denominator: float) -> float:
    return numerator / max(denominator, 1e-12)
