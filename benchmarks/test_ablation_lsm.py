"""Benchmark: the §3.2.1 data-structure choice — circular log vs LSM.

The paper picked a circular log over an LSM because LSMs burn scarce
SmartNIC cycles in their merge-sort phase and amplify writes across
level rewrites.  With a leveled LSM implemented, the claim is
measured directly on identical hardware.
"""

from conftest import ratio, run_once

from repro.bench.experiments import ablation_lsm


def test_ablation_lsm(benchmark):
    result = run_once(benchmark, ablation_lsm.run)
    print()
    print(result)
    for workload in ("YCSB-WR", "YCSB-A"):
        log_row = result.row_for(design="circular-log", workload=workload)
        lsm_row = result.row_for(design="lsm-tree", workload=workload)
        # The paper's claim: the LSM spends more CPU per operation...
        assert lsm_row["cpu_us_per_op"] > 1.5 * log_row["cpu_us_per_op"]
        # ...and amplifies writes more.
        assert lsm_row["write_amplification"] > \
            log_row["write_amplification"]
