"""Benchmark: Figure 10 — intra-JBOF data swapping under write skew.

Paper: write-only Zipf; at 0.99 skew swapping buys +15.4%/+17.2%
throughput and ~29%/32% avg/99.9th latency savings.  At simulator
scale the hot-segment lock (per-key serialization) binds before SSD
bandwidth, so the tail-latency saving is the robust signal here.
"""

from conftest import run_once

from repro.bench.experiments import fig10


def test_fig10_swap(benchmark):
    result = run_once(benchmark, fig10.run, value_sizes=(1024,))
    print()
    print(result)
    on_99 = result.row_for(value_size=1024, skew=0.99, swap="on")
    off_99 = result.row_for(value_size=1024, skew=0.99, swap="off")
    # Swapping actually engaged under skew...
    assert on_99["redirects"] > 0
    # ...and pays off in tail latency without hurting throughput.
    assert on_99["p999_ms"] < off_99["p999_ms"]
    assert on_99["kqps"] > 0.9 * off_99["kqps"]
    # No redirects when the load is balanced enough.
    on_low = result.row_for(value_size=1024, skew=0.1, swap="on")
    assert on_low["kqps"] > 0
