"""Benchmark: Figure 7 — CRRS vs plain chain replication.

Paper: under high Zipf skew, CRRS multiplies YCSB-C throughput (up to
7.3x at 0.9) and collapses average/99.9th latencies, by letting every
clean replica serve reads instead of only the tail.
"""

from conftest import ratio, run_once

from repro.bench.experiments import fig7


def test_fig7_crrs(benchmark):
    result = run_once(benchmark, fig7.run)
    print()
    print(result)
    for workload in ("YCSB-B", "YCSB-C"):
        for skew in (0.9, 0.99):
            on = result.row_for(workload=workload, skew=skew, crrs="on")
            off = result.row_for(workload=workload, skew=skew, crrs="off")
            # CRRS improves throughput and average latency.
            assert on["kqps"] > off["kqps"], (workload, skew)
            assert on["avg_ms"] < off["avg_ms"], (workload, skew)
    # Read-only sees the biggest multiplier (every op is shippable).
    c_on = result.row_for(workload="YCSB-C", skew=0.99, crrs="on")
    c_off = result.row_for(workload="YCSB-C", skew=0.99, crrs="off")
    assert ratio(c_on["kqps"], c_off["kqps"]) > 1.2
