"""Benchmark: the §3.7 design choice — shipping vs version queries.

The paper rejected the CRAQ-style alternative because it "generates
more internal traffic across JBOFs" without improving performance.
Both are implemented; this ablation quantifies the choice.
"""

from conftest import run_once

from repro.bench.experiments import ablation_craq


def test_ablation_craq(benchmark):
    result = run_once(benchmark, ablation_craq.run)
    print()
    print(result)
    ship = result.row_for(mode="ship")
    craq = result.row_for(mode="craq")
    # CRAQ resolves dirty reads with version queries instead of ships...
    assert craq["version_queries"] > 0
    assert ship["version_queries"] == 0
    # ...which costs extra cross-JBOF bytes (the paper's objection)...
    assert craq["extra_bytes"] > 0
    # ...without buying meaningful throughput.
    assert craq["kqps"] < 1.15 * ship["kqps"]
