"""Benchmark: Figure 1 — raw-IO energy efficiency vs capacity.

Paper: at 16 TB, SmartNIC JBOFs beat server JBOFs by 4.8x/4.7x and
Raspberry Pis by 56.5x/26.4x for 4 KB random read / sequential write.
"""

from conftest import ratio, run_once

from repro.bench.experiments import fig1


def test_fig1_platform_efficiency(benchmark):
    result = run_once(benchmark, fig1.run)
    print()
    print(result)
    # At the 16 TB point, the SmartNIC JBOF wins on both patterns.
    for pattern in ("read", "write"):
        at_16tb = {row["platform"]: row["kiops_per_joule"]
                   for row in result.rows
                   if row["pattern"] == pattern
                   and row["capacity_gb"] == 16384.0}
        smartnic_vs_server = ratio(at_16tb["smartnic-jbof"],
                                   at_16tb["server-jbof"])
        smartnic_vs_pi = ratio(at_16tb["smartnic-jbof"],
                               at_16tb["raspberry-pi"])
        assert smartnic_vs_server > 1.5, pattern
        assert smartnic_vs_pi > 15, pattern
    # The Pi curve is flat: adding nodes does not change efficiency.
    pi_rows = [row["kiops_per_joule"] for row in result.rows
               if row["platform"] == "raspberry-pi"
               and row["pattern"] == "read"]
    assert max(pi_rows) - min(pi_rows) < 0.2 * max(pi_rows)
