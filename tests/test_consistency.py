"""Consistency stress tests for CRRS under concurrency (§3.7).

The paper's claim: CRRS does not violate the (per-key strong)
consistency model of chain replication because all read/write
interleavings on a dirty key are serialized by the tail.  These tests
drive concurrent writers and readers and check the observable
guarantees:

* **monotonic committed versions** — once a client has seen version
  N of a key, no later read returns a version < N *that was committed
  before N* (we check the stronger, simpler invariant: version
  numbers never regress for a reader once writes are acknowledged);
* **no phantom values** — a read only ever returns a value that some
  writer actually wrote.
"""

import random

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig

from conftest import drive


def make_cluster(seed=11, crrs=True):
    config = ClusterConfig(
        num_jbofs=3, ssds_per_jbof=2, num_clients=2, replication=3,
        store=StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        crrs=crrs, seed=seed)
    cluster = LeedCluster(config)
    cluster.start()
    return cluster


class TestCrrsConsistency:
    @pytest.mark.parametrize("crrs", [True, False])
    def test_no_phantom_values(self, crrs):
        cluster = make_cluster(crrs=crrs)
        sim = cluster.sim
        writer_client = cluster.clients[0]
        reader_client = cluster.clients[1]
        written = set()
        observed = []

        def writer():
            for version in range(60):
                value = b"v%04d" % version
                written.add(value)
                result = yield from writer_client.put(b"contended", value)
                assert result.ok

        def reader():
            for _ in range(60):
                result = yield from reader_client.get(b"contended")
                if result.ok:
                    observed.append(result.value)
                yield sim.timeout(50)

        procs = [sim.process(writer()), sim.process(reader())]
        sim.run(until=sim.all_of(procs))
        assert observed, "reader never saw a value"
        for value in observed:
            assert value in written

    def test_acknowledged_writes_monotonic_for_single_client(self):
        """A single client alternating put/get must see its own writes
        in order — never an older acknowledged version."""
        cluster = make_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            last_seen = -1
            for version in range(50):
                result = yield from client.put(b"mono", b"%06d" % version)
                assert result.ok
                got = yield from client.get(b"mono")
                assert got.ok
                seen = int(got.value)
                assert seen >= last_seen, (seen, last_seen)
                assert seen >= version  # read-your-own-write
                last_seen = seen

        drive(sim, proc())

    def test_concurrent_readers_during_write_burst(self):
        """Readers racing a write burst see only fresh-enough data:
        each observed version is >= the last version whose ack the
        writer received before the read began."""
        cluster = make_cluster()
        sim = cluster.sim
        writer_client = cluster.clients[0]
        reader_client = cluster.clients[1]
        acked = [-1]
        violations = []

        def writer():
            for version in range(40):
                result = yield from writer_client.put(b"burst",
                                                      b"%06d" % version)
                assert result.ok
                acked[0] = version

        def reader():
            for _ in range(80):
                floor = acked[0]
                result = yield from reader_client.get(b"burst")
                if result.ok:
                    seen = int(result.value)
                    if seen < floor:
                        violations.append((seen, floor))
                yield sim.timeout(20)

        procs = [sim.process(writer()), sim.process(reader())]
        sim.run(until=sim.all_of(procs))
        assert not violations, violations[:5]

    def test_interleaved_keys_do_not_cross_talk(self):
        cluster = make_cluster()
        sim = cluster.sim

        def worker(client, namespace, rounds):
            for round_index in range(rounds):
                key = b"%s-%d" % (namespace, round_index % 7)
                value = b"%s=%d" % (namespace, round_index)
                result = yield from client.put(key, value)
                assert result.ok
                got = yield from client.get(key)
                assert got.ok
                assert got.value.startswith(namespace + b"=")

        procs = [
            sim.process(worker(cluster.clients[0], b"alpha", 40)),
            sim.process(worker(cluster.clients[1], b"beta", 40)),
        ]
        sim.run(until=sim.all_of(procs))

    def test_dirty_residue_bounded_under_churn(self):
        """Dirty bits are transient: after the burst drains, every
        replica's dirty map is empty again."""
        cluster = make_cluster()
        sim = cluster.sim

        def burst(client, seed):
            rng = random.Random(seed)
            for _ in range(80):
                key = b"hot-%d" % rng.randrange(5)
                result = yield from client.put(key, b"x" * 64)
                assert result.ok

        procs = [sim.process(burst(cluster.clients[0], 1)),
                 sim.process(burst(cluster.clients[1], 2))]
        sim.run(until=sim.all_of(procs))

        def settle():
            yield sim.timeout(5_000)

        drive(sim, settle())
        residue = sum(len(rt.dirty) for node in cluster.jbofs
                      for rt in node.vnodes.values())
        assert residue == 0
