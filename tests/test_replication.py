"""Conformance tests for the pluggable replication layer.

Every registered protocol (chain, craq, abd) must provide the same
client-observable guarantees: acknowledged writes are readable,
per-key committed stamps never move backwards, and writes journaled
in the WAL survive a crash via replay.  Protocol selection and the
``DirtyReadMode`` deprecation shim are covered here too.
"""

import warnings

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.jbof import LeedOptions
from repro.core.protocol import KVRequest
from repro.core.replication import (
    AbdQuorum,
    ChainReplication,
    CraqChain,
    DirtyReadMode,
    make_policy,
    protocol_names,
)
from repro.core.wal import WriteAheadLog

from conftest import drive

PROTOCOLS = ("chain", "craq", "abd")


def make_cluster(protocol="chain", seed=21, options=None, num_jbofs=3):
    config = ClusterConfig(
        num_jbofs=num_jbofs, ssds_per_jbof=1, num_clients=1, replication=3,
        store=StoreConfig(num_segments=32, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        options=options or LeedOptions(),
        replication_protocol=protocol,
        seed=seed)
    cluster = LeedCluster(config)
    cluster.start()
    return cluster


def replicas_of(cluster, key):
    """(node, runtime) for every replica of ``key``, in chain order."""
    chain = cluster.clients[0].local_ring.chain_ids_for_key(key)
    out = []
    for vnode_id in chain:
        for node in cluster.jbofs:
            if vnode_id in node.vnodes:
                out.append((node, node.vnodes[vnode_id]))
    return out


class TestConformance:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_read_your_writes(self, protocol):
        cluster = make_cluster(protocol)
        client = cluster.clients[0]

        def proc():
            for i in range(8):
                key = b"key-%d" % i
                result = yield from client.put(key, b"value-%d" % i)
                assert result.ok, (protocol, result.status)
                reply = yield from client.get(key)
                assert reply.ok and reply.value == b"value-%d" % i

        drive(cluster.sim, proc())

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_overwrites_visible(self, protocol):
        cluster = make_cluster(protocol)
        client = cluster.clients[0]

        def proc():
            for i in range(4):
                result = yield from client.put(b"k", b"v%d" % i)
                assert result.ok
            reply = yield from client.get(b"k")
            assert reply.ok and reply.value == b"v3"
            result = yield from client.delete(b"k")
            assert result.ok
            reply = yield from client.get(b"k")
            assert not reply.ok

        drive(cluster.sim, proc())

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_committed_stamps_monotonic(self, protocol):
        cluster = make_cluster(protocol)
        client = cluster.clients[0]
        sim = cluster.sim
        key = b"stamped"
        seen = {}

        def proc():
            for i in range(4):
                result = yield from client.put(key, b"v%d" % i)
                assert result.ok
                yield sim.timeout(2_000)  # acks drain
                for node, runtime in replicas_of(cluster, key):
                    stamp = node.policy.committed_stamp(runtime, key)
                    previous = seen.get(runtime.vnode_id)
                    if previous is not None:
                        assert stamp >= previous, (protocol, i)
                    seen[runtime.vnode_id] = stamp

        drive(sim, proc())
        # At least one replica observed a real (non-zero) stamp.
        assert any(bool(stamp) and stamp != (0, "")
                   for stamp in seen.values())

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_wal_replay_after_crash(self, protocol):
        cluster = make_cluster(protocol)
        client = cluster.clients[0]
        sim = cluster.sim
        node = cluster.jbofs[0]
        vnode_id = sorted(node.vnodes)[0]
        runtime = node.vnodes[vnode_id]
        stamp = (1, node.address) if protocol == "abd" else 1

        def proc():
            # Journal an intent as if a write crashed mid-replication.
            runtime.wal.append("put", b"lost", b"lost-value", stamp)
            node.crash()
            yield sim.timeout(100_000.0)
            node.recover()
            yield sim.timeout(500_000.0)
            reply = yield from client.get(b"lost")
            return reply

        reply = drive(sim, proc())
        assert reply.ok and reply.value == b"lost-value"
        assert len(runtime.wal) == 0
        report = node.wal_recovery
        assert report["pending"] == 1 and report["failed"] == 0
        assert report["replayed"] + report["skipped"] == 1
        assert report["completed_at_us"] is not None

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_acknowledged_writes_drain_the_wal(self, protocol):
        cluster = make_cluster(protocol)
        client = cluster.clients[0]
        sim = cluster.sim

        def proc():
            for i in range(6):
                result = yield from client.put(b"drain-%d" % i, b"x" * 64)
                assert result.ok
            yield sim.timeout(10_000.0)

        drive(sim, proc())
        for node in cluster.jbofs:
            for runtime in node.vnodes.values():
                assert len(runtime.wal) == 0, (protocol, runtime.vnode_id)

    def test_wal_disabled_journals_nothing(self):
        cluster = make_cluster(
            "chain", options=LeedOptions(wal_enabled=False))
        client = cluster.clients[0]

        def proc():
            result = yield from client.put(b"k", b"v")
            assert result.ok

        drive(cluster.sim, proc())
        for node in cluster.jbofs:
            assert node.wal_recovery is None
            for runtime in node.vnodes.values():
                assert runtime.wal.stats.appended == 0
            node.recover()
            assert node.wal_recovery is None


class TestAbdFaultTolerance:
    def test_writes_survive_one_replica_down(self):
        cluster = make_cluster("abd")
        client = cluster.clients[0]
        sim = cluster.sim
        key = b"quorum-key"
        replicas = replicas_of(cluster, key)
        assert len(replicas) == 3
        coordinator_node, coordinator = replicas[0]
        victim_node = next(node for node, _ in replicas
                           if node is not coordinator_node)

        def proc():
            result = yield from client.put(key, b"before-crash")
            assert result.ok
            victim_node.crash()
            # Address a live replica directly: a majority (2 of 3)
            # is still up, so the write and the read must commit.
            reply = yield cluster.clients[0].rpc.call(
                coordinator_node.address, "kv",
                KVRequest("put", key, b"after-crash",
                          coordinator.vnode_id,
                          client.local_ring.version, 0, "t"),
                64, timeout_us=500_000.0)
            assert reply.status == "ok", reply.status
            reply = yield cluster.clients[0].rpc.call(
                coordinator_node.address, "kv",
                KVRequest("get", key, None, coordinator.vnode_id,
                          client.local_ring.version, 0, "t"),
                32, timeout_us=500_000.0)
            return reply

        reply = drive(sim, proc())
        assert reply.status == "ok" and reply.value == b"after-crash"

    def test_read_repairs_stale_replica(self):
        cluster = make_cluster("abd")
        client = cluster.clients[0]
        sim = cluster.sim
        key = b"repair-key"

        replicas = replicas_of(cluster, key)
        coordinator_node, coordinator = replicas[0]
        stale_node, stale_runtime = replicas[1]

        def proc():
            result = yield from client.put(key, b"fresh")
            assert result.ok
            # Roll one replica's stamp back so it looks stale, and
            # crash the third so the read quorum must include it.
            stale_node.policy._set_stamp(stale_runtime.vnode_id, key,
                                         (0, ""))
            replicas[2][0].crash()
            reply = yield client.rpc.call(
                coordinator_node.address, "kv",
                KVRequest("get", key, None, coordinator.vnode_id,
                          client.local_ring.version, 0, "t"),
                32, timeout_us=500_000.0)
            assert reply.status == "ok" and reply.value == b"fresh"
            yield sim.timeout(10_000.0)
            return stale_node.policy.stamp_of(stale_runtime.vnode_id, key)

        stamp = drive(sim, proc())
        assert stamp > (0, "")
        repairs = sum(rt.stats.read_repairs
                      for node in cluster.jbofs
                      for rt in node.vnodes.values())
        assert repairs >= 1


class TestSelection:
    def test_default_is_chain(self):
        cluster = make_cluster("chain")
        for node in cluster.jbofs:
            assert type(node.policy) is ChainReplication

    def test_dirty_read_mode_selects_craq(self):
        cluster = make_cluster(
            "chain", options=LeedOptions(dirty_read_mode=DirtyReadMode.CRAQ))
        for node in cluster.jbofs:
            assert type(node.policy) is CraqChain

    def test_explicit_abd(self):
        cluster = make_cluster("abd")
        for node in cluster.jbofs:
            assert type(node.policy) is AbdQuorum

    def test_registry_lists_builtins(self):
        assert set(PROTOCOLS) <= set(protocol_names())

    def test_unknown_protocol_rejected_at_construction(self):
        with pytest.raises(ValueError) as err:
            ClusterConfig(
                num_jbofs=3, ssds_per_jbof=1, num_clients=1,
                store=StoreConfig(num_segments=32,
                                  key_log_bytes=1 << 20,
                                  value_log_bytes=4 << 20),
                replication_protocol="paxos")
        message = str(err.value)
        assert "paxos" in message
        for name in PROTOCOLS:
            assert name in message

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("raft", None)


class TestDirtyReadMode:
    def test_member_passes_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            options = LeedOptions(dirty_read_mode=DirtyReadMode.CRAQ)
        assert options.dirty_read_mode is DirtyReadMode.CRAQ

    def test_string_coerces_with_deprecation(self):
        with pytest.warns(DeprecationWarning):
            options = LeedOptions(dirty_read_mode="craq")
        assert options.dirty_read_mode is DirtyReadMode.CRAQ

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            LeedOptions(dirty_read_mode="gossip")

    def test_str_roundtrip(self):
        assert str(DirtyReadMode.SHIP) == "ship"
        assert DirtyReadMode.SHIP == "ship"


class TestDeterminism:
    def _digest(self, protocol, seed=33):
        cluster = make_cluster(protocol, seed=seed)
        cluster.sim.enable_schedule_digest()
        client = cluster.clients[0]

        def proc():
            for i in range(12):
                result = yield from client.put(b"d-%d" % i, b"v" * 32)
                assert result.ok
            for i in range(12):
                reply = yield from client.get(b"d-%d" % i)
                assert reply.ok

        drive(cluster.sim, proc())
        return cluster.sim.schedule_digest

    def test_same_protocol_same_schedule(self):
        assert self._digest("chain") == self._digest("chain")
        assert self._digest("abd") == self._digest("abd")

    def test_protocols_schedule_differently(self):
        assert self._digest("chain") != self._digest("abd")


class TestWalUnit:
    def test_fifo_ack_per_key(self):
        wal = WriteAheadLog("t")
        first = wal.append("put", b"k", b"v1", 1)
        second = wal.append("put", b"k", b"v2", 2)
        assert len(wal) == 2
        wal.ack(b"k")
        remaining = wal.unacknowledged()
        assert [r.lsn for r in remaining] == [second.lsn]
        assert first.lsn not in {r.lsn for r in remaining}
        wal.ack(b"k")
        assert len(wal) == 0
        assert wal.stats.acked == 2

    def test_ack_record_by_lsn(self):
        wal = WriteAheadLog("t")
        record = wal.append("put", b"a", b"v", (1, "w"))
        wal.append("put", b"b", b"v", (2, "w"))
        wal.ack_record(record.lsn)
        assert [r.key for r in wal.unacknowledged()] == [b"b"]

    def test_mark_replayed_counts(self):
        wal = WriteAheadLog("t")
        one = wal.append("put", b"a", b"v", 1)
        two = wal.append("put", b"b", b"v", 2)
        wal.mark_replayed(one.lsn)
        wal.mark_replayed(two.lsn, skipped=True)
        assert wal.stats.replayed == 1
        assert wal.stats.replay_skipped == 1
        assert len(wal) == 0
