"""Design-space autotuner: determinism, caching, Pareto, validation."""

import json

import pytest

from repro.bench.explore import (ConfigSpace, Dimension, Evaluator,
                                 FitnessSpec, FleetRunner, config_digest,
                                 engine_space, leed_space, pareto_front,
                                 run_search)
from repro.bench.explore.__main__ import main as explore_main
from repro.bench.explore.fleet import make_trial, trial_key

SEED = 11
VALUE_SIZE = 256


def small_search(cache_path=None, seed=3, budget=3, strategy="random",
                 fleet=0):
    """One tiny-scale search with a fresh runner; returns (ev, outcome)."""
    space = leed_space()
    runner = FleetRunner(cache_path=cache_path, fleet=fleet)
    fitness = FitnessSpec(objective="rpj", slo_p99_us=2000.0)
    evaluator = Evaluator(space, runner, fitness, "tiny", "B",
                          VALUE_SIZE, SEED, budget)
    outcome = run_search(strategy, space, evaluator, seed)
    return evaluator, outcome


class TestConfigSpace:
    def test_stock_spaces_validate(self):
        for factory in (leed_space, engine_space):
            space = factory()
            space.validate()
            assert space.size() > 1
            # The default point must be inside the space.
            space.check_point(space.default_point())

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            Dimension("x", (1, 2), "nonsense")

    def test_default_outside_values_rejected(self):
        with pytest.raises(ValueError, match="default"):
            Dimension("x", (1, 2), "options", default=3)

    def test_duplicate_dimension_rejected(self):
        dim = Dimension("x", (1, 2), "run")
        with pytest.raises(ValueError, match="duplicate"):
            ConfigSpace([dim, dim])

    def test_unknown_options_field_fails_validation(self):
        space = ConfigSpace([Dimension("no_such_option", (1, 2))])
        with pytest.raises(TypeError, match="LeedOptions"):
            space.validate()

    def test_unknown_cluster_field_fails_validation(self):
        space = ConfigSpace(
            [Dimension("no_such_field", (1, 2), "cluster")])
        with pytest.raises(TypeError):
            space.validate()

    def test_unknown_run_field_fails_validation(self):
        space = ConfigSpace([Dimension("warpdrive", (1, 2), "run")])
        with pytest.raises(ValueError, match="warpdrive"):
            space.validate()

    def test_check_point_errors(self):
        space = leed_space()
        point = space.default_point()
        with pytest.raises(ValueError, match="unknown dimension"):
            space.check_point(dict(point, bogus=1))
        missing = dict(point)
        del missing["platform"]
        with pytest.raises(ValueError, match="missing"):
            space.check_point(missing)
        with pytest.raises(ValueError, match="allowed values"):
            space.check_point(dict(point, admission_batch=999))

    def test_neighbors_step_one_dimension(self):
        space = leed_space()
        point = space.default_point()
        for neighbor in space.neighbors(point):
            diffs = [k for k in point if point[k] != neighbor[k]]
            assert len(diffs) == 1

    def test_sim_signature_drops_wallclock_dims(self):
        space = engine_space()
        assert space.sim_signature(space.default_point()) == {}

    def test_grid_is_exhaustive_and_ordered(self):
        space = ConfigSpace([Dimension("a", (1, 2), "run"),
                             Dimension("b", ("x", "y"), "run")])
        assert list(space.grid()) == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]


class TestFitness:
    def test_objective_validated(self):
        with pytest.raises(ValueError, match="objective"):
            FitnessSpec(objective="latency")

    def test_slo_gates_feasibility(self):
        spec = FitnessSpec(objective="rpj", slo_p99_us=100.0)
        row = {"failed": 0, "p99_latency_us": 150.0,
               "requests_per_joule": 5.0, "wall_ops_per_sec": 1.0,
               "sim_ops_per_sec": 1000.0}
        assert not spec.feasible(row)
        assert spec.fitness(row)[0] == 0
        row["p99_latency_us"] = 50.0
        assert spec.feasible(row)
        row["failed"] = 2
        assert not spec.feasible(row)

    def test_feasibility_dominates_primary(self):
        spec = FitnessSpec(objective="rpj", slo_p99_us=100.0)
        fast_infeasible = {"failed": 0, "p99_latency_us": 500.0,
                           "requests_per_joule": 99.0,
                           "wall_ops_per_sec": 9.0,
                           "sim_ops_per_sec": 9000.0}
        slow_feasible = {"failed": 0, "p99_latency_us": 50.0,
                         "requests_per_joule": 1.0,
                         "wall_ops_per_sec": 1.0,
                         "sim_ops_per_sec": 100.0}
        assert (spec.fitness(slow_feasible)
                > spec.fitness(fast_infeasible))


def synthetic(rpj, kqps, p99, failed=0, fraction=1.0, tag=None):
    """A fake full-fidelity trial record for the analytic Pareto test."""
    point = {"tag": tag if tag is not None
             else "%s-%s-%s" % (rpj, kqps, p99)}
    return {
        "trial": 0, "stage": "synthetic", "ops_fraction": fraction,
        "point": point, "point_digest": config_digest(point),
        "feasible": True, "fitness": [1, rpj, kqps],
        "metrics": {"requests_per_joule": rpj,
                    "sim_ops_per_sec": kqps * 1000.0,
                    "p99_latency_us": p99, "failed": failed,
                    "figure_digest": "f"},
    }


class TestPareto:
    def test_analytic_front(self):
        """Known dominance structure on a hand-built model."""
        a = synthetic(10.0, 5.0, 100.0)   # front: best rpj
        b = synthetic(8.0, 9.0, 100.0)    # front: best kqps
        c = synthetic(9.0, 4.0, 50.0)     # front: best p99
        d = synthetic(7.0, 4.0, 120.0)    # dominated by a and b
        e = synthetic(10.0, 5.0, 110.0)   # dominated by a (worse p99)
        front = pareto_front([d, e, c, b, a])
        assert [r["point_digest"] for r in front] == [
            a["point_digest"], c["point_digest"], b["point_digest"]]

    def test_failed_and_low_fidelity_excluded(self):
        good = synthetic(1.0, 1.0, 10.0)
        failed = synthetic(99.0, 99.0, 1.0, failed=3)
        screen = synthetic(99.0, 99.0, 1.0, fraction=0.25)
        front = pareto_front([good, failed, screen])
        assert [r["point_digest"] for r in front] == [
            good["point_digest"]]

    def test_duplicate_points_collapse(self):
        a1 = synthetic(5.0, 5.0, 10.0, tag="same")
        a2 = synthetic(6.0, 6.0, 9.0, tag="same")
        front = pareto_front([a1, a2])
        assert len(front) == 1


class TestSearchDeterminism:
    def test_same_seed_same_best_and_trajectory(self):
        ev1, outcome1 = small_search(seed=3)
        ev2, outcome2 = small_search(seed=3)
        assert outcome1["best"]["point"] == outcome2["best"]["point"]
        assert ev1.trajectory_digest() == ev2.trajectory_digest()
        assert len(ev1.trials) == len(ev2.trials)

    def test_different_seed_different_trajectory(self):
        ev1, _ = small_search(seed=3)
        ev2, _ = small_search(seed=4)
        assert ev1.trajectory_digest() != ev2.trajectory_digest()

    def test_budget_is_respected(self):
        ev, _ = small_search(seed=3, budget=2)
        # default trial is budget-free; the rest charge.
        charged = [r for r in ev.trials if r["stage"] != "default"]
        assert len(charged) == 2
        assert ev.spent == 2


class TestMemoCache:
    def test_resume_runs_zero_live_trials(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        ev1, outcome1 = small_search(cache_path=cache, seed=3)
        assert ev1.runner.live_trials == len(ev1.trials)
        ev2, outcome2 = small_search(cache_path=cache, seed=3)
        assert ev2.runner.live_trials == 0
        assert ev2.runner.cache_hits == len(ev2.trials)
        assert outcome2["best"]["point"] == outcome1["best"]["point"]
        assert ev2.trajectory_digest() == ev1.trajectory_digest()

    def test_trial_key_covers_run_shape(self):
        space = leed_space()
        point = space.default_point()
        base = make_trial(point, space.overrides(point), "tiny", "B",
                          VALUE_SIZE, SEED)
        frac = make_trial(point, space.overrides(point), "tiny", "B",
                          VALUE_SIZE, SEED, ops_fraction=0.5)
        seed = make_trial(point, space.overrides(point), "tiny", "B",
                          VALUE_SIZE, SEED + 1)
        keys = {trial_key(base), trial_key(frac), trial_key(seed)}
        assert len(keys) == 3


class TestScenarioFitness:
    """Scoring design points under a repro.scenarios episode."""

    def scenario_search(self, budget=2, seed=3, cache_path=None):
        space = leed_space()
        runner = FleetRunner(cache_path=cache_path)
        fitness = FitnessSpec(objective="rpj", min_availability=0.5)
        evaluator = Evaluator(space, runner, fitness, "smoke", "B",
                              VALUE_SIZE, SEED, budget,
                              scenario="diurnal")
        outcome = run_search("random", space, evaluator, seed)
        return evaluator, outcome

    def test_scenario_rows_reported_and_deterministic(self):
        ev1, outcome1 = self.scenario_search()
        row = outcome1["default"]["metrics"]
        assert row["scenario"] == "diurnal"
        assert row["scenario_digest"]
        assert 0.0 <= row["availability"] <= 1.0
        assert row["ops"] > 0 and row["failed"] == 0
        ev2, outcome2 = self.scenario_search()
        assert ev1.trajectory_digest() == ev2.trajectory_digest()
        assert outcome1["best"]["point"] == outcome2["best"]["point"]

    def test_scenario_trials_memoize(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        ev1, _ = self.scenario_search(cache_path=cache)
        assert ev1.runner.live_trials == len(ev1.trials)
        ev2, _ = self.scenario_search(cache_path=cache)
        assert ev2.runner.live_trials == 0

    def test_trial_key_distinguishes_scenario(self):
        space = leed_space()
        point = space.default_point()
        plain = make_trial(point, space.overrides(point), "smoke", "B",
                           VALUE_SIZE, SEED)
        episode = make_trial(point, space.overrides(point), "smoke",
                             "B", VALUE_SIZE, SEED, scenario="diurnal")
        assert trial_key(plain) != trial_key(episode)

    def test_scenario_scale_validated(self):
        space = leed_space()
        point = space.default_point()
        with pytest.raises(ValueError, match="scenario scale"):
            make_trial(point, space.overrides(point), "tiny", "B",
                       VALUE_SIZE, SEED, scenario="diurnal")

    def test_min_availability_gates_feasibility(self):
        spec = FitnessSpec(min_availability=0.9)
        row = {"failed": 0, "p99_latency_us": 10.0,
               "requests_per_joule": 5.0, "wall_ops_per_sec": 1.0,
               "sim_ops_per_sec": 1000.0, "availability": 0.8}
        assert not spec.feasible(row)
        row["availability"] = 0.95
        assert spec.feasible(row)
        # Closed-loop rows carry no availability and are unaffected.
        del row["availability"]
        assert spec.feasible(row)
        with pytest.raises(ValueError, match="min_availability"):
            FitnessSpec(min_availability=1.5)

    def test_cli_rejects_bad_scenario_pairings(self):
        with pytest.raises(SystemExit):
            explore_main(["--scenario", "no_such_episode"])
        with pytest.raises(SystemExit):
            explore_main(["--scenario", "diurnal", "--scale", "tiny",
                          "--strategy", "random"])
        with pytest.raises(SystemExit):
            explore_main(["--scenario", "diurnal", "--scale", "smoke",
                          "--strategy", "hill"])


class TestCLI:
    def test_end_to_end_report(self, tmp_path):
        output = tmp_path / "BENCH_explore.json"
        markdown = tmp_path / "explore.md"
        rc = explore_main([
            "--budget", "2", "--seed", "5", "--scale", "tiny",
            "--strategy", "random", "--output", str(output),
            "--markdown", str(markdown), "--check-improves-default"])
        assert rc == 0
        report = json.loads(output.read_text())
        assert report["best"] is not None
        assert report["default"]["stage"] == "default"
        assert report["evaluations"] == 2
        assert report["trajectory_digest"]
        assert report["cpu_count"] >= 1
        assert all("figure_digest" in r["metrics"]
                   for r in report["trajectory"])
        assert report["pareto"], "feasible trials must yield a front"
        text = markdown.read_text()
        assert "Best configuration" in text
        assert report["trajectory_digest"] in text

    def test_budget_validation(self, capsys):
        with pytest.raises(SystemExit):
            explore_main(["--budget", "0"])
