"""Property tests for COPY planning (§3.8) — the no-data-loss math.

These check the *planning* invariant that re-replication correctness
rests on: after any single vnode removal, every key's new chain
members either already held the key's arc in the old ring, or appear
as the destination of a planned COPY task covering that key.

(A violation of this invariant was an actual bug during development:
merged ring arcs span multiple chain regions, so planning must split
them at every old-ring vnode position.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashring import HashRing, VNode, in_arcs, ring_position
from repro.core.membership import ControlPlane, _split_arc
from repro.net.topology import Network
from repro.sim.core import Simulator


def make_plane(num_jbofs, vnodes_per_jbof, replication):
    sim = Simulator()
    network = Network(sim)
    plane = ControlPlane(sim, network, replication=replication)
    for jbof in range(num_jbofs):
        address = "jbof%d" % jbof
        for part in range(vnodes_per_jbof):
            vnode_id = "%s/p%d" % (address, part)
            from repro.core.membership import VNodeInfo
            plane.vnodes[vnode_id] = VNodeInfo(vnode_id, address)
    plane.ring_version = 1
    return plane


class TestSplitArc:
    def test_no_cuts_returns_arc(self):
        ring = HashRing([VNode("a/p0", "a")], replication=1)
        arc = (10, 20)
        assert _split_arc(arc, ring) == [arc]

    def test_cuts_at_positions(self):
        vnodes = [VNode("n%d/p0" % i, "n%d" % i) for i in range(4)]
        ring = HashRing(vnodes, replication=2)
        lo = 0
        hi = 2**32
        pieces = _split_arc((lo, hi), ring)
        # Every ring position is a boundary; pieces tile the arc.
        assert pieces[0][0] == lo
        assert pieces[-1][1] == hi
        for (a_lo, a_hi), (b_lo, b_hi) in zip(pieces, pieces[1:]):
            assert a_hi == b_lo

    def test_pieces_cover_exactly(self):
        vnodes = [VNode("n%d/p0" % i, "n%d" % i) for i in range(5)]
        ring = HashRing(vnodes, replication=2)
        arc = (1000, 2**31)
        pieces = _split_arc(arc, ring)
        total = sum(hi - lo for lo, hi in pieces)
        assert total == arc[1] - arc[0]


class TestPlanningInvariant:
    @settings(max_examples=20, deadline=None)
    @given(num_jbofs=st.integers(min_value=3, max_value=6),
           vnodes_per_jbof=st.integers(min_value=1, max_value=3),
           replication=st.integers(min_value=2, max_value=3),
           victim_index=st.integers(min_value=0, max_value=20),
           probe_seed=st.integers(min_value=0, max_value=1000))
    def test_every_gained_arc_has_a_copy_source(
            self, num_jbofs, vnodes_per_jbof, replication, victim_index,
            probe_seed):
        plane = make_plane(num_jbofs, vnodes_per_jbof, replication)
        old_ring = plane.master_ring()
        all_vnodes = sorted(plane.vnodes)
        victim = all_vnodes[victim_index % len(all_vnodes)]
        victim_address = plane.vnodes[victim].jbof_address
        new_ring = old_ring.without_vnode(victim)
        if not len(new_ring):
            return

        gainers = plane._gaining_vnodes(old_ring, new_ring, victim)
        tasks = plane._copy_tasks_for_gain(
            old_ring, new_ring, gainers, exclude_source=victim)

        # For every probe key: each new-chain member either held the
        # key before, or receives it via a planned task whose source
        # held it before.
        for index in range(60):
            key = b"probe-%d-%04d" % (probe_seed, index)
            position = ring_position(key)
            old_chain = set(old_ring.chain_ids_for_key(key))
            new_chain = new_ring.chain_ids_for_key(key)
            for member in new_chain:
                if member in old_chain:
                    continue  # already holds the key's range
                covering = [
                    task for task in tasks
                    if task.dst_vnode == member
                    and in_arcs(position, task.arcs)]
                assert covering, (key, member, victim)
                for task in covering:
                    assert task.src_vnode in old_chain
                    assert task.src_vnode != victim

    @settings(max_examples=15, deadline=None)
    @given(num_jbofs=st.integers(min_value=3, max_value=5),
           replication=st.integers(min_value=2, max_value=3))
    def test_sources_never_on_excluded_address(self, num_jbofs,
                                               replication):
        plane = make_plane(num_jbofs, 2, replication)
        old_ring = plane.master_ring()
        dead_address = "jbof1"
        dead = [v for v in plane.vnodes
                if plane.vnodes[v].jbof_address == dead_address]
        new_ring = old_ring
        for vnode_id in dead:
            new_ring = new_ring.without_vnode(vnode_id)
        gainers = []
        for vnode_id in dead:
            gainers.extend(plane._gaining_vnodes(old_ring, new_ring,
                                                 vnode_id))
        tasks = plane._copy_tasks_for_gain(
            old_ring, new_ring, sorted(set(gainers)),
            exclude_source_address=dead_address)
        for task in tasks:
            assert task.src_address != dead_address
            assert task.dst_address != dead_address
