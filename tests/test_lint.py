"""simlint rule catalog, suppressions, CLI, and tree cleanliness.

Each rule gets a positive fixture (must fire with the right rule ID),
a clean fixture (must stay silent), and a suppression fixture.  The
fixtures are written under ``tmp_path`` in a ``repro/<layer>/``
layout so scope and layering resolution work exactly as on the real
tree.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, run, to_json, to_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, relpath, code):
    """Write ``code`` at ``tmp_path/relpath`` and lint the tree."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return run([str(tmp_path)])


def rules_hit(report):
    return {finding.rule for finding in report.findings}


class TestSIM001DirectRandomUse:
    def test_import_random_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import random

            def jitter():
                return random.random()
            """)
        assert "SIM001" in rules_hit(report)
        assert report.exit_code == 1

    def test_from_random_import_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/hw/bad.py", """\
            from random import choice
            """)
        assert "SIM001" in rules_hit(report)

    def test_named_stream_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            from repro.sim.rng import derive_stream

            def jitter(seed):
                return derive_stream(seed, "core.jitter").random()
            """)
        assert report.exit_code == 0

    def test_rng_module_allowlisted(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/sim/rng.py", """\
            import random

            RandomStream = random.Random
            """)
        assert "SIM001" not in rules_hit(report)

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import random  # simlint: ignore[SIM001]
            """)
        assert report.exit_code == 0


class TestSIM002WallClockUse:
    def test_time_time_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import time

            def stamp():
                return time.time()
            """)
        assert "SIM002" in rules_hit(report)

    def test_datetime_now_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/net/bad.py", """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """)
        assert "SIM002" in rules_hit(report)

    def test_from_time_import_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/hw/bad.py", """\
            from time import perf_counter
            """)
        assert "SIM002" in rules_hit(report)

    def test_sim_clock_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            def stamp(sim):
                return sim.now
            """)
        assert report.exit_code == 0

    def test_bench_main_allowlisted(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/bench/__main__.py", """\
            import time

            def wall_elapsed(start):
                return time.perf_counter() - start
            """)
        assert "SIM002" not in rules_hit(report)


class TestSIM003UnsortedSetIteration:
    def test_set_iteration_in_core_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            def fanout(replicas: set):
                peers = {1, 2, 3}
                for peer in peers:
                    yield peer
            """)
        assert "SIM003" in rules_hit(report)

    def test_attribute_set_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/net/bad.py", """\
            class Switch:
                def __init__(self):
                    self.links = set()

                def broadcast(self):
                    return [link for link in self.links]
            """)
        assert "SIM003" in rules_hit(report)

    def test_sorted_iteration_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            def fanout():
                peers = {1, 2, 3}
                for peer in sorted(peers):
                    yield peer
            """)
        assert report.exit_code == 0

    def test_out_of_scope_layer_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/workloads/ok.py", """\
            def fanout():
                peers = {1, 2, 3}
                for peer in peers:
                    yield peer
            """)
        assert "SIM003" not in rules_hit(report)

    def test_rebound_name_not_flagged(self, tmp_path):
        # Flow-sensitivity regression: a name that is later rebound to
        # a sorted list (the membership.py `gainers` idiom) must not
        # be reported at its post-rebinding loop.
        report = lint_snippet(tmp_path, "repro/core/ok.py", """\
            def plan(gainers):
                gainers = set(gainers)
                gainers = sorted(gainers)
                for node in gainers:
                    yield node
            """)
        assert "SIM003" not in rules_hit(report)

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            def any_one(peers: set):
                peers = {1, 2}
                for peer in peers:  # simlint: ignore[SIM003]
                    return peer
            """)
        assert report.exit_code == 0


class TestSIM004ImportLayering:
    def test_hw_importing_core_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/hw/bad.py", """\
            from repro.core.datastore import StoreConfig
            """)
        assert "SIM004" in rules_hit(report)

    def test_sim_importing_anything_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/sim/bad.py", """\
            import repro.net.topology
            """)
        assert "SIM004" in rules_hit(report)

    def test_from_repro_import_resolved(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/net/bad.py", """\
            from repro import telemetry
            """)
        assert "SIM004" in rules_hit(report)

    def test_downward_import_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            from repro.hw.ssd import NVMeSSD
            from repro.sim.core import Simulator
            """)
        assert report.exit_code == 0

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/hw/bad.py", """\
            from repro.core.datastore import StoreConfig  # simlint: ignore[SIM004]
            """)
        assert report.exit_code == 0


class TestSIM005MutableSharedState:
    def test_mutable_default_arg_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            def collect(key, acc=[]):
                acc.append(key)
                return acc
            """)
        assert "SIM005" in rules_hit(report)

    def test_module_level_mutable_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/net/bad.py", """\
            pending = {}
            """)
        assert "SIM005" in rules_hit(report)

    def test_uppercase_constant_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            DEFAULT_SIZES = (64, 128, 256)
            _CACHE_LINE = 64
            """)
        assert report.exit_code == 0

    def test_dunder_all_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/__init__.py", """\
            __all__ = ["LeedCluster"]
            """)
        assert report.exit_code == 0

    def test_none_default_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            def collect(key, acc=None):
                acc = acc if acc is not None else []
                acc.append(key)
                return acc
            """)
        assert report.exit_code == 0

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            registry = {}  # simlint: ignore[SIM005]
            """)
        assert report.exit_code == 0


class TestSIM006CrossShardNodeCall:
    def test_loop_over_registry_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            class Cluster:
                def shutdown(self):
                    for node in self.jbofs:
                        node.stop()
            """)
        assert "SIM006" in rules_hit(report)

    def test_registry_get_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            class ControlPlane:
                def copy(self, address, arcs):
                    node = self._jbofs.get(address)
                    node.begin_mirror(arcs)
            """)
        assert "SIM006" in rules_hit(report)

    def test_registry_subscript_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            class Cluster:
                def poke(self, index):
                    self.jbofs[index].heartbeat()
            """)
        assert "SIM006" in rules_hit(report)

    def test_comprehension_over_registry_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            class Cluster:
                def drain(self):
                    return [node.flush() for node in self.jbofs]
            """)
        assert "SIM006" in rules_hit(report)

    def test_attribute_reads_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            class Cluster:
                def addresses(self):
                    return [node.address for node in self.jbofs]

                def meters(self):
                    return [node.meter for node in sorted(
                        self._jbofs.values(), key=lambda n: n.address)]
            """)
        assert report.exit_code == 0

    def test_bootstrap_allowlist_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            class ControlPlane:
                def bootstrap(self, payload):
                    for node in self._jbofs.values():
                        node.apply_membership(payload)
            """)
        assert report.exit_code == 0

    def test_rpc_path_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/good.py", """\
            class Cluster:
                def shutdown(self):
                    for node in self.jbofs:
                        self.rpc.notify(node.address, "node_stop", None, 16)
            """)
        assert report.exit_code == 0

    def test_out_of_scope_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/bench/tooling.py", """\
            class Report:
                def collect(self, cluster):
                    return [node.report() for node in cluster.jbofs]
            """)
        assert report.exit_code == 0

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            class Cluster:
                def shutdown(self):
                    for node in self.jbofs:
                        node.stop()  # simlint: ignore[SIM006]
            """)
        assert report.exit_code == 0


class TestSuppressions:
    def test_bare_ignore_covers_all_rules(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import random  # simlint: ignore
            """)
        assert report.exit_code == 0

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import random  # simlint: ignore[SIM005]
            """)
        assert "SIM001" in rules_hit(report)


class TestReports:
    def test_text_format_carries_location_and_rule(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import random
            """)
        text = to_text(report)
        assert "SIM001" in text
        assert "bad.py:1:" in text
        assert "1 finding" in text

    def test_json_format_round_trips(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/bad.py", """\
            import random
            import time

            boot = time.time()
            """)
        payload = json.loads(to_json(report))
        assert payload["exit_code"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"SIM001", "SIM002"}
        assert all(f["line"] >= 1 for f in payload["findings"])

    def test_syntax_error_reported_as_error(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/broken.py", """\
            def oops(:
            """)
        assert report.exit_code == 2
        assert report.errors


class TestShippedTree:
    def test_src_is_lint_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_cli_json_on_seeded_violation(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path),
             "--format", "json"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["findings"][0]["rule"] == "SIM001"

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                        "SIM006", "SIM007", "SIM008", "SIM009"):
            assert rule_id in proc.stdout
