"""Tests for the observability layer: spans, histograms, metrics,
and the cleaned-up cluster API they ride behind."""

import json

import pytest

from repro.core.client import ClientResult, ClientStats
from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.protocol import ReadPolicy
from repro.obs.hist import GROWTH, LatencyHistogram
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer, span_coverage
from repro.sim.core import Simulator


# -- histogram -----------------------------------------------------------------

class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean_us() == 0.0
        assert hist.p99 == 0.0

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        for v in (10.0, 20.0, 30.0):
            hist.record(v)
        assert hist.mean_us() == pytest.approx(20.0)

    def test_percentiles_within_one_bucket_of_raw(self):
        # The regression guard the API change promises: histogram
        # quantiles agree with the historical raw-list quantile
        # (index = min(int(q*n), n-1)) within one log bucket (~19%).
        samples = [17.0 + 3.1 * i + (i % 7) * 41.0 for i in range(500)]
        hist = LatencyHistogram()
        for v in samples:
            hist.record(v)
        ordered = sorted(samples)
        for q in (0.50, 0.95, 0.99):
            raw = ordered[min(int(q * len(ordered)), len(ordered) - 1)]
            approx = hist.percentile(q)
            assert raw / GROWTH <= approx <= raw * GROWTH

    def test_underflow_overflow_clamped(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        hist.record(1e12)
        assert hist.count == 2
        assert hist.min_us == 0.001
        assert hist.max_us == 1e12
        # Reported percentiles stay within the observed range.
        assert 0.001 <= hist.p50 <= 1e12

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10.0)
        b.record(1000.0)
        a.merge(b)
        assert a.count == 2
        assert a.max_us == 1000.0
        assert a.sum_us == pytest.approx(1010.0)

    def test_to_dict_shape(self):
        hist = LatencyHistogram()
        hist.record(42.0)
        summary = hist.to_dict()
        for key in ("count", "mean_us", "p50_us", "p95_us", "p99_us",
                    "p999_us", "buckets"):
            assert key in summary
        assert summary["count"] == 1


# -- spans --------------------------------------------------------------------

class TestTracer:
    def test_nesting_and_ordering(self):
        sim = Simulator()
        tracer = Tracer(sim)
        root = tracer.trace("op", track="client0")
        sim.run(until=10.0)
        child = root.child("phase", cat="net")
        sim.run(until=15.0)
        child.finish()
        sim.run(until=20.0)
        root.finish()
        spans = tracer.spans
        assert [s.name for s in spans] == ["op", "phase"]
        assert spans[1].parent_id == spans[0].span_id
        assert spans[1].trace_id == spans[0].trace_id
        assert spans[0].begin_us == 0.0
        assert spans[1].begin_us == 10.0
        assert spans[1].end_us == 15.0
        assert spans[0].end_us == 20.0

    def test_finish_idempotent(self):
        sim = Simulator()
        tracer = Tracer(sim)
        ctx = tracer.trace("op", track="t")
        sim.run(until=5.0)
        ctx.finish()
        sim.run(until=9.0)
        ctx.finish({"late": True})
        assert ctx.span.end_us == 5.0
        assert ctx.span.args["late"] is True

    def test_chrome_trace_skips_open_spans(self):
        sim = Simulator()
        tracer = Tracer(sim)
        done = tracer.trace("done", track="t")
        done.finish()
        tracer.trace("open", track="t")
        doc = tracer.chrome_trace()
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["done"]

    def test_coverage_union(self):
        sim = Simulator()
        tracer = Tracer(sim)
        root = tracer.trace("op", track="t")
        a = root.child("a")
        sim.run(until=4.0)
        a.finish()
        b = root.child("b")  # overlapping start at t=4
        sim.run(until=8.0)
        b.finish()
        sim.run(until=10.0)
        root.finish()
        assert span_coverage(tracer, root.span) == pytest.approx(0.8)


# -- metrics registry ---------------------------------------------------------

class TestMetricsRegistry:
    def test_sample_record_shape(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        registry.counter("ops", 3)
        registry.register_gauge("depth", lambda: 7)
        registry.histogram("lat").record(100.0)
        record = registry.sample_now()
        assert record["t_us"] == 0.0
        assert record["counters"] == {"ops": 3.0}
        assert record["gauges"] == {"depth": 7.0}
        assert record["histograms"]["lat"]["count"] == 1

    def test_sample_every_and_stop(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        registry.sample_every(10.0)
        sim.run(until=35.0)
        assert len(registry.records) == 3
        registry.stop()  # flushes one final record at t=35
        assert len(registry.records) == 4
        sim.run()  # heap drains: the sampler exits at its next wakeup
        assert len(registry.records) == 4

    def test_sample_every_rejects_nonpositive(self):
        registry = MetricsRegistry(Simulator())
        with pytest.raises(ValueError):
            registry.sample_every(0)

    def test_bench_records_flat(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        registry.histogram("client0.latency").record(50.0)
        registry.sample_now()
        rows = registry.bench_records("smoke")
        assert rows[0]["label"] == "smoke"
        assert rows[0]["client0.latency.count"] == 1
        assert "client0.latency.p99_us" in rows[0]


# -- client stats -------------------------------------------------------------

class TestClientStatsCap:
    def test_raw_list_capped_with_warning(self, monkeypatch):
        monkeypatch.setattr("repro.core.client.LATENCY_LIST_CAP", 4)
        stats = ClientStats()
        for i in range(4):
            stats.record(ClientResult("ok", latency_us=10.0 + i))
        with pytest.warns(DeprecationWarning):
            stats.record(ClientResult("ok", latency_us=99.0))
        assert len(stats.latencies_us) == 4
        # The histogram keeps recording past the cap.
        assert stats.histogram.count == 5
        assert stats.operations == 5

    def test_quantiles_served_from_histogram(self):
        stats = ClientStats()
        for i in range(100):
            stats.record(ClientResult("ok", latency_us=float(i + 1)))
        raw = sorted(stats.latencies_us)
        rank = min(int(0.99 * len(raw)), len(raw) - 1)
        assert (raw[rank] / GROWTH <= stats.percentile_latency_us(0.99)
                <= raw[rank] * GROWTH)


# -- read policy --------------------------------------------------------------

class TestReadPolicy:
    def test_string_coercion(self):
        assert ReadPolicy.coerce("crrs") is ReadPolicy.CRRS
        assert ReadPolicy.coerce("tail") is ReadPolicy.TAIL
        assert ReadPolicy.coerce(None) is None
        assert ReadPolicy.coerce(ReadPolicy.ANY) is ReadPolicy.ANY

    def test_invalid_policy_lists_valid(self):
        with pytest.raises(ValueError, match="crrs, tail, any"):
            ReadPolicy.coerce("nearest")

    def test_str_compatibility(self):
        # Old string comparisons must keep working.
        assert ReadPolicy.TAIL == "tail"
        assert str(ReadPolicy.CRRS) == "crrs"


# -- cluster API --------------------------------------------------------------

class TestClusterApi:
    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError) as excinfo:
            ClusterConfig.from_overrides(num_jbofs=3, num_clientz=2)
        message = str(excinfo.value)
        assert "num_clientz" in message
        assert "num_clients" in message  # the valid fields are listed

    def test_cluster_ctor_validates_overrides(self):
        with pytest.raises(TypeError):
            LeedCluster(trace_interval=1)

    def test_membership_snapshot_public(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1)
        snap = cluster.control_plane.membership_snapshot()
        assert snap.replication == cluster.config.replication
        # Private alias kept for one release.
        legacy = cluster.control_plane._update_payload()
        assert legacy.vnodes == snap.vnodes

    def test_context_manager_drains_heap(self):
        with LeedCluster(num_jbofs=2, num_clients=1,
                         metrics_interval_us=1000.0) as cluster:
            cluster.start()

            def app(client):
                yield from client.put(b"k", b"v")
                result = yield from client.get(b"k")
                return result.value

            proc = cluster.sim.process(app(cluster.clients[0]))
            assert cluster.sim.run(until=proc) == b"v"
        # After shutdown the background loops exit: an open-ended run
        # terminates instead of ticking heartbeats forever.
        before = cluster.sim.now
        cluster.sim.run()
        assert cluster.sim.now < before + 10 * cluster.config.heartbeat_timeout_us
        assert cluster.metrics.records  # sampler ran while serving


# -- end-to-end tracing -------------------------------------------------------

def run_traced_cluster(seed=0):
    with LeedCluster(num_jbofs=3, num_clients=1, seed=seed,
                     trace_sample_interval=1) as cluster:
        cluster.start()

        def app(client):
            for i in range(4):
                key = ("key%d" % i).encode()
                yield from client.put(key, b"v" * 64)
                yield from client.get(key)

        proc = cluster.sim.process(app(cluster.clients[0]))
        cluster.sim.run(until=proc)
        cluster.shutdown()
        cluster.sim.run()
    return cluster


class TestEndToEndTracing:
    def test_get_coverage_and_phases(self):
        cluster = run_traced_cluster()
        tracer = cluster.tracer
        gets = [s for s in tracer.roots()
                if s.name == "client.get" and s.finished]
        assert gets, "no traced GET roots"
        for root in gets:
            assert span_coverage(tracer, root) >= 0.90
        cats = {s.cat for s in tracer.spans}
        assert {"client", "net", "engine", "device"} <= cats

    def test_engine_spans_nest_under_dispatch(self):
        cluster = run_traced_cluster()
        tracer = cluster.tracer
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            if span.cat == "engine":
                parent = by_id[span.parent_id]
                assert parent.cat in ("server", "engine")
                assert parent.begin_us <= span.begin_us

    def test_same_seed_byte_identical_export(self):
        first = run_traced_cluster(seed=3).tracer.to_json()
        second = run_traced_cluster(seed=3).tracer.to_json()
        assert first == second
        json.loads(first)  # and it is valid JSON

    def test_sampling_interval_skips_requests(self):
        with LeedCluster(num_jbofs=2, num_clients=1,
                         trace_sample_interval=2) as cluster:
            cluster.start()

            def app(client):
                for i in range(6):
                    yield from client.put(b"k%d" % i, b"v")

            proc = cluster.sim.process(app(cluster.clients[0]))
            cluster.sim.run(until=proc)
        assert len(cluster.tracer.roots()) == 3

    def test_untraced_requests_carry_no_spans(self):
        with LeedCluster(num_jbofs=2, num_clients=1) as cluster:
            cluster.start()

            def app(client):
                yield from client.put(b"k", b"v")

            proc = cluster.sim.process(app(cluster.clients[0]))
            cluster.sim.run(until=proc)
        assert cluster.tracer.spans == []
