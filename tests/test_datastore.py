"""Tests for the LEED data store: GET/PUT/DEL semantics (§3.2-3.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datastore import LeedDataStore, StoreConfig
from repro.hw.cpu import Core
from repro.hw.dram import Dram
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

from conftest import drive


def make_store(sim, quiet=True, **config_kwargs):
    defaults = dict(num_segments=64, key_log_bytes=2 << 20,
                    value_log_bytes=8 << 20)
    defaults.update(config_kwargs)
    profile = SSDProfile(capacity_bytes=32 << 20, block_size=512,
                         jitter=0.0 if quiet else 0.1)
    ssd = NVMeSSD(sim, profile, rng=RngRegistry(5))
    return LeedDataStore(sim, ssd, StoreConfig(**defaults))


class TestBasicSemantics:
    def test_put_get_roundtrip(self, sim):
        store = make_store(sim)

        def proc():
            put = yield from store.put(b"key", b"value")
            got = yield from store.get(b"key")
            return put, got

        put, got = drive(sim, proc())
        assert put.ok
        assert got.ok
        assert got.value == b"value"

    def test_get_missing(self, sim):
        store = make_store(sim)

        def proc():
            return (yield from store.get(b"ghost"))

        assert drive(sim, proc()).status == "not_found"

    def test_overwrite_returns_latest(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v1")
            yield from store.put(b"k", b"v2")
            return (yield from store.get(b"k"))

        assert drive(sim, proc()).value == b"v2"

    def test_delete_then_get(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            deleted = yield from store.delete(b"k")
            got = yield from store.get(b"k")
            return deleted, got

        deleted, got = drive(sim, proc())
        assert deleted.ok
        assert got.status == "not_found"

    def test_delete_missing(self, sim):
        store = make_store(sim)

        def proc():
            return (yield from store.delete(b"never"))

        assert drive(sim, proc()).status == "not_found"

    def test_reinsert_after_delete(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"old")
            yield from store.delete(b"k")
            yield from store.put(b"k", b"new")
            return (yield from store.get(b"k"))

        assert drive(sim, proc()).value == b"new"

    def test_empty_value_rejected(self, sim):
        store = make_store(sim)
        with pytest.raises(ValueError):
            drive(sim, store.put(b"k", b""))

    def test_live_object_accounting(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"a", b"1")
            yield from store.put(b"b", b"2")
            yield from store.put(b"a", b"3")  # overwrite: no change
            yield from store.delete(b"b")
            return store.live_objects

        assert drive(sim, proc()) == 1


class TestNVMeAccessCounts:
    """The paper's 2/3/2 device accesses for GET/PUT/DEL (§3.3)."""

    def test_get_two_accesses(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            return (yield from store.get(b"k"))

        assert drive(sim, proc()).nvme_accesses == 2

    def test_put_three_accesses(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")        # first: segment new
            return (yield from store.put(b"k", b"w"))

        assert drive(sim, proc()).nvme_accesses == 3

    def test_del_two_accesses(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            return (yield from store.delete(b"k"))

        assert drive(sim, proc()).nvme_accesses == 2

    def test_put_overlaps_read_and_value_write(self, sim):
        """PUT is cheaper than GET despite one more access (Fig. 11)."""
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v" * 256)
            put = yield from store.put(b"k", b"w" * 256)
            got = yield from store.get(b"k")
            return put.total_us, got.total_us

        put_us, get_us = drive(sim, proc())
        assert put_us < get_us

    def test_ssd_time_dominates(self, sim):
        """SSD accesses are ~97% of command latency (Fig. 11)."""
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v" * 100)
            return (yield from store.get(b"k"))

        result = drive(sim, proc())
        assert result.ssd_us / result.total_us > 0.9


class TestCapacityLimits:
    def test_value_log_full(self, sim):
        store = make_store(sim, value_log_bytes=64 << 10,
                           key_log_bytes=1 << 20)

        def proc():
            status = None
            for index in range(200):
                result = yield from store.put(b"k%03d" % index, b"v" * 1024)
                if not result.ok:
                    status = result.status
                    break
            return status

        assert drive(sim, proc()) == "store_full"

    def test_segment_full(self, sim):
        store = make_store(sim, num_segments=1, max_chain=1)

        def proc():
            status = None
            for index in range(100):
                result = yield from store.put(b"key-%04d" % index, b"v")
                if not result.ok:
                    status = result.status
                    break
            return status

        assert drive(sim, proc()) == "store_full"


class TestScan:
    def test_scan_returns_live_pairs(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"a", b"1")
            yield from store.put(b"b", b"2")
            yield from store.put(b"c", b"3")
            yield from store.delete(b"b")
            pairs = yield from store.scan()
            return dict(pairs)

        assert drive(sim, proc()) == {b"a": b"1", b"c": b"3"}

    def test_scan_with_predicate(self, sim):
        store = make_store(sim)

        def proc():
            for index in range(10):
                yield from store.put(b"k%d" % index, b"v%d" % index)
            pairs = yield from store.scan(
                predicate=lambda key: key.endswith(b"3"))
            return dict(pairs)

        assert drive(sim, proc()) == {b"k3": b"v3"}

    def test_scan_streams_batches(self, sim):
        store = make_store(sim)
        batches = []

        def visit(batch):
            batches.append(list(batch))
            yield sim.timeout(0)

        def proc():
            for index in range(7):
                yield from store.put(b"k%d" % index, b"v")
            yield from store.scan(batch_size=3, visit=visit)

        drive(sim, proc())
        assert sum(len(b) for b in batches) == 7
        assert all(len(b) <= 3 for b in batches[:-1])


class TestConcurrency:
    def test_concurrent_puts_distinct_keys(self, sim):
        store = make_store(sim)

        def writer(key, value):
            return (yield from store.put(key, value))

        procs = [sim.process(writer(b"key-%d" % i, b"val-%d" % i))
                 for i in range(20)]
        sim.run()

        def check():
            for index in range(20):
                got = yield from store.get(b"key-%d" % index)
                assert got.ok and got.value == b"val-%d" % index

        drive(sim, check())

    def test_same_segment_writes_serialize(self, sim):
        """The lock bit forces same-key writers to serialize; the last
        value to commit wins and the store never corrupts."""
        store = make_store(sim)

        def writer(value):
            return (yield from store.put(b"hot", value))

        for index in range(10):
            sim.process(writer(b"v%d" % index))
        sim.run()

        def check():
            got = yield from store.get(b"hot")
            return got

        got = drive(sim, check())
        assert got.ok
        assert got.value in {b"v%d" % i for i in range(10)}

    def test_reads_concurrent_with_writes(self, sim):
        store = make_store(sim)
        results = []

        def writer():
            for index in range(30):
                yield from store.put(b"x", b"value-%02d" % index)

        def reader():
            for _ in range(30):
                result = yield from store.get(b"x")
                if result.ok:
                    results.append(result.value)
                yield sim.timeout(10)

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert all(value.startswith(b"value-") for value in results)


class TestShadowModel:
    """Randomized operation sequences against a dict reference."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_matches_dict_semantics(self, seed):
        sim = Simulator()
        store = make_store(sim)
        rng = random.Random(seed)

        def proc():
            shadow = {}
            for step in range(120):
                key = b"k%02d" % rng.randrange(25)
                action = rng.random()
                if action < 0.5:
                    value = b"v-%d-%d" % (seed, step)
                    result = yield from store.put(key, value)
                    assert result.ok
                    shadow[key] = value
                elif action < 0.8:
                    result = yield from store.get(key)
                    if key in shadow:
                        assert result.ok and result.value == shadow[key]
                    else:
                        assert result.status == "not_found"
                else:
                    result = yield from store.delete(key)
                    if key in shadow:
                        assert result.ok
                        del shadow[key]
                    else:
                        assert result.status == "not_found"
            assert store.live_objects == len(shadow)

        process = sim.process(proc())
        sim.run(until=process)
