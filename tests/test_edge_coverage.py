"""Edge-case coverage: telemetry over baselines, wrapped-log recovery,
priority-store blocking, and the open-loop harness."""

import pytest

from repro.baselines import make_cluster
from repro.baselines.fawn.datastore import FawnConfig
from repro.core.datastore import LeedDataStore, StoreConfig
from repro.core.recovery import recover_store
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.queues import PriorityStore
from repro.sim.rng import RngRegistry
from repro.telemetry import render, snapshot

from conftest import drive


class TestTelemetryOverBaselines:
    def test_fawn_cluster_snapshot(self):
        """The snapshot handles FAWN's single-log store shape."""
        cluster = make_cluster("fawn", num_nodes=3, num_clients=1,
                               ssds_per_node=1,
                               store_config=FawnConfig(log_bytes=4 << 20),
                               seed=7)
        cluster.start()
        client = cluster.clients[0]

        def warmup():
            for index in range(10):
                result = yield from client.put(b"k%d" % index, b"v")
                assert result.ok

        drive(cluster.sim, warmup())
        snap = snapshot(cluster)
        vnodes = [v for node in snap.nodes for v in node.vnodes]
        assert any(v.key_log_fill > 0 for v in vnodes)
        text = render(snap)
        assert "jbof0" in text


class TestRecoveryEdgeCases:
    def test_recovery_after_log_wrap(self, sim):
        """Recovery over a key log whose appends have wrapped the
        physical region must not crash, and non-wrapped segments are
        restored (a chain straddling the boundary is skipped — a
        documented limitation)."""
        from repro.core.compaction import Compactor
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(1))
        config = StoreConfig(num_segments=8, key_log_bytes=8 << 10,
                             value_log_bytes=64 << 10,
                             compact_high_watermark=0.6,
                             compact_low_watermark=0.2)
        store = LeedDataStore(sim, ssd, config)
        compactor = Compactor(store)

        def churn():
            round_index = 0
            # Churn until the virtual tail passes the region size:
            # physical wrap has occurred.
            while store.key_log.tail <= config.key_log_bytes:
                for index in range(8):
                    while True:
                        result = yield from store.put(
                            b"k%d" % index, b"round-%03d" % round_index)
                        if result.ok:
                            break
                        # Key log at its reserve: reclaim and retry.
                        yield from compactor.compact_key_log(
                            target_fill=0.2)
                round_index += 1
            return round_index - 1

        last_round = drive(sim, churn())
        assert store.key_log.tail > config.key_log_bytes  # wrapped
        reborn = LeedDataStore(sim, ssd, config)

        def recover_and_check():
            report = yield from recover_store(reborn)
            ok = 0
            for index in range(8):
                got = yield from reborn.get(b"k%d" % index)
                if got.ok:
                    assert got.value == b"round-%03d" % last_round
                    ok += 1
            return report, ok

        report, ok = drive(sim, recover_and_check())  # no crash
        assert report.blocks_scanned == config.key_log_bytes // 512
        # Most segments recover; at most a couple straddle the wrap.
        assert ok >= 6


class TestPriorityStoreBlocking:
    def test_bounded_put_blocks(self, sim):
        store = PriorityStore(sim, capacity=1)
        sequence = []

        def producer():
            yield store.put(5)
            sequence.append(("put5", sim.now))
            yield store.put(1)
            sequence.append(("put1", sim.now))

        def consumer():
            yield sim.timeout(10)
            first = yield store.get()
            sequence.append(("got", first, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert sequence[0] == ("put5", 0.0)
        assert sequence[1][0] == "got"
        assert sequence[2] == ("put1", 10.0)


class TestOpenLoopHarness:
    def test_open_loop_respects_duration_and_rate(self, sim):
        from repro.workloads.driver import OpenLoopDriver
        from repro.workloads.ycsb import YCSBWorkload
        from repro.core.datastore import OpResult

        class InstantClient:
            def get(self, key):
                yield sim.timeout(1.0)
                return OpResult("ok", value=b"x")

            def put(self, key, value):
                yield sim.timeout(1.0)
                return OpResult("ok")

            def delete(self, key):
                yield sim.timeout(1.0)
                return OpResult("ok")

        workload = YCSBWorkload("C", 50, value_size=16, seed=1)
        driver = OpenLoopDriver(sim, InstantClient(), workload,
                                rate_qps=100_000.0, duration_us=20_000.0,
                                seed=2)
        stats = sim.run(until=sim.process(driver.run()))
        # ~rate x duration arrivals, measured throughput near offered.
        assert stats.completed == pytest.approx(2000, rel=0.25)
        assert stats.throughput_qps == pytest.approx(100_000.0, rel=0.3)

    def test_open_loop_drops_beyond_inflight_cap(self, sim):
        from repro.workloads.driver import OpenLoopDriver
        from repro.workloads.ycsb import YCSBWorkload
        from repro.core.datastore import OpResult

        class StuckClient:
            def get(self, key):
                yield sim.timeout(1e9)
                return OpResult("ok")

            put = delete = get

        workload = YCSBWorkload("C", 10, value_size=16, seed=1)
        driver = OpenLoopDriver(sim, StuckClient(), workload,
                                rate_qps=10_000.0, duration_us=5_000.0,
                                max_inflight=4, seed=3)
        sim.process(driver.run())
        sim.run(until=6_000.0)
        assert driver.dropped > 0
        assert driver._inflight <= 4
