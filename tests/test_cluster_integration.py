"""End-to-end integration tests for the full LEED cluster."""

import random

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.jbof import LeedOptions
from repro.baselines import make_cluster
from repro.baselines.fawn.datastore import FawnConfig
from repro.baselines.kvell.datastore import KVellConfig

from conftest import drive


def leed_cluster(**overrides):
    defaults = dict(
        num_jbofs=3, ssds_per_jbof=2, num_clients=2, replication=3,
        store=StoreConfig(num_segments=64, key_log_bytes=2 << 20,
                          value_log_bytes=8 << 20),
        seed=1)
    defaults.update(overrides)
    cluster = LeedCluster(ClusterConfig(**defaults))
    cluster.start()
    return cluster


class TestLinearizableHistory:
    def test_single_client_sequential_semantics(self):
        cluster = leed_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        rng = random.Random(7)

        def proc():
            shadow = {}
            for step in range(250):
                key = b"k%02d" % rng.randrange(40)
                roll = rng.random()
                if roll < 0.45:
                    value = b"v%04d" % step
                    result = yield from client.put(key, value)
                    assert result.ok, result.status
                    shadow[key] = value
                elif roll < 0.85:
                    result = yield from client.get(key)
                    if key in shadow:
                        assert result.ok, result.status
                        assert result.value == shadow[key]
                    else:
                        assert result.status == "not_found"
                else:
                    result = yield from client.delete(key)
                    if key in shadow:
                        assert result.ok
                        del shadow[key]
                    else:
                        assert result.status == "not_found"

        drive(sim, proc())

    def test_read_your_writes_across_replicas(self):
        """CRRS invariant: after an acked write, every subsequent read
        (whichever replica serves it) returns the new value."""
        cluster = leed_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for version in range(30):
                value = b"version-%03d" % version
                result = yield from client.put(b"the-key", value)
                assert result.ok
                for _ in range(3):
                    got = yield from client.get(b"the-key")
                    assert got.ok
                    assert got.value == value, (version, got.value)

        drive(sim, proc())

    def test_two_clients_interleaved(self):
        cluster = leed_cluster()
        sim = cluster.sim

        # Fixed seeds rather than hash(namespace): str/bytes hashes are
        # randomized per process, which made this test nondeterministic.
        # This seed pair once exposed a lost-update race between
        # concurrent flushes of a shared value-log tail block, so it
        # doubles as a regression test for CircularLog flush ordering.
        seeds = {b"left": 261, b"right": 117}

        def workload(client, namespace):
            shadow = {}
            rng = random.Random(seeds[namespace])
            for step in range(150):
                key = b"%s-%02d" % (namespace, rng.randrange(25))
                if rng.random() < 0.5:
                    value = b"%s-v%d" % (namespace, step)
                    result = yield from client.put(key, value)
                    assert result.ok
                    shadow[key] = value
                else:
                    result = yield from client.get(key)
                    if key in shadow:
                        assert result.ok and result.value == shadow[key]
            return len(shadow)

        procs = [sim.process(workload(cluster.clients[0], b"left")),
                 sim.process(workload(cluster.clients[1], b"right"))]
        sim.run(until=sim.all_of(procs))


class TestEnergyAccounting:
    def test_energy_report_sane(self):
        cluster = leed_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for index in range(50):
                yield from client.put(b"k%02d" % index, b"v" * 100)

        drive(sim, proc())
        report = cluster.energy_report("integration")
        assert report.energy_joules > 0
        assert report.requests_completed == 50
        # 3 Stingrays draw between 3x idle and 3x max.
        assert 3 * 40 < report.mean_power_w < 3 * 60


class TestBaselineClusters:
    @pytest.mark.parametrize("system,store_config", [
        ("fawn", FawnConfig(log_bytes=4 << 20)),
        ("kvell", KVellConfig(slab_bytes=4 << 20, slot_bytes=512)),
    ])
    def test_baseline_cluster_serves_workload(self, system, store_config):
        cluster = make_cluster(system, num_nodes=3, num_clients=1,
                               ssds_per_node=1, store_config=store_config,
                               seed=2)
        cluster.start()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            shadow = {}
            rng = random.Random(3)
            for step in range(100):
                key = b"k%02d" % rng.randrange(20)
                if rng.random() < 0.5:
                    value = b"v%d" % step
                    result = yield from client.put(key, value)
                    assert result.ok, result.status
                    shadow[key] = value
                else:
                    result = yield from client.get(key)
                    if key in shadow:
                        assert result.ok and result.value == shadow[key]

        drive(sim, proc())

    def test_leed_energy_efficiency_beats_fawn(self):
        """The headline: requests/Joule, LEED over Pi-FAWN (Fig. 5).

        Read-heavy, like YCSB-B: random reads are where the Pi's SD
        card (0.7 ms random read) and 1 GbE USB NIC fall furthest
        behind the NVMe JBOF.  (Write-only is FAWN's best case — its
        appends are sequential — and even the paper's Fig. 5 WR bars
        nearly tie.)"""
        results = {}
        for system, store_config in (
                ("leed", StoreConfig(num_segments=64,
                                     key_log_bytes=2 << 20,
                                     value_log_bytes=8 << 20)),
                ("fawn", FawnConfig(log_bytes=4 << 20))):
            cluster = make_cluster(system,
                                   num_nodes=3 if system == "leed" else 10,
                                   num_clients=1,
                                   ssds_per_node=2 if system == "leed" else 1,
                                   store_config=store_config, seed=4)
            cluster.start()
            sim = cluster.sim
            client = cluster.clients[0]
            loads = 30
            reads = 240 if system == "leed" else 60
            workers = 12

            def loader():
                for index in range(loads):
                    result = yield from client.put(b"k%03d" % index,
                                                   b"v" * 200)
                    assert result.ok

            sim.run(until=sim.process(loader()))
            energy_before = cluster.energy_joules()
            done_before = cluster.total_completed_requests()

            def reader(count, seed):
                rng = random.Random(seed)
                for _ in range(count):
                    result = yield from client.get(
                        b"k%03d" % rng.randrange(loads))
                    assert result.ok

            procs = [sim.process(reader(reads // workers, w))
                     for w in range(workers)]
            sim.run(until=sim.all_of(procs))
            completed = cluster.total_completed_requests() - done_before
            energy = cluster.energy_joules() - energy_before
            results[system] = completed / energy
        # Modest concurrency already separates the platforms; the full
        # 17.5x/19.1x gap is measured by the Fig. 5 benchmark at
        # saturating load.
        assert results["leed"] > 2 * results["fawn"]


class TestFeatureToggles:
    def test_cluster_without_features_still_correct(self):
        options = LeedOptions(enable_crrs=False, enable_swap=False)
        cluster = leed_cluster(options=options, crrs=False,
                               flow_control=False)
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for index in range(40):
                result = yield from client.put(b"k%02d" % index,
                                               b"val%02d" % index)
                assert result.ok
            for index in range(40):
                result = yield from client.get(b"k%02d" % index)
                assert result.ok and result.value == b"val%02d" % index

        drive(sim, proc())
