"""Tests for the circular log data structure (§3.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circular_log import CircularLog, LogFullError, LogRangeError
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

from conftest import drive


@pytest.fixture
def log(sim, quiet_ssd):
    return CircularLog(quiet_ssd, region_offset=0, size=16 << 10, name="t")


class TestGeometry:
    def test_initially_empty(self, log):
        assert log.used_bytes == 0
        assert log.free_bytes == log.size
        assert log.fill_fraction() == 0.0

    def test_alignment_enforced(self, sim, quiet_ssd):
        with pytest.raises(ValueError):
            CircularLog(quiet_ssd, region_offset=100, size=1024)
        with pytest.raises(ValueError):
            CircularLog(quiet_ssd, region_offset=0, size=1000)

    def test_region_must_fit_device(self, sim, quiet_ssd):
        with pytest.raises(ValueError):
            CircularLog(quiet_ssd, region_offset=0,
                        size=quiet_ssd.capacity_bytes + 512)


class TestAppendRead:
    def test_block_append_roundtrip(self, sim, log):
        def proc():
            offset = yield from log.append_blocks(b"hello-block")
            data = yield from log.read(offset, 11)
            return offset, data

        offset, data = drive(sim, proc())
        assert offset == 0
        assert data == b"hello-block"
        assert log.tail == 512  # padded to one block

    def test_byte_append_roundtrip(self, sim, log):
        def proc():
            first = yield from log.append_bytes(b"aaa")
            second = yield from log.append_bytes(b"bbbb")
            data1 = yield from log.read(first, 3)
            data2 = yield from log.read(second, 4)
            return first, second, data1, data2

        first, second, data1, data2 = drive(sim, proc())
        assert (first, second) == (0, 3)
        assert data1 == b"aaa"
        assert data2 == b"bbbb"
        assert log.tail == 7  # byte-granular tail

    def test_concurrent_byte_appends_share_block(self, sim, log):
        """Two writers staging into the same tail block must not lose
        each other's bytes (the DRAM staging invariant)."""
        def writer(payload):
            offset = log.reserve(len(payload))
            yield sim.timeout(1)  # interleave before the flush
            yield from log.write_reserved(offset, payload)
            return offset

        proc_a = sim.process(writer(b"A" * 100))
        proc_b = sim.process(writer(b"B" * 100))
        sim.run()

        def check():
            data = yield from log.read(0, 200)
            return data

        data = drive(sim, check())
        assert data == b"A" * 100 + b"B" * 100

    def test_read_outside_window_rejected(self, sim, log):
        def proc():
            yield from log.append_bytes(b"xy")
            with pytest.raises(LogRangeError):
                yield from log.read(10, 5)

        drive(sim, proc())

    def test_full_log_rejects_append(self, sim, log):
        def proc():
            yield from log.append_blocks(b"z" * log.size)
            with pytest.raises(LogFullError):
                log.reserve(1)

        drive(sim, proc())


class TestWrapAround:
    def test_wrapped_append_and_read(self, sim, log):
        """After reclaiming the head, appends wrap to the region start
        and reads spanning the physical boundary still work."""
        block = log.block_size
        blocks_total = log.size // block

        def proc():
            # Fill the log completely.
            for index in range(blocks_total):
                yield from log.append_blocks(bytes([index % 256]) * block)
            # Reclaim the first half.
            log.advance_head(log.size // 2)
            # Append wraps into the freed space.
            payload = b"WRAPPED!" * (block // 8)
            offset = yield from log.append_blocks(payload * 2)
            data = yield from log.read(offset, 2 * block)
            return offset, data, payload

        offset, data, payload = drive(sim, proc())
        assert offset == log.size  # virtual offsets keep growing
        assert data == payload * 2

    def test_virtual_offsets_monotonic(self, sim, log):
        def proc():
            offsets = []
            for round_index in range(3):
                for _ in range(log.size // log.block_size // 2):
                    offset = yield from log.append_blocks(b"x")
                    offsets.append(offset)
                log.advance_head(log.tail)
            return offsets

        offsets = drive(sim, proc())
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)


class TestHeadAdvance:
    def test_reclaims_space(self, sim, log):
        def proc():
            yield from log.append_blocks(b"x" * 2048)
            log.advance_head(1024)
            return log.free_bytes

        assert drive(sim, proc()) == log.size - 1024

    def test_cannot_move_backwards_or_past_tail(self, sim, log):
        def proc():
            yield from log.append_blocks(b"x" * 1024)
            log.advance_head(512)
            with pytest.raises(LogRangeError):
                log.advance_head(256)
            with pytest.raises(LogRangeError):
                log.advance_head(log.tail + 1)

        drive(sim, proc())

    def test_read_of_reclaimed_range_rejected(self, sim, log):
        def proc():
            offset = yield from log.append_blocks(b"old" + b"\x00" * 509)
            yield from log.append_blocks(b"new")
            log.advance_head(512)
            with pytest.raises(LogRangeError):
                yield from log.read(offset, 3)

        drive(sim, proc())


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(chunks=st.lists(st.binary(min_size=1, max_size=700),
                           min_size=1, max_size=20))
    def test_byte_appends_always_read_back(self, chunks):
        sim = Simulator()
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=1 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(0))
        log = CircularLog(ssd, 0, 64 << 10)

        def proc():
            offsets = []
            for chunk in chunks:
                offset = yield from log.append_bytes(chunk)
                offsets.append(offset)
            contents = []
            for offset, chunk in zip(offsets, chunks):
                data = yield from log.read(offset, len(chunk))
                contents.append(data)
            return contents

        process = sim.process(proc())
        contents = sim.run(until=process)
        assert contents == chunks

    @settings(max_examples=25, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=2000),
                          min_size=1, max_size=30))
    def test_accounting_invariants(self, sizes):
        sim = Simulator()
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=1 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(0))
        log = CircularLog(ssd, 0, 64 << 10)

        def proc():
            for size in sizes:
                if size > log.free_bytes:
                    log.advance_head(log.tail - log.used_bytes // 2)
                if size <= log.free_bytes:
                    yield from log.append_bytes(b"q" * size)
                assert 0 <= log.used_bytes <= log.size
                assert log.head <= log.tail

        process = sim.process(proc())
        sim.run(until=process)
