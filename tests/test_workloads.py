"""Tests for YCSB workloads, Zipf generators, and drivers."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.driver import ClosedLoopDriver, DriverStats, merge_stats
from repro.workloads.ycsb import WORKLOADS, YCSBWorkload, make_key, make_value
from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)


class TestZipf:
    def test_range(self):
        gen = ZipfianGenerator(100, 0.99)
        for _ in range(1000):
            assert 0 <= gen.next() < 100

    def test_skew_concentrates_mass(self):
        gen = ZipfianGenerator(1000, 0.99)
        counts = collections.Counter(gen.next() for _ in range(20_000))
        top_share = sum(count for _, count in counts.most_common(10)) / 20_000
        assert top_share > 0.25

    def test_low_skew_spreads_mass(self):
        import random
        hot = ZipfianGenerator(1000, 0.99, random.Random(1))
        mild = ZipfianGenerator(1000, 0.10, random.Random(1))
        hot_counts = collections.Counter(hot.next() for _ in range(20_000))
        mild_counts = collections.Counter(mild.next() for _ in range(20_000))
        assert (hot_counts.most_common(1)[0][1]
                > 2 * mild_counts.most_common(1)[0][1])

    def test_deterministic_with_seed(self):
        import random
        a = ZipfianGenerator(500, 0.9, random.Random(7))
        b = ZipfianGenerator(500, 0.9, random.Random(7))
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, 0.9)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, 1.0)

    def test_scrambled_spreads_hot_keys(self):
        """The scrambled variant keeps Zipf popularity but moves the
        hot items away from ids 0,1,2..."""
        import random
        gen = ScrambledZipfianGenerator(10_000, 0.99, random.Random(3))
        counts = collections.Counter(gen.next() for _ in range(20_000))
        hottest = counts.most_common(3)
        assert all(item > 100 for item, _count in hottest)

    def test_fnv_hash_stable(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)
        assert fnv1a_64(1) != fnv1a_64(2)

    def test_latest_tracks_inserts(self):
        import random
        gen = LatestGenerator(100, 0.99, random.Random(5))
        assert gen.max_id == 99
        gen.advance()
        assert gen.max_id == 100
        draws = [gen.next() for _ in range(2000)]
        assert all(0 <= d <= 100 for d in draws)
        # Skewed toward the newest records.
        recent_share = sum(1 for d in draws if d > 80) / len(draws)
        assert recent_share > 0.5

    def test_uniform(self):
        import random
        gen = UniformGenerator(50, random.Random(2))
        counts = collections.Counter(gen.next() for _ in range(10_000))
        assert len(counts) == 50
        assert max(counts.values()) < 3 * min(counts.values())


class TestYCSBMixes:
    @pytest.mark.parametrize("name,read_frac", [
        ("A", 0.50), ("B", 0.95), ("C", 1.00), ("F", 0.50), ("WR", 0.0)])
    def test_mix_ratios(self, name, read_frac):
        workload = YCSBWorkload(name, 500, value_size=64, seed=11)
        ops = [workload.next_operation() for _ in range(4000)]
        reads = sum(1 for op in ops if op.op == "get")
        assert reads / len(ops) == pytest.approx(read_frac, abs=0.03)

    def test_workload_d_inserts_extend_keyspace(self):
        workload = YCSBWorkload("D", 100, value_size=32, seed=3)
        inserts = [op for op in workload.operations(1000) if op.is_insert]
        assert inserts
        # Insert keys go beyond the loaded range.
        assert all(int(op.key[4:]) >= 100 for op in inserts)

    def test_f_mix_has_rmw(self):
        workload = YCSBWorkload("F", 100, value_size=32, seed=3)
        ops = list(workload.operations(500))
        assert any(op.op == "rmw" for op in ops)

    def test_value_sizes_exact(self):
        for size in (64, 256, 1024):
            workload = YCSBWorkload("WR", 10, value_size=size, seed=1)
            op = workload.next_operation()
            assert len(op.value) == size

    def test_load_pairs(self):
        workload = YCSBWorkload("A", 25, value_size=100, seed=4)
        pairs = list(workload.load_pairs())
        assert len(pairs) == 25
        assert all(len(value) == 100 for _key, value in pairs)
        assert len({key for key, _ in pairs}) == 25

    def test_key_prefix_namespacing(self):
        w1 = YCSBWorkload("A", 10, seed=1, key_prefix="left")
        w2 = YCSBWorkload("A", 10, seed=1, key_prefix="right")
        assert w1.next_operation().key.startswith(b"left")
        assert w2.next_operation().key.startswith(b"right")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            YCSBWorkload("Z", 10)

    def test_all_defined_workloads_spec_sums(self):
        for spec in WORKLOADS.values():
            total = (spec.read_fraction + spec.update_fraction
                     + spec.insert_fraction + spec.rmw_fraction)
            assert total == pytest.approx(1.0)


class TestDrivers:
    class EchoClient:
        """Minimal client: fixed-latency ops against a dict."""

        def __init__(self, sim, latency_us=10.0):
            self.sim = sim
            self.latency_us = latency_us
            self.data = {}

        def get(self, key):
            yield self.sim.timeout(self.latency_us)
            from repro.core.datastore import OpResult
            if key in self.data:
                return OpResult("ok", value=self.data[key])
            return OpResult("not_found")

        def put(self, key, value):
            yield self.sim.timeout(self.latency_us)
            from repro.core.datastore import OpResult
            self.data[key] = value
            return OpResult("ok")

        def delete(self, key):
            yield self.sim.timeout(self.latency_us)
            from repro.core.datastore import OpResult
            return OpResult("ok")

    def test_closed_loop_completes_exact_ops(self, sim):
        client = self.EchoClient(sim)
        workload = YCSBWorkload("A", 100, value_size=16, seed=1)
        driver = ClosedLoopDriver(sim, client, workload, num_ops=50,
                                  concurrency=4)
        stats = sim.run(until=sim.process(driver.run()))
        assert stats.completed >= 50  # rmw counts once, inserts once

    def test_closed_loop_throughput_scales_with_concurrency(self, sim):
        results = {}
        for concurrency in (1, 8):
            sim2 = type(sim)()
            client = self.EchoClient(sim2, latency_us=100.0)
            workload = YCSBWorkload("C", 100, value_size=16, seed=1)
            driver = ClosedLoopDriver(sim2, client, workload, num_ops=64,
                                      concurrency=concurrency)
            stats = sim2.run(until=sim2.process(driver.run()))
            results[concurrency] = stats.throughput_qps
        assert results[8] > 5 * results[1]

    def test_latency_percentiles_ordered(self, sim):
        client = self.EchoClient(sim)
        workload = YCSBWorkload("B", 50, value_size=16, seed=2)
        driver = ClosedLoopDriver(sim, client, workload, num_ops=100,
                                  concurrency=4)
        stats = sim.run(until=sim.process(driver.run()))
        assert (stats.percentile_us(0.5) <= stats.percentile_us(0.99)
                <= stats.percentile_us(0.999))

    def test_merge_stats(self):
        a = DriverStats(completed=10, failed=1, started_at_us=0,
                        finished_at_us=100)
        a.latencies_us = [1.0] * 10
        b = DriverStats(completed=20, failed=0, started_at_us=50,
                        finished_at_us=250)
        b.latencies_us = [2.0] * 20
        merged = merge_stats([a, b])
        assert merged.completed == 30
        assert merged.failed == 1
        assert merged.elapsed_us == 250
        assert len(merged.latencies_us) == 30

    def test_make_key_format(self):
        assert make_key(7) == b"user000000000007"
        assert make_key(7, "k") == b"k000000000007"
