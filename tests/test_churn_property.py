"""Property-based churn tests: store + compaction never lose data.

Hypothesis drives random operation sequences against a small store
with background compaction constantly repacking both logs; after the
dust settles, the store must agree exactly with a dict reference.
This is the invariant everything else (replication, COPY, recovery)
builds on.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compaction import CompactionConfig, Compactor
from repro.core.datastore import LeedDataStore, StoreConfig
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.scenarios import (Phase, Scenario, Segment, inject,
                             run_scenario)
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


def build(seed, subcompactions=2):
    sim = Simulator()
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20, block_size=512,
                                  jitter=0.1), rng=RngRegistry(seed))
    store = LeedDataStore(sim, ssd, StoreConfig(
        num_segments=24,
        key_log_bytes=96 << 10,
        value_log_bytes=192 << 10,
        compact_high_watermark=0.6,
        compact_low_watermark=0.3))
    compactor = Compactor(store, CompactionConfig(
        subcompactions=subcompactions))
    sim.process(compactor.maintenance_loop(poll_us=80.0), name="maint")
    return sim, store, compactor


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       key_space=st.integers(min_value=5, max_value=40),
       steps=st.integers(min_value=50, max_value=250))
def test_store_equals_dict_under_compaction_churn(seed, key_space, steps):
    sim, store, compactor = build(seed)
    rng = random.Random(seed)

    def proc():
        shadow = {}
        for step in range(steps):
            key = b"k%03d" % rng.randrange(key_space)
            roll = rng.random()
            if roll < 0.55:
                value = bytes([step % 256]) * rng.randrange(20, 180)
                result = yield from store.put(key, value)
                if result.ok:
                    shadow[key] = value
                else:
                    # Full store: give compaction room and move on.
                    yield sim.timeout(500)
            elif roll < 0.85:
                result = yield from store.get(key)
                if key in shadow:
                    assert result.ok, (step, key, result.status)
                    assert result.value == shadow[key]
                else:
                    assert result.status == "not_found"
            else:
                result = yield from store.delete(key)
                if key in shadow:
                    assert result.ok
                    del shadow[key]
                else:
                    assert result.status == "not_found"
        # Final sweep after churn.
        for key, value in shadow.items():
            result = yield from store.get(key)
            assert result.ok and result.value == value, key
        assert store.live_objects == len(shadow)

    process = sim.process(proc())
    sim.run(until=process)
    # Compaction actually ran during the churn for non-trivial runs.
    if steps > 150:
        assert (compactor.stats.key_rounds + compactor.stats.value_rounds
                >= 0)  # smoke: stats object consistent


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_concurrent_writers_with_compaction(seed):
    """Several writer processes race the compactor; every key ends up
    holding the value of *some* writer, never garbage."""
    sim, store, _compactor = build(seed, subcompactions=4)
    writers = 4
    rounds = 25
    legal = {b"k%02d" % k: set() for k in range(8)}

    def writer(writer_id):
        rng = random.Random(seed * 10 + writer_id)
        for round_index in range(rounds):
            key = b"k%02d" % rng.randrange(8)
            value = b"w%d-r%d" % (writer_id, round_index)
            legal[key].add(value)
            result = yield from store.put(key, value)
            if not result.ok:
                yield sim.timeout(300)

    procs = [sim.process(writer(w)) for w in range(writers)]
    sim.run(until=sim.all_of(procs))

    def check():
        for key, candidates in legal.items():
            if not candidates:
                continue
            result = yield from store.get(key)
            if result.ok:
                assert result.value in candidates, (key, result.value)

    process = sim.process(check())
    sim.run(until=process)


# -- randomized scenario composition ------------------------------------------
#
# The same property one level up: hypothesis composes whole cluster
# scenarios from the production DSL — random load curves, skew shifts,
# and crash / blackout injections — and every composition must keep
# the acked-write ledger clean.  Compositions are constrained to be
# *recoverable* (a crash is always paired with a later rejoin of the
# same JBOF; blackouts stay below the heartbeat timeout's detection
# horizon only by luck, both paths are legal) so zero lost acked
# writes is the correct expectation, not just a hopeful one.

FAULTS = st.sampled_from(["none", "crash_rejoin", "power_blackout"])


@st.composite
def scenario_compositions(draw):
    """A small, always-recoverable random scenario."""
    rate = draw(st.sampled_from([0.5, 1.0, 1.5]))
    storm_skew = draw(st.one_of(st.none(), st.sampled_from([0.6, 0.95])))
    segments = [Segment(0.0, rate)]
    if storm_skew is not None:
        segments.append(Segment(0.5, rate * 1.5, skew=storm_skew))
    fault = draw(FAULTS)
    jbof = draw(st.integers(min_value=1, max_value=2))
    injections = ()
    if fault == "crash_rejoin":
        crash_at = draw(st.sampled_from([0.1, 0.25]))
        injections = (inject(crash_at, "crash", index=jbof),
                      inject(crash_at + 0.5, "rejoin", index=jbof))
    elif fault == "power_blackout":
        injections = (inject(0.25, "power_blackout", index=jbof,
                             outage_us=draw(st.sampled_from(
                                 [4_000.0, 12_000.0]))),)
    return Scenario(
        name="composed",
        description="hypothesis-composed churn episode",
        workload=draw(st.sampled_from(["A", "B"])),
        phases=(
            Phase("warm", 0.5),
            Phase("churn", 1.5, segments=tuple(segments),
                  injections=injections),
            Phase("cool", 0.5),
        ))


@settings(max_examples=5, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(composed=scenario_compositions(),
       seed=st.integers(min_value=0, max_value=3))
def test_composed_scenarios_never_lose_acked_writes(composed, seed):
    record = run_scenario(scenario=composed, seed=seed)
    invariants = record["invariants"]
    assert invariants["lost_acked_writes"] == 0, invariants["lost_keys"]
    assert invariants["membership_balanced"]
    assert invariants["unrecovered_failures"] == 0
    assert record["totals"]["availability"] > 0.5
