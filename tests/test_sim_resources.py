"""Tests for Resource, TokenBucket, Store, and PriorityStore."""

import pytest

from repro.sim.queues import PriorityStore, Store
from repro.sim.resources import Resource, TokenBucket

from conftest import drive


class TestResource:
    def test_acquire_release(self, sim):
        resource = Resource(sim, capacity=2)

        def proc():
            yield resource.acquire()
            assert resource.in_use == 1
            resource.release()
            return resource.in_use

        assert drive(sim, proc()) == 0

    def test_fcfs_ordering(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            yield resource.acquire()
            order.append(name)
            yield sim.timeout(hold)
            resource.release()

        for name in ("a", "b", "c"):
            sim.process(worker(name, 5))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_capacity_enforced(self, sim):
        resource = Resource(sim, capacity=2)
        concurrent = []

        def worker():
            yield resource.acquire()
            concurrent.append(resource.in_use)
            yield sim.timeout(10)
            resource.release()

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max(concurrent) <= 2

    def test_multi_slot_acquire(self, sim):
        resource = Resource(sim, capacity=4)

        def proc():
            yield resource.acquire(3)
            assert resource.available == 1
            resource.release(3)

        drive(sim, proc())

    def test_acquire_more_than_capacity_rejected(self, sim):
        resource = Resource(sim, capacity=2)
        with pytest.raises(ValueError):
            resource.acquire(3)

    def test_over_release_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(ValueError):
            resource.release()

    def test_cancel_pending_request(self, sim):
        resource = Resource(sim, capacity=1)

        def holder():
            yield resource.acquire()
            yield sim.timeout(100)
            resource.release()

        sim.process(holder())
        sim.run(until=1)
        request = resource.acquire()
        assert resource.queue_length == 1
        request.cancel()
        assert resource.queue_length == 0

    def test_utilization_tracks_busy_time(self, sim):
        resource = Resource(sim, capacity=1)

        def proc():
            yield resource.acquire()
            yield sim.timeout(50)
            resource.release()
            yield sim.timeout(50)

        drive(sim, proc())
        assert resource.utilization() == pytest.approx(0.5)

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestTokenBucket:
    def test_try_consume(self, sim):
        bucket = TokenBucket(sim, tokens=3)
        assert bucket.try_consume(2)
        assert bucket.tokens == 1
        assert not bucket.try_consume(2)

    def test_consume_waits_for_grant(self, sim):
        bucket = TokenBucket(sim, tokens=0)
        got_at = []

        def consumer():
            yield bucket.consume(5)
            got_at.append(sim.now)

        sim.process(consumer())
        sim.schedule(20, lambda: bucket.grant(5))
        sim.run()
        assert got_at == [20.0]

    def test_capacity_clamps(self, sim):
        bucket = TokenBucket(sim, tokens=0, capacity=10)
        bucket.grant(100)
        assert bucket.tokens == 10

    def test_set_level(self, sim):
        bucket = TokenBucket(sim, tokens=7)
        bucket.set_level(2)
        assert bucket.tokens == 2

    def test_fcfs_consumers(self, sim):
        bucket = TokenBucket(sim, tokens=0)
        order = []

        def consumer(name, amount):
            yield bucket.consume(amount)
            order.append(name)

        sim.process(consumer("big", 5))
        sim.process(consumer("small", 1))
        sim.schedule(1, lambda: bucket.grant(6))
        sim.run()
        # Head-of-line: big waits first and is served first.
        assert order == ["big", "small"]

    def test_negative_grant_rejected(self, sim):
        bucket = TokenBucket(sim)
        with pytest.raises(ValueError):
            bucket.grant(-1)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("x")
            item = yield store.get()
            return item

        assert drive(sim, proc()) == "x"

    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for index in range(5):
                yield store.put(index)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        when = []

        def consumer():
            yield store.get()
            when.append(sim.now)

        sim.process(consumer())
        sim.schedule(30, lambda: store.try_put("late"))
        sim.run()
        assert when == [30.0]

    def test_bounded_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            times.append(sim.now)
            yield store.put("b")
            times.append(sim.now)

        def consumer():
            yield sim.timeout(10)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [0.0, 10.0]

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.is_full

    def test_try_get_empty_returns_none(self, sim):
        store = Store(sim)
        assert store.try_get() is None

    def test_len_and_peek(self, sim):
        store = Store(sim)
        store.try_put("first")
        store.try_put("second")
        assert len(store) == 2
        assert store.peek() == "first"

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestPriorityStore:
    def test_orders_by_item(self, sim):
        store = PriorityStore(sim)
        for value in (5, 1, 3):
            store.try_put(value)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        drive(sim, consumer())
        assert got == [1, 3, 5]

    def test_tuple_priorities(self, sim):
        store = PriorityStore(sim)
        store.try_put((2, "low"))
        store.try_put((1, "high"))

        def consumer():
            first = yield store.get()
            return first

        assert drive(sim, consumer()) == (1, "high")
