"""Multi-tenant weighted token allocation (§3.5).

"Each back-end SSD allocates available tokens based on its waiting
queue among co-located tenants in a weighted fashion and distributes
them via a piggyback response."  These tests drive two tenants with
different weights against one saturated partition and check that the
flow-control allocations — and the throughput they admit — track the
weights.
"""

import pytest

from repro.core.datastore import LeedDataStore, StoreConfig
from repro.core.io_engine import KVCommand, PartitionIOEngine
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


@pytest.fixture
def engine(sim):
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(5))
    store = LeedDataStore(sim, ssd, StoreConfig(
        num_segments=64, key_log_bytes=2 << 20, value_log_bytes=8 << 20))
    return PartitionIOEngine(sim, store, token_capacity=24,
                             waiting_capacity=64, name="mt")


class TestWeightedAllocation:
    def test_allocations_proportional_to_weights(self, sim, engine):
        engine.set_tenant_weight("gold", 3.0)
        engine.set_tenant_weight("bronze", 1.0)
        gold = engine.allocation_for("gold")
        bronze = engine.allocation_for("bronze")
        assert gold == pytest.approx(3 * bronze, abs=3)

    def test_unknown_tenant_gets_weight_one(self, sim, engine):
        engine.set_tenant_weight("gold", 3.0)
        stranger = engine.allocation_for("stranger")
        bronze_like = int(engine.tokens * 1.0 / 3.0)
        assert stranger <= bronze_like + 1

    def test_weighted_tenants_split_saturated_partition(self, sim, engine):
        """Closed loop, token-gated issuing per tenant: completed
        work should track the 3:1 weights within a loose band."""
        engine.set_tenant_weight("gold", 3.0)
        engine.set_tenant_weight("bronze", 1.0)
        completed = {"gold": 0, "bronze": 0}

        def tenant_driver(tenant, budget_tokens_per_round):
            index = 0
            while sim.now < 40_000:
                # Spend up to the advertised allocation each round —
                # the client half of the §3.5 protocol.
                allowance = engine.allocation_for(tenant)
                issued = []
                while allowance >= 3 and len(issued) < 16:
                    command = KVCommand("put",
                                        b"%s-%05d" % (tenant.encode(), index),
                                        b"v" * 64, tenant=tenant)
                    issued.append(engine.submit(command))
                    allowance -= 3
                    index += 1
                for event in issued:
                    try:
                        result = yield event
                        if result.ok:
                            completed[tenant] += 1
                    except Exception:
                        pass
                yield sim.timeout(50)

        procs = [sim.process(tenant_driver("gold", 9)),
                 sim.process(tenant_driver("bronze", 3))]
        sim.run(until=sim.all_of(procs))
        assert completed["gold"] > 1.5 * completed["bronze"], completed

    def test_equal_weights_equal_service(self, sim, engine):
        engine.set_tenant_weight("a", 1.0)
        engine.set_tenant_weight("b", 1.0)
        assert engine.allocation_for("a") == engine.allocation_for("b")
