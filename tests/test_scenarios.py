"""Golden-run regression suite for the production-scenario library.

Every catalog scenario runs twice at the smoke scale with a fixed
seed; the suite asserts

* byte-identical records across the two runs (the determinism
  contract of :func:`repro.scenarios.runner.run_scenario`),
* figure/schedule digests matching the committed goldens in
  ``tests/golden_scenarios.json`` (regenerate with
  ``python -m repro.scenarios golden`` after an intentional
  schedule-affecting change),
* the headline invariants: zero lost acked writes, balanced
  membership episodes, no unrecovered failures,

plus DSL validation, CLI behavior, the failure-burst scenario across
every replication protocol, and unit coverage for the migration
stamp guard and the zombie-write deadline.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core.jbof import JBOFNode, VNodeStats
from repro.core.replication import protocol_names
from repro.scenarios import (Phase, Scenario, Segment, build_scenario,
                             inject, run_scenario, scenario_names)
from repro.scenarios.cli import main as scenarios_main
from repro.scenarios.load import MIN_VALUE_SIZE, WriteLedger
from repro.scenarios.runner import canonical_json

GOLDEN_PATH = Path(__file__).parent / "golden_scenarios.json"
PY_VERSION = "%d.%d" % sys.version_info[:2]

pytestmark = pytest.mark.scenario

#: (scenario name) -> [record of run 1, record of run 2]; filled
#: lazily so each scenario simulates at most twice for the module.
_CACHE = {}


def records_for(name):
    if name not in _CACHE:
        _CACHE[name] = [run_scenario(name), run_scenario(name)]
    return _CACHE[name]


def golden_digests():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle).get(PY_VERSION)


# -- golden-run determinism ---------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_double_run_byte_identical(name):
    """Same (scenario, scale, seed, protocol) => byte-identical record."""
    first, second = records_for(name)
    assert canonical_json(first) == canonical_json(second)
    assert first["digests"]["schedule"] == second["digests"]["schedule"]


@pytest.mark.parametrize("name", scenario_names())
def test_digests_match_golden(name):
    golden = golden_digests()
    if golden is None or name not in golden:
        pytest.skip("no golden for python %s; run "
                    "`python -m repro.scenarios golden`" % PY_VERSION)
    record = records_for(name)[0]
    assert record["digests"] == golden[name], (
        "scenario %r drifted from its golden digests; if the change "
        "is intentional, regenerate with `python -m repro.scenarios "
        "golden`" % name)


def test_golden_file_covers_catalog():
    golden = golden_digests()
    if golden is None:
        pytest.skip("no golden for python %s" % PY_VERSION)
    missing = [n for n in scenario_names() if n not in golden]
    assert not missing, "goldens missing for %s" % missing


# -- invariants ---------------------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_no_lost_acked_writes(name):
    invariants = records_for(name)[0]["invariants"]
    assert invariants["lost_acked_writes"] == 0, invariants["lost_keys"]
    assert invariants["acked_keys_checked"] > 0


@pytest.mark.parametrize("name", scenario_names())
def test_membership_episodes_balanced(name):
    invariants = records_for(name)[0]["invariants"]
    assert invariants["membership_balanced"]
    assert invariants["unrecovered_failures"] == 0


@pytest.mark.parametrize("name", scenario_names())
def test_record_shape(name):
    record = records_for(name)[0]
    assert record["scenario"] == name
    assert record["phases"], "no per-phase stats"
    assert 0.0 < record["totals"]["availability"] <= 1.0
    assert record["totals"]["energy_per_op_uj"] > 0
    assert record["digests"]["figure"]
    assert record["digests"]["schedule"]


def test_failure_burst_reports_recovery_timings():
    record = records_for("failure_burst")[0]
    assert record["recovery"]["failover"], "no failover episode recorded"
    for episode in record["recovery"]["failover"]:
        assert episode["recovery_us"] > 0
    assert record["recovery"]["power"], "no power blackout recorded"
    blackout = record["recovery"]["power"][0]
    assert blackout["report"]["scan_duration_us"] > 0
    # The capacitor-backed WAL replay is part of the record: every
    # pending intent was either re-proposed or proven durable.
    wal = blackout["report"]["wal"]
    assert wal["failed"] == 0
    assert wal["replayed"] + wal["skipped"] == wal["pending"]


def test_autoscale_scales_out_and_back_in():
    record = records_for("autoscale")[0]
    actions = [d["action"] for d in record["autoscaler"]["decisions"]]
    assert "scale_out" in actions
    assert "scale_in" in actions
    assert record["autoscaler"]["final_num_jbofs"] == 3


# -- protocol matrix ----------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("protocol", protocol_names())
def test_failure_burst_per_protocol(protocol):
    """The failure-burst episode loses no acked write under any
    registered replication protocol."""
    record = run_scenario("failure_burst", replication_protocol=protocol)
    assert record["protocol"] == protocol
    assert record["invariants"]["lost_acked_writes"] == 0, (
        protocol, record["invariants"]["lost_keys"])
    assert record["invariants"]["membership_balanced"]


# -- DSL validation -----------------------------------------------------------


def _scenario(**kwargs):
    base = dict(name="t", description="t",
                phases=(Phase("only", 1.0),))
    base.update(kwargs)
    return Scenario(**base)


def test_build_scenario_unknown_name():
    with pytest.raises(KeyError, match="unknown scenario"):
        build_scenario("no_such_scenario")


@pytest.mark.parametrize("bad", [
    _scenario(phases=()),
    _scenario(workload="D"),
    _scenario(skew=1.1),
    _scenario(phases=(Phase("a"), Phase("a"))),
    _scenario(phases=(Phase("a", duration=0.0),)),
    _scenario(phases=(Phase("a", segments=()),)),
    _scenario(phases=(Phase("a", segments=(Segment(0.5, 1.0),)),)),
    _scenario(phases=(Phase("a", segments=(Segment(0.0, 1.0),
                                           Segment(0.0, 2.0))),)),
    _scenario(phases=(Phase("a", segments=(Segment(0.0, -1.0),)),)),
    _scenario(phases=(Phase("a", segments=(Segment(0.0, 1.0, skew=1.5),)),)),
    _scenario(phases=(Phase("a", injections=(inject(1.5, "crash"),)),)),
])
def test_validation_rejects_malformed_scenarios(bad):
    from repro.scenarios.dsl import _validate
    with pytest.raises(ValueError):
        _validate(bad)


def test_run_scenario_rejects_unknown_scale_and_injection():
    with pytest.raises(KeyError, match="unknown scale"):
        run_scenario("diurnal", scale="galactic")
    broken = _scenario(phases=(
        Phase("a", duration=0.05,
              injections=(inject(0.0, "meteor_strike"),)),))
    with pytest.raises(KeyError, match="unknown injection action"):
        run_scenario(scenario=broken)


def test_ledger_rejects_tiny_values():
    with pytest.raises(ValueError):
        WriteLedger(MIN_VALUE_SIZE - 1)


# -- CLI ----------------------------------------------------------------------


def test_cli_list(capsys):
    assert scenarios_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_cli_unknown_scenario():
    with pytest.raises(SystemExit):
        scenarios_main(["run", "no_such_scenario"])


def test_cli_run_writes_bench_record(tmp_path, capsys):
    out_path = tmp_path / "BENCH_scenarios.json"
    assert scenarios_main(["run", "diurnal",
                           "--output", str(out_path)]) == 0
    records = json.loads(out_path.read_text())
    assert len(records) == 1
    assert records[0]["scenario"] == "diurnal"
    assert records[0]["invariants"]["lost_acked_writes"] == 0
    assert "avail=" in capsys.readouterr().out


# -- partition-parallel execution ---------------------------------------------


def test_scenario_max_workers_classes():
    """Injection-free scenarios run on any engine; elasticity is
    capped at sharded-in-process; physical injection is serial-only."""
    from repro.scenarios.runner import scenario_max_workers
    assert scenario_max_workers(build_scenario("hot_key_storm")) is None
    assert scenario_max_workers(build_scenario("diurnal")) is None
    assert scenario_max_workers(build_scenario("autoscale")) == 1
    assert scenario_max_workers(build_scenario("failure_burst")) == 0
    assert scenario_max_workers(build_scenario("rolling_upgrade")) == 0


def test_run_scenario_refuses_excess_workers():
    with pytest.raises(ValueError, match="workers"):
        run_scenario("failure_burst", workers=1)
    with pytest.raises(ValueError, match="workers"):
        run_scenario("autoscale", workers=2)


@pytest.mark.parametrize("workers", [1, 4])
def test_hot_key_storm_record_engine_invariant(workers):
    """Sharded runs (in-process and forked) reproduce the serial
    record byte for byte (the figure digest hashes the whole record
    minus the digests block)."""
    serial = records_for("hot_key_storm")[0]
    sharded = run_scenario("hot_key_storm", workers=workers)
    assert sharded["digests"]["figure"] == serial["digests"]["figure"]
    assert sharded["totals"] == serial["totals"]
    assert sharded["metrics"] == serial["metrics"]


def test_cli_batch_clamps_workers(capsys):
    """`run all --workers N` clamps each scenario to its own cap
    (and says so) instead of refusing the whole sweep."""
    from repro.scenarios.cli import _effective_workers
    assert _effective_workers("hot_key_storm", 4, batch=True) == 4
    assert _effective_workers("autoscale", 4, batch=True) == 1
    assert _effective_workers("failure_burst", 4, batch=True) == 0
    assert "clamping workers" in capsys.readouterr().out
    # A single named scenario keeps the request so run_scenario's
    # ValueError explains the refusal.
    assert _effective_workers("failure_burst", 4, batch=False) == 4
    assert _effective_workers("failure_burst", 0, batch=True) == 0


def test_autoscale_sharded_in_process():
    """Elasticity at workers=1: add_jbof attaches NICs mid-run, the
    engine refreshes its lookahead matrix, and every invariant holds
    (the conservative-window debug assert would trip on a stale
    bound)."""
    record = run_scenario("autoscale", workers=1)
    assert record["invariants"]["lost_acked_writes"] == 0
    assert record["invariants"]["membership_balanced"]
    assert record["autoscaler"]["decisions"]


# -- migration stamp guard (the COPY-vs-mirror race fix) ----------------------


def _fresh_runtime():
    return SimpleNamespace(migration_stamps={}, stats=VNodeStats())


def test_migration_guard_refuses_stale_snapshot():
    """A COPY scan pair buffered across a newer mirrored write must
    not roll the key back (the lost-acked-write race the scenario
    suite caught)."""
    node = SimpleNamespace()
    runtime = _fresh_runtime()
    fresh = JBOFNode._migration_apply_fresh
    assert fresh(node, runtime, b"k", 3)        # scan pair, version 3
    assert fresh(node, runtime, b"k", 4)        # mirror of a newer commit
    assert not fresh(node, runtime, b"k", 3)    # late buffered snapshot
    assert runtime.stats.copies_stale == 1
    assert fresh(node, runtime, b"k", 4)        # equal stamp re-applies
    assert fresh(node, runtime, b"k", 5)


def test_migration_guard_unversioned_pairs_pass():
    node = SimpleNamespace()
    runtime = _fresh_runtime()
    assert JBOFNode._migration_apply_fresh(node, runtime, b"k", None)
    assert JBOFNode._migration_apply_fresh(node, runtime, b"k", None)
    assert runtime.stats.copies_stale == 0
