"""Tests for the front-end client library (§3.1.2, §3.5, §3.7)."""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.hashring import HashRing, VNode
from repro.core.protocol import MembershipUpdate

from conftest import drive


def small_cluster(**overrides):
    defaults = dict(
        num_jbofs=3, ssds_per_jbof=1, num_clients=1, replication=2,
        store=StoreConfig(num_segments=32, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        seed=6)
    defaults.update(overrides)
    cluster = LeedCluster(ClusterConfig(**defaults))
    cluster.start()
    return cluster


class TestRouting:
    def test_writes_go_to_head(self):
        cluster = small_cluster()
        client = cluster.clients[0]
        target = client._pick_target("put", b"any-key")
        chain = client.local_ring.chain_for_key(b"any-key")
        assert target == (0, chain[0])

    def test_deletes_go_to_head(self):
        cluster = small_cluster()
        client = cluster.clients[0]
        hop, _vnode = client._pick_target("del", b"k")
        assert hop == 0

    def test_tail_policy(self):
        cluster = small_cluster(crrs=False, read_policy="tail")
        client = cluster.clients[0]
        chain = client.local_ring.chain_for_key(b"k")
        hop, vnode = client._pick_target("get", b"k")
        assert vnode.vnode_id == chain[-1].vnode_id

    def test_any_policy_round_robins(self):
        cluster = small_cluster(crrs=False, read_policy="any")
        client = cluster.clients[0]
        picks = {client._pick_target("get", b"k")[1].vnode_id
                 for _ in range(10)}
        assert len(picks) == 2  # both replicas used

    def test_crrs_policy_prefers_tokens(self):
        cluster = small_cluster()
        client = cluster.clients[0]
        chain = client.local_ring.chain_for_key(b"k")
        client.flow.on_response(chain[0].vnode_id, 1)
        client.flow.on_response(chain[1].vnode_id, 50)
        hop, vnode = client._pick_target("get", b"k")
        assert vnode.vnode_id == chain[1].vnode_id

    def test_leaving_replica_avoided_for_reads(self):
        cluster = small_cluster()
        client = cluster.clients[0]
        chain = client.local_ring.chain_for_key(b"k")
        client.vnode_states[chain[-1].vnode_id] = "LEAVING"
        for _ in range(5):
            _hop, vnode = client._pick_target("get", b"k")
            assert vnode.vnode_id != chain[-1].vnode_id


class TestMembershipHandling:
    def test_stale_update_ignored(self):
        cluster = small_cluster()
        client = cluster.clients[0]
        version = client.local_ring.version
        stale = MembershipUpdate(ring_version=version - 1, vnodes=[],
                                 states=[], replication=2)
        client.apply_membership(stale)
        assert len(client.local_ring) > 0
        assert client.local_ring.version == version

    def test_refresh_ring_pulls_from_control_plane(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        # Clobber the local view, then refresh.
        client.local_ring = HashRing([], replication=2, version=0)

        def proc():
            ok = yield from client.refresh_ring()
            return ok

        assert drive(sim, proc())
        assert len(client.local_ring) == 3


class TestRetries:
    def test_retry_after_nack_on_stale_ring(self):
        """A client with an outdated ring gets NACKed, refreshes, and
        succeeds."""
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        # Fabricate a wrong ring: swap two vnodes' positions by using
        # fake ids that do not exist.
        good_ring = client.local_ring
        wrong = [VNode(vid + "-stale", v.jbof_address)
                 for vid, v in good_ring.vnodes.items()]
        client.local_ring = HashRing(wrong, replication=2,
                                     version=good_ring.version)

        def proc():
            result = yield from client.put(b"key", b"value")
            return result

        result = drive(sim, proc())
        assert result.ok
        assert result.retries >= 1

    def test_stats_recorded(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            yield from client.put(b"a", b"1")
            yield from client.get(b"a")
            yield from client.get(b"missing")

        drive(sim, proc())
        assert client.stats.operations == 3
        assert client.stats.ok == 2
        assert client.stats.not_found == 1
        assert client.stats.mean_latency_us() > 0

    def test_unavailable_after_total_outage(self):
        cluster = small_cluster(num_jbofs=2)
        sim = cluster.sim
        client = cluster.clients[0]
        client.request_timeout_us = 500.0
        client.max_retries = 2
        for node in cluster.jbofs:
            node.crash()
        cluster.network.partition(cluster.control_plane.address)

        def proc():
            result = yield from client.put(b"k", b"v")
            return result

        result = drive(sim, proc())
        assert result.status in ("unavailable", "overloaded")
        assert client.stats.failures == 1
