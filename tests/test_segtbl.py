"""Tests for the in-memory segment table (§3.2.3)."""

import pytest

from repro.core.segtbl import NO_OFFSET, SEGTBL_ENTRY_BYTES, SegTbl
from repro.hw.dram import Dram, OutOfMemoryError

from conftest import drive


class TestIndex:
    def test_initially_absent(self, sim):
        table = SegTbl(sim, 8)
        assert table.location(0) is None
        assert not table.entry(0).exists

    def test_update_and_lookup(self, sim):
        table = SegTbl(sim, 8)
        table.update(3, offset=4096, chain_len=2)
        assert table.location(3) == (4096, 2)

    def test_footprint_matches_paper_entry_size(self, sim):
        table = SegTbl(sim, 1000)
        assert table.footprint_bytes() == 1000 * SEGTBL_ENTRY_BYTES
        # Under half a byte per object at 64 keys per segment (§3.2).
        assert SEGTBL_ENTRY_BYTES / 64 < 0.5

    def test_dram_reservation(self, sim):
        dram = Dram(10_000)
        table = SegTbl(sim, 100, dram=dram, name="tbl")
        assert dram.reservation("tbl") == 100 * SEGTBL_ENTRY_BYTES

    def test_dram_exhaustion_fails_loudly(self, sim):
        dram = Dram(100)
        with pytest.raises(OutOfMemoryError):
            SegTbl(sim, 1000, dram=dram)

    def test_existing_segments_iteration(self, sim):
        table = SegTbl(sim, 10)
        table.update(2, 0, 1)
        table.update(7, 512, 1)
        assert list(table.existing_segments()) == [2, 7]

    def test_needs_at_least_one_segment(self, sim):
        with pytest.raises(ValueError):
            SegTbl(sim, 0)


class TestLockBit:
    def test_try_lock(self, sim):
        table = SegTbl(sim, 4)
        assert table.try_lock(1)
        assert not table.try_lock(1)
        table.unlock(1)
        assert table.try_lock(1)

    def test_lock_event_immediate_when_free(self, sim):
        table = SegTbl(sim, 4)

        def proc():
            yield table.lock(0)
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_lock_handoff_fcfs(self, sim):
        table = SegTbl(sim, 4)
        order = []

        def worker(name, hold):
            yield table.lock(2)
            order.append(name)
            yield sim.timeout(hold)
            table.unlock(2)

        for name in ("first", "second", "third"):
            sim.process(worker(name, 10))
        sim.run()
        assert order == ["first", "second", "third"]
        assert not table.is_locked(2)

    def test_unlock_without_lock_rejected(self, sim):
        table = SegTbl(sim, 4)
        with pytest.raises(RuntimeError):
            table.unlock(0)

    def test_lock_waits_counted(self, sim):
        table = SegTbl(sim, 4)

        def holder():
            yield table.lock(0)
            yield sim.timeout(5)
            table.unlock(0)

        def waiter():
            yield sim.timeout(1)
            yield table.lock(0)
            table.unlock(0)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert table.lock_waits == 1
