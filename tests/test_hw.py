"""Tests for the hardware models: flash, SSD, CPU, DRAM, platforms."""

import pytest

from repro.hw.cpu import CYCLE_COSTS, Core, CpuComplex
from repro.hw.dram import Dram, OutOfMemoryError
from repro.hw.flash import FlashArray, FlashError
from repro.hw.platforms import (
    RASPBERRY_PI,
    SERVER_JBOF,
    STINGRAY,
    platform_by_name,
    with_ssds,
)
from repro.hw.ssd import NVMeSSD, SSDProfile

from conftest import drive


class TestFlashArray:
    def test_roundtrip_block(self):
        flash = FlashArray(1 << 20, block_size=512)
        flash.write_block(3, b"hello")
        assert flash.read_block(3)[:5] == b"hello"
        assert flash.read_block(3)[5:] == b"\x00" * 507

    def test_unwritten_reads_zero(self):
        flash = FlashArray(1 << 20, block_size=512)
        assert flash.read_block(100) == b"\x00" * 512

    def test_byte_reads_cross_blocks(self):
        flash = FlashArray(1 << 20, block_size=512)
        flash.write(0, b"A" * 512 + b"B" * 512)
        assert flash.read(500, 24) == b"A" * 12 + b"B" * 12

    def test_unaligned_write_rejected(self):
        flash = FlashArray(1 << 20, block_size=512)
        with pytest.raises(FlashError):
            flash.write(100, b"data")

    def test_out_of_range_rejected(self):
        flash = FlashArray(1 << 20, block_size=512)
        with pytest.raises(FlashError):
            flash.read(1 << 20, 1)
        with pytest.raises(FlashError):
            flash.write_block(-1, b"x")

    def test_oversized_block_write_rejected(self):
        flash = FlashArray(1 << 20, block_size=512)
        with pytest.raises(FlashError):
            flash.write_block(0, b"x" * 513)

    def test_trim_discards_full_blocks_only(self):
        flash = FlashArray(1 << 20, block_size=512)
        flash.write(0, b"X" * 1536)
        flash.trim(256, 1024)  # covers block 1 fully, 0 and 2 partially
        assert flash.read_block(1) == b"\x00" * 512
        assert flash.read_block(0)[:256] == b"X" * 256
        assert flash.read_block(2)[:256] == b"X" * 256

    def test_counters(self):
        flash = FlashArray(1 << 20, block_size=512)
        flash.write_block(0, b"a")
        flash.write_block(0, b"b")
        flash.read_block(0)
        assert flash.writes == 2
        assert flash.reads == 1
        assert flash.max_program_count() == 2
        assert flash.blocks_in_use == 1

    def test_capacity_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            FlashArray(1000, block_size=512)


class TestNVMeSSD:
    def test_write_read_roundtrip(self, sim, quiet_ssd):
        def proc():
            yield from quiet_ssd.write(0, b"payload")
            data = yield from quiet_ssd.read(0, 7)
            return data

        assert drive(sim, proc()) == b"payload"

    def test_read_latency_matches_profile(self, sim, quiet_ssd):
        def proc():
            yield from quiet_ssd.read(0, 512)
            return sim.now

        expected = quiet_ssd.profile.read_service_us(512)
        assert drive(sim, proc()) == pytest.approx(expected)

    def test_write_slower_in_aggregate_than_read(self, sim, quiet_ssd):
        """Sustained 4KB writes are bandwidth-paced; reads are not."""
        count = 400

        def writes():
            for index in range(count):
                yield from quiet_ssd.write(index * 4096, b"w" * 4096)

        def reads():
            for index in range(count):
                yield from quiet_ssd.read(index * 4096, 4096)

        procs = [sim.process(writes())]
        sim.run()
        write_time = sim.now
        sim2 = type(sim)()
        profile = quiet_ssd.profile
        ssd2 = NVMeSSD(sim2, profile, name="r")
        for _ in range(8):
            sim2.process(reads_gen(ssd2, count // 8))
        sim2.run()
        assert write_time > sim2.now * 0.5  # writes take comparably long serially

    def test_channel_parallelism(self, sim, quiet_ssd):
        """N concurrent reads finish ~in parallel up to channel count."""
        channels = quiet_ssd.profile.channels

        def one_read():
            yield from quiet_ssd.read(0, 512)

        for _ in range(channels):
            sim.process(one_read())
        sim.run()
        expected = quiet_ssd.profile.read_service_us(512)
        assert sim.now == pytest.approx(expected)

    def test_stats_accumulate(self, sim, quiet_ssd):
        def proc():
            yield from quiet_ssd.write(0, b"x" * 512)
            yield from quiet_ssd.read(0, 512)

        drive(sim, proc())
        assert quiet_ssd.stats.reads_completed == 1
        assert quiet_ssd.stats.writes_completed == 1
        assert quiet_ssd.stats.read_bytes == 512
        assert quiet_ssd.stats.mean_read_latency_us > 0

    def test_jitter_bounded(self, sim, small_ssd):
        latencies = []

        def proc():
            for _ in range(50):
                before = sim.now
                yield from small_ssd.read(0, 512)
                latencies.append(sim.now - before)

        drive(sim, proc())
        mean = small_ssd.profile.read_service_us(512)
        jitter = small_ssd.profile.jitter
        assert all(mean * (1 - jitter) * 0.999 <= lat <= mean * (1 + jitter) * 1.001
                   for lat in latencies)
        assert len(set(latencies)) > 1  # actually random

    def test_peak_iops_formulas(self):
        profile = SSDProfile()
        assert profile.peak_read_iops() > 300_000
        assert profile.peak_write_iops() <= profile.peak_read_iops() * 1.2

    def test_energy_grows_with_activity(self, sim, quiet_ssd):
        def proc():
            for index in range(20):
                yield from quiet_ssd.read(0, 4096)

        idle_energy = quiet_ssd.profile.idle_power_w * 100 * 1e-6
        drive(sim, proc())
        assert quiet_ssd.energy_joules() > 0


def reads_gen(ssd, count):
    for index in range(count):
        yield from ssd.read(index * 4096, 4096)


class TestCore:
    def test_execute_charges_time(self, sim):
        core = Core(sim, freq_ghz=3.0)

        def proc():
            yield from core.execute(3000)
            return sim.now

        assert drive(sim, proc()) == pytest.approx(1.0)  # 3000 cycles @ 3GHz = 1us

    def test_serial_execution(self, sim):
        core = Core(sim, freq_ghz=1.0)
        done = []

        def worker(name):
            yield from core.execute(1000)  # 1us at 1GHz
            done.append((sim.now, name))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert done[0][0] == pytest.approx(1.0)
        assert done[1][0] == pytest.approx(2.0)

    def test_utilization(self, sim):
        core = Core(sim, freq_ghz=1.0)

        def proc():
            yield from core.execute_us(30)
            yield sim.timeout(70)

        drive(sim, proc())
        assert core.utilization() == pytest.approx(0.3)

    def test_negative_cycles_rejected(self, sim):
        core = Core(sim, freq_ghz=1.0)
        with pytest.raises(ValueError):
            drive(sim, core.execute(-5))

    def test_complex_least_loaded(self, sim):
        cpu = CpuComplex(sim, num_cores=3, freq_ghz=2.0)
        assert len(cpu) == 3
        assert cpu.least_loaded() in cpu.cores

    def test_cycle_costs_defined(self):
        for key in ("rpc_receive", "hash_lookup", "btree_node_visit",
                    "compaction_per_entry"):
            assert CYCLE_COSTS[key] > 0


class TestDram:
    def test_reserve_and_release(self):
        dram = Dram(1000)
        dram.reserve("index", 400)
        assert dram.used_bytes == 400
        assert dram.free_bytes == 600
        assert dram.release("index") == 400
        assert dram.used_bytes == 0

    def test_out_of_memory(self):
        dram = Dram(1000)
        dram.reserve("a", 900)
        with pytest.raises(OutOfMemoryError):
            dram.reserve("b", 200)

    def test_reserve_accumulates(self):
        dram = Dram(1000)
        dram.reserve("x", 100)
        dram.reserve("x", 100)
        assert dram.reservation("x") == 200

    def test_resize(self):
        dram = Dram(1000)
        dram.reserve("x", 500)
        dram.resize("x", 100)
        assert dram.reservation("x") == 100
        dram.resize("x", 0)
        assert dram.reservation("x") == 0

    def test_transfer_time(self):
        dram = Dram(1000, bandwidth_bpus=100.0)
        assert dram.transfer_time_us(500) == pytest.approx(5.0)


class TestPlatforms:
    def test_lookup_by_name(self):
        assert platform_by_name("stingray") is STINGRAY
        assert platform_by_name("server") is SERVER_JBOF
        assert platform_by_name("pi") is RASPBERRY_PI
        with pytest.raises(KeyError):
            platform_by_name("mainframe")

    def test_skew_ordering_matches_table1(self):
        """SmartNIC JBOF has the most skewed storage hierarchy."""
        assert (STINGRAY.storage_skew_ratio()
                > SERVER_JBOF.storage_skew_ratio()
                > RASPBERRY_PI.storage_skew_ratio())

    def test_computing_density_ordering(self):
        assert (STINGRAY.network_density_gbps_per_core()
                > SERVER_JBOF.network_density_gbps_per_core()
                > RASPBERRY_PI.network_density_gbps_per_core())
        assert (STINGRAY.storage_density_iops_per_core()
                > SERVER_JBOF.storage_density_iops_per_core()
                > RASPBERRY_PI.storage_density_iops_per_core())

    def test_power_ordering(self):
        assert (SERVER_JBOF.max_power_w > STINGRAY.max_power_w
                > RASPBERRY_PI.max_power_w)
        # Stingray draws roughly one-fifth to one-fourth of a server (§2.1).
        ratio = SERVER_JBOF.max_power_w / STINGRAY.max_power_w
        assert 3.0 < ratio < 6.0

    def test_active_power_interpolates(self):
        low = STINGRAY.active_power_w(0.0)
        high = STINGRAY.active_power_w(1.0)
        mid = STINGRAY.active_power_w(0.5)
        assert low == STINGRAY.idle_power_w
        assert high == STINGRAY.max_power_w
        assert low < mid < high

    def test_with_ssds(self):
        two = with_ssds(STINGRAY, 2)
        assert two.max_ssds == 2
        with pytest.raises(ValueError):
            with_ssds(STINGRAY, 9)

    def test_utilization_clamped(self):
        assert STINGRAY.active_power_w(5.0) == STINGRAY.max_power_w
        assert STINGRAY.active_power_w(-1.0) == STINGRAY.idle_power_w
