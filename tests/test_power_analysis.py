"""Tests for power metering, energy reports, and the analysis module."""

import pytest

from repro.core.analysis import (
    balls_into_bins_max_load,
    capacity_table,
    fawn_usable_fraction,
    kvell_usable_fraction,
    leed_dram_per_object,
    leed_usable_fraction,
    table1_rows,
)
from repro.hw.platforms import STINGRAY
from repro.power.meter import EnergyReport, PowerMeter, cluster_energy

from conftest import drive


class TestPowerMeter:
    def test_idle_energy(self, sim):
        meter = PowerMeter(sim, STINGRAY, lambda: 0.0)
        sim.schedule(1_000_000, lambda: None)  # 1 second
        sim.run()
        energy = meter.energy_joules()
        assert energy == pytest.approx(STINGRAY.idle_power_w, rel=0.01)

    def test_active_energy_higher(self, sim):
        busy = PowerMeter(sim, STINGRAY, lambda: 1.0)
        idle = PowerMeter(sim, STINGRAY, lambda: 0.0)
        sim.schedule(1_000_000, lambda: None)
        sim.run()
        assert busy.energy_joules() > idle.energy_joules()
        assert busy.energy_joules() == pytest.approx(STINGRAY.max_power_w,
                                                     rel=0.01)

    def test_extra_idle_draw(self, sim):
        meter = PowerMeter(sim, STINGRAY, lambda: 0.0, extra_idle_w=5.0)
        sim.schedule(1_000_000, lambda: None)
        sim.run()
        assert meter.energy_joules() == pytest.approx(
            STINGRAY.idle_power_w + 5.0, rel=0.01)

    def test_mean_power(self, sim):
        meter = PowerMeter(sim, STINGRAY, lambda: 0.5)
        sim.schedule(500_000, lambda: None)
        sim.run()
        expected = STINGRAY.active_power_w(0.5)
        assert meter.mean_power_w() == pytest.approx(expected, rel=0.01)

    def test_cluster_energy_sums(self, sim):
        meters = [PowerMeter(sim, STINGRAY, lambda: 0.0) for _ in range(3)]
        sim.schedule(1_000_000, lambda: None)
        sim.run()
        assert cluster_energy(meters) == pytest.approx(
            3 * STINGRAY.idle_power_w, rel=0.01)


class TestEnergyReport:
    def test_queries_per_joule(self):
        report = EnergyReport(requests_completed=1000, elapsed_us=1e6,
                              energy_joules=50.0, label="x")
        assert report.throughput_qps == pytest.approx(1000.0)
        assert report.queries_per_joule == pytest.approx(20.0)
        assert report.mean_power_w == pytest.approx(50.0)
        assert "x" in str(report)

    def test_zero_guards(self):
        report = EnergyReport(0, 0.0, 0.0)
        assert report.throughput_qps == 0.0
        assert report.queries_per_joule == 0.0


class TestBallsIntoBins:
    def test_fewer_bins_higher_max_load(self):
        assert (balls_into_bins_max_load(1e6, 3)
                > balls_into_bins_max_load(1e6, 100))

    def test_exceeds_mean(self):
        for bins in (3, 10, 100):
            assert balls_into_bins_max_load(1e6, bins) > 1e6 / bins

    def test_single_bin(self):
        assert balls_into_bins_max_load(500, 1) == 500


class TestTable1:
    def test_three_rows(self):
        rows = table1_rows()
        assert len(rows) == 3
        names = [row.platform for row in rows]
        assert "stingray-ps1100r" in names

    def test_smartnic_most_skewed(self):
        rows = {row.platform: row for row in table1_rows()}
        stingray = rows["stingray-ps1100r"]
        assert stingray.storage_skew_ratio == max(
            row.storage_skew_ratio for row in rows.values())


class TestCapacityTable:
    """The Table 3 'Max. Capacity' shape: LEED >> FAWN >> KVell."""

    def test_ordering(self):
        table = capacity_table()
        for size in (256, 1024):
            assert (table["LEED"][size] > table["FAWN-JBOF"][size]
                    > table["KVell-JBOF"][size])

    def test_leed_exposes_most_flash(self):
        table = capacity_table()
        assert table["LEED"][1024] > 0.90
        assert table["LEED"][256] > 0.75

    def test_kvell_under_five_percent(self):
        table = capacity_table()
        assert table["KVell-JBOF"][256] < 0.05

    def test_fawn_small_objects_worst(self):
        assert fawn_usable_fraction(STINGRAY, 256) < \
            fawn_usable_fraction(STINGRAY, 1024)

    def test_larger_objects_raise_all_fractions(self):
        for fn in (fawn_usable_fraction, kvell_usable_fraction,
                   leed_usable_fraction):
            assert fn(STINGRAY, 1024) >= fn(STINGRAY, 256)

    def test_leed_dram_per_object_below_half_byte(self):
        """The design requirement of §2.3 / C1."""
        assert leed_dram_per_object() < 0.5
