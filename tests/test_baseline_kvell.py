"""Tests for the KVell baseline: B-tree and slab store."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kvell.btree import BTree
from repro.baselines.kvell.datastore import (
    KVELL_DRAM_BYTES_PER_OBJECT,
    KVellConfig,
    KVellDataStore,
)
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


class TestBTree:
    def test_insert_search(self):
        tree = BTree(min_degree=2)
        tree.insert(b"b", 2)
        tree.insert(b"a", 1)
        tree.insert(b"c", 3)
        assert tree.get(b"a") == 1
        assert tree.get(b"b") == 2
        assert tree.get(b"missing") is None
        assert len(tree) == 3

    def test_overwrite_keeps_size(self):
        tree = BTree(min_degree=2)
        tree.insert(b"k", 1)
        is_new, _ = tree.insert(b"k", 2)
        assert not is_new
        assert tree.get(b"k") == 2
        assert len(tree) == 1

    def test_many_inserts_sorted_iteration(self):
        tree = BTree(min_degree=3)
        keys = [b"key-%04d" % i for i in range(500)]
        shuffled = list(keys)
        random.Random(1).shuffle(shuffled)
        for index, key in enumerate(shuffled):
            tree.insert(key, index)
        assert [k for k, _v in tree.items()] == keys
        assert len(tree) == 500

    def test_height_grows_logarithmically(self):
        tree = BTree(min_degree=16)
        for index in range(5000):
            tree.insert(b"%08d" % index, index)
        assert tree.height <= 4

    def test_search_visit_count_bounded_by_height(self):
        tree = BTree(min_degree=8)
        for index in range(1000):
            tree.insert(b"%06d" % index, index)
        _value, visited = tree.search(b"000500")
        assert visited <= tree.height + 1

    def test_delete_tombstones(self):
        tree = BTree(min_degree=2)
        for index in range(20):
            tree.insert(b"%02d" % index, index)
        was_present, _ = tree.delete(b"05")
        assert was_present
        assert tree.get(b"05") is None
        assert b"05" not in tree
        assert len(tree) == 19
        # Double delete is a no-op.
        was_present, _ = tree.delete(b"05")
        assert not was_present

    def test_rebuild_purges_tombstones(self):
        tree = BTree(min_degree=2)
        for index in range(50):
            tree.insert(b"%02d" % index, index)
        for index in range(25):
            tree.delete(b"%02d" % index)
        tree.rebuild()
        assert len(tree) == 25
        assert tree.get(b"30") == 30
        assert tree.get(b"10") is None

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)

    @settings(max_examples=25, deadline=None)
    @given(pairs=st.dictionaries(st.binary(min_size=1, max_size=16),
                                 st.integers(), min_size=1, max_size=200))
    def test_matches_dict_property(self, pairs):
        tree = BTree(min_degree=3)
        for key, value in pairs.items():
            tree.insert(key, value)
        for key, value in pairs.items():
            assert tree.get(key) == value
        assert len(tree) == len(pairs)
        assert [k for k, _ in tree.items()] == sorted(pairs)


def make_store(sim, **config_kwargs):
    defaults = dict(slab_bytes=1 << 20, slot_bytes=512, batch_window_us=0.0,
                    page_cache_slots=4)
    defaults.update(config_kwargs)
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(4))
    return KVellDataStore(sim, ssd, KVellConfig(**defaults))


class TestKVellStore:
    def test_put_get_roundtrip(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            return (yield from store.get(b"k"))

        result = drive(sim, proc())
        assert result.ok and result.value == b"v"

    def test_in_place_update_reuses_slot(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v1")
            slots_before = store.next_fresh_slot
            yield from store.put(b"k", b"v2")
            got = yield from store.get(b"k")
            return slots_before, store.next_fresh_slot, got

        before, after, got = drive(sim, proc())
        assert before == after  # no new slot allocated
        assert got.value == b"v2"

    def test_delete_recycles_slot(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"a", b"1")
            yield from store.delete(b"a")
            assert len(store.free_list) == 1
            yield from store.put(b"b", b"2")
            assert len(store.free_list) == 0
            return (yield from store.get(b"a"))

        assert drive(sim, proc()).status == "not_found"

    def test_delete_needs_no_device_write(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            return (yield from store.delete(b"k"))

        assert drive(sim, proc()).nvme_accesses == 0

    def test_page_cache_hit_skips_device(self, sim):
        store = make_store(sim, page_cache_slots=8)

        def proc():
            yield from store.put(b"k", b"v")
            first = yield from store.get(b"k")   # warm (put cached it)
            second = yield from store.get(b"k")
            return first, second

        first, second = drive(sim, proc())
        assert store.stats.cache_hits >= 1
        assert second.nvme_accesses == 0

    def test_cache_eviction_lru(self, sim):
        store = make_store(sim, page_cache_slots=2)

        def proc():
            for key in (b"a", b"b", b"c"):
                yield from store.put(key, key)
            # "a" was evicted; reading it costs a device access.
            result = yield from store.get(b"a")
            return result

        assert drive(sim, proc()).nvme_accesses == 1

    def test_slot_size_limit(self, sim):
        store = make_store(sim, slot_bytes=128)
        with pytest.raises(ValueError):
            drive(sim, store.put(b"k", b"v" * 512))

    def test_slab_exhaustion(self, sim):
        store = make_store(sim, slab_bytes=16 << 10, slot_bytes=512)

        def proc():
            status = None
            for index in range(100):
                result = yield from store.put(b"key-%03d" % index, b"v")
                if not result.ok:
                    status = result.status
                    break
            return status

        assert drive(sim, proc()) == "store_full"

    def test_index_budget(self, sim):
        store = make_store(
            sim, index_budget_bytes=5 * KVELL_DRAM_BYTES_PER_OBJECT)

        def proc():
            statuses = []
            for index in range(8):
                result = yield from store.put(b"key-%d" % index, b"v")
                statuses.append(result.status)
            return statuses

        statuses = drive(sim, proc())
        assert statuses.count("ok") == 5

    def test_batching_window_delays_io(self, sim):
        batched = make_store(sim, batch_window_us=200.0, page_cache_slots=0
                             if False else 1)

        def proc():
            yield from batched.put(b"k", b"v")
            return sim.now

        finished = drive(sim, proc())
        assert finished >= 200.0  # waited for the flush boundary

    def test_modeled_index_depth_charges_cpu(self, sim):
        shallow = make_store(sim)
        deep = make_store(sim, modeled_index_objects=10**8)

        def probe(store):
            yield from store.put(b"k", b"v")
            return (yield from store.get(b"k"))

        shallow_result = drive(sim, probe(shallow))
        deep_result = drive(sim, probe(deep))
        assert deep_result.cpu_us > shallow_result.cpu_us

    def test_scan(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"a", b"1")
            yield from store.put(b"b", b"2")
            yield from store.delete(b"a")
            return dict((yield from store.scan()))

        assert drive(sim, proc()) == {b"b": b"2"}

    def test_shadow_model(self, sim):
        store = make_store(sim, slab_bytes=4 << 20)
        rng = random.Random(9)

        def proc():
            shadow = {}
            for step in range(200):
                key = b"k%02d" % rng.randrange(30)
                roll = rng.random()
                if roll < 0.5:
                    value = b"v%d" % step
                    result = yield from store.put(key, value)
                    assert result.ok
                    shadow[key] = value
                elif roll < 0.8:
                    result = yield from store.get(key)
                    if key in shadow:
                        assert result.ok and result.value == shadow[key]
                    else:
                        assert result.status == "not_found"
                else:
                    result = yield from store.delete(key)
                    if key in shadow:
                        assert result.ok
                        del shadow[key]
                    else:
                        assert result.status == "not_found"
            assert store.live_objects == len(shadow)

        drive(sim, proc())
