"""Tests for wire-protocol message bodies and size accounting."""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.protocol import (
    ChainAck,
    CopyBatch,
    Heartbeat,
    KVReply,
    KVRequest,
    MembershipUpdate,
)

from conftest import drive


class TestWireSizes:
    def test_request_size_includes_payload(self):
        small = KVRequest("put", b"k", b"v")
        large = KVRequest("put", b"k", b"v" * 1024)
        assert large.wire_bytes() == small.wire_bytes() + 1023

    def test_get_request_has_no_value_bytes(self):
        request = KVRequest("get", b"key")
        assert request.wire_bytes() < 64

    def test_reply_size(self):
        empty = KVReply("not_found")
        loaded = KVReply("ok", value=b"x" * 100)
        assert loaded.wire_bytes() == empty.wire_bytes() + 100

    def test_copy_batch_size_scales_with_pairs(self):
        one = CopyBatch("a", "b", pairs=[(b"k", b"v" * 100)])
        two = CopyBatch("a", "b", pairs=[(b"k", b"v" * 100)] * 2)
        assert two.wire_bytes() - one.wire_bytes() == 101

    def test_membership_update_scales_with_vnodes(self):
        small = MembershipUpdate(1, [("a", "j")], [("a", "RUNNING")])
        large = MembershipUpdate(1, [("a", "j")] * 10,
                                 [("a", "RUNNING")] * 10)
        assert large.wire_bytes() > small.wire_bytes()

    def test_fixed_size_messages(self):
        assert Heartbeat("j", 0.0).wire_bytes() == 24
        assert ChainAck(b"key", "v").wire_bytes() == 19


class TestDelReplication:
    def test_delete_propagates_through_chain(self):
        """DELs traverse the chain like PUTs (§3.3, §3.7): after an
        acked delete, no replica still holds the key."""
        cluster = LeedCluster(ClusterConfig(
            num_jbofs=3, ssds_per_jbof=1, num_clients=1, replication=3,
            store=StoreConfig(num_segments=32, key_log_bytes=1 << 20,
                              value_log_bytes=4 << 20),
            seed=13))
        cluster.start()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            result = yield from client.put(b"doomed", b"v")
            assert result.ok
            result = yield from client.delete(b"doomed")
            assert result.ok
            yield sim.timeout(2_000)  # acks drain

        drive(sim, proc())
        chain = client.local_ring.chain_ids_for_key(b"doomed")
        for node in cluster.jbofs:
            for vnode_id, runtime in node.vnodes.items():
                if vnode_id not in chain:
                    continue

                def check(runtime=runtime):
                    got = yield from runtime.store.get(b"doomed")
                    return got.status

                assert drive(sim, check()) == "not_found", vnode_id

    def test_delete_of_missing_key_replies_not_found(self):
        cluster = LeedCluster(ClusterConfig(
            num_jbofs=3, ssds_per_jbof=1, num_clients=1, replication=3,
            store=StoreConfig(num_segments=32, key_log_bytes=1 << 20,
                              value_log_bytes=4 << 20),
            seed=13))
        cluster.start()
        client = cluster.clients[0]

        def proc():
            return (yield from client.delete(b"never-existed"))

        assert drive(cluster.sim, proc()).status == "not_found"
