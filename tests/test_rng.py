"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(1)
        assert registry.stream("ssd/0") is registry.stream("ssd/0")

    def test_reproducible_across_registries(self):
        a = RngRegistry(42).stream("workload")
        b = RngRegistry(42).stream("workload")
        assert [a.random() for _ in range(20)] == \
            [b.random() for _ in range(20)]

    def test_streams_independent_of_creation_order(self):
        """The property that makes A/B ablations clean: touching one
        stream does not perturb another."""
        first = RngRegistry(7)
        first.stream("a")
        a_then_b = [first.stream("b").random() for _ in range(10)]

        second = RngRegistry(7)
        b_only = [second.stream("b").random() for _ in range(10)]
        assert a_then_b == b_only

    def test_different_names_different_sequences(self):
        registry = RngRegistry(3)
        a = [registry.stream("x").random() for _ in range(5)]
        b = [registry.stream("y").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_different_sequences(self):
        a = [RngRegistry(1).stream("s").random() for _ in range(5)]
        b = [RngRegistry(2).stream("s").random() for _ in range(5)]
        assert a != b

    def test_fork_derives_independent_registry(self):
        parent = RngRegistry(5)
        child_a = parent.fork("jbof0")
        child_b = parent.fork("jbof1")
        assert child_a.seed != child_b.seed
        assert child_a.seed == RngRegistry(5).fork("jbof0").seed
