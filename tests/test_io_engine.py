"""Tests for the intra-JBOF token I/O engine (§3.4)."""

import pytest

from repro.core.datastore import LeedDataStore, StoreConfig
from repro.core.io_engine import (
    TOKEN_COST,
    KVCommand,
    OverloadError,
    PartitionIOEngine,
)
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


@pytest.fixture
def store(sim):
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(5))
    return LeedDataStore(sim, ssd, StoreConfig(
        num_segments=32, key_log_bytes=1 << 20, value_log_bytes=4 << 20))


@pytest.fixture
def engine(sim, store):
    return PartitionIOEngine(sim, store, token_capacity=12,
                             waiting_capacity=8, name="eng")


class TestTokenCosts:
    def test_costs_match_nvme_accesses(self):
        """Token cost == device accesses per command (§3.3)."""
        assert TOKEN_COST["get"] == 2
        assert TOKEN_COST["put"] == 3
        assert TOKEN_COST["del"] == 2


class TestExecution:
    def test_submit_executes_command(self, sim, engine):
        def proc():
            put = yield engine.submit(KVCommand("put", b"k", b"v"))
            got = yield engine.submit(KVCommand("get", b"k"))
            return put, got

        put, got = drive(sim, proc())
        assert put.ok and got.ok
        assert got.value == b"v"
        assert engine.stats.completed == 2

    def test_delete_through_engine(self, sim, engine):
        def proc():
            yield engine.submit(KVCommand("put", b"k", b"v"))
            yield engine.submit(KVCommand("del", b"k"))
            got = yield engine.submit(KVCommand("get", b"k"))
            return got

        assert drive(sim, proc()).status == "not_found"

    def test_unknown_op_fails_event(self, sim, engine):
        def proc():
            try:
                yield engine.submit(KVCommand("scan", b"k"))
            except ValueError:
                return "rejected"

        assert drive(sim, proc()) == "rejected"

    def test_tokens_bound_concurrency(self, sim, store):
        """With 12 tokens, at most 4 PUTs (3 tokens each) run at once."""
        engine = PartitionIOEngine(sim, store, token_capacity=12,
                                   waiting_capacity=64, name="wide")
        peak = []

        def submit_many():
            events = [engine.submit(KVCommand("put", b"k%d" % i, b"v"))
                      for i in range(10)]
            yield sim.all_of(events)

        def monitor():
            while engine.stats.completed < 10:
                peak.append(engine.active_occupancy)
                yield sim.timeout(5)

        sim.process(monitor())
        drive(sim, submit_many())
        assert max(peak) <= 4

    def test_fcfs_start_order(self, sim, engine):
        starts = []
        original = engine._execute

        def traced(command):
            starts.append(command.key)
            return original(command)

        engine._execute = traced

        def proc():
            events = [engine.submit(KVCommand("get", b"g%d" % i))
                      for i in range(6)]
            yield sim.all_of(events)

        drive(sim, proc())
        assert starts == [b"g%d" % i for i in range(6)]


class TestOverload:
    def test_waiting_queue_overflow_rejects(self, sim, engine):
        outcomes = []

        def proc():
            events = [engine.submit(KVCommand("put", b"k%02d" % i, b"v"))
                      for i in range(30)]
            for event in events:
                try:
                    result = yield event
                    outcomes.append(result.status)
                except OverloadError:
                    outcomes.append("overload")

        drive(sim, proc())
        assert "overload" in outcomes
        assert engine.stats.rejected > 0
        assert outcomes.count("ok") >= 8

    def test_overload_signal(self, sim, engine):
        assert not engine.is_overloaded(threshold=1)
        for index in range(6):
            engine.submit(KVCommand("put", b"w%d" % index, b"v"))
        assert engine.waiting_occupancy > 0 or engine.active_occupancy > 0


class TestTokenAllocation:
    def test_idle_allocation_positive(self, sim, engine):
        assert engine.allocation_for("tenant") > 0

    def test_retiring_credit_included(self, sim, engine):
        base = engine.allocation_for("tenant")
        with_credit = engine.allocation_for("tenant", retiring_cost=3)
        assert with_credit == base + 3

    def test_weighted_split(self, sim, engine):
        engine.set_tenant_weight("gold", 3.0)
        engine.set_tenant_weight("bronze", 1.0)
        assert engine.allocation_for("gold") > engine.allocation_for("bronze")

    def test_backlog_shrinks_allocation(self, sim, engine):
        idle = engine.allocation_for("t")
        for index in range(8):
            engine.submit(KVCommand("put", b"b%d" % index, b"v"))
        assert engine.allocation_for("t") < idle

    def test_never_negative(self, sim, engine):
        for index in range(8):
            engine.submit(KVCommand("put", b"n%d" % index, b"v"))
        assert engine.allocation_for("t") >= 0


class TestStoreFullRetry:
    def test_put_waits_for_compaction_headroom(self, sim):
        """A PUT arriving at a full value log retries after backoff
        instead of failing (the paper: PUTs 'served slowly')."""
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(9))
        store = LeedDataStore(sim, ssd, StoreConfig(
            num_segments=32, key_log_bytes=1 << 20,
            value_log_bytes=128 << 10))
        engine = PartitionIOEngine(sim, store, token_capacity=100,
                                   waiting_capacity=100)

        def filler():
            index = 0
            while True:
                result = yield from store.put(b"f%05d" % index, b"x" * 900)
                if not result.ok:
                    return index
                index += 1

        process = sim.process(filler())
        count = sim.run(until=process)
        assert count > 0

        # Free space asynchronously while the engine retries the put.
        def free_later():
            yield sim.timeout(300)
            store.value_log.advance_head(store.value_log.head + 16384)

        sim.process(free_later())

        def proc():
            result = yield engine.submit(KVCommand("put", b"late", b"y" * 100))
            return result

        result = sim.run(until=sim.process(proc()))
        assert result.ok
