"""Tests for the CRAQ-style version-query alternative (§3.7).

The paper considered letting a dirty replica resolve reads with a
version query to the tail (as in CRAQ) and rejected it because it
"generates more internal traffic across JBOFs".  Both modes are
implemented; these tests check that CRAQ mode (a) stays consistent,
(b) actually serves up-to-date dirty reads locally, and (c) produces
the extra internal traffic the paper predicted.
"""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.jbof import LeedOptions
from repro.core.protocol import KVRequest

from conftest import drive


def make_cluster(mode="craq", seed=21):
    config = ClusterConfig(
        num_jbofs=3, ssds_per_jbof=1, num_clients=1, replication=3,
        store=StoreConfig(num_segments=32, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        options=LeedOptions(dirty_read_mode=mode),
        seed=seed)
    cluster = LeedCluster(config)
    cluster.start()
    return cluster


def dirty_read_at_head(cluster, key=b"hot"):
    """Write a key, mark the head dirty, read at the head; returns
    (reply, head_runtime)."""
    sim = cluster.sim
    client = cluster.clients[0]

    def proc():
        result = yield from client.put(key, b"committed-value")
        assert result.ok
        yield sim.timeout(2_000)  # acks drain
        chain = client.local_ring.chain_ids_for_key(key)
        head_id = chain[0]
        for node in cluster.jbofs:
            if head_id in node.vnodes:
                head_runtime = node.vnodes[head_id]
                head_node = node
        head_runtime.mark_dirty(key)  # as if a write were in flight
        reply = yield client.rpc.call(
            head_node.address, "kv",
            KVRequest("get", key, None, head_id,
                      client.local_ring.version, 0, "t"), 32)
        return reply, head_runtime

    return drive(sim, proc())


class TestCraqMode:
    def test_up_to_date_replica_serves_locally(self):
        """The head applied the write (versions match), so the version
        query lets it answer without shipping."""
        cluster = make_cluster("craq")
        reply, head = dirty_read_at_head(cluster)
        assert reply.status == "ok"
        assert reply.value == b"committed-value"
        assert head.stats.version_queries == 1
        assert head.stats.reads_shipped == 0
        assert reply.served_by == head.vnode_id  # local, not the tail

    def test_ship_mode_forwards_instead(self):
        cluster = make_cluster("ship")
        reply, head = dirty_read_at_head(cluster)
        assert reply.status == "ok"
        assert reply.value == b"committed-value"
        assert head.stats.version_queries == 0
        assert head.stats.reads_shipped == 1
        assert reply.served_by != head.vnode_id  # the tail answered

    def test_stale_replica_still_ships(self):
        """If the replica lags the committed version, CRAQ mode must
        fall back to shipping — never serve stale data."""
        cluster = make_cluster("craq")
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            result = yield from client.put(b"k", b"v1")
            assert result.ok
            yield sim.timeout(2_000)
            chain = client.local_ring.chain_ids_for_key(b"k")
            head_id, tail_id = chain[0], chain[-1]
            for node in cluster.jbofs:
                if head_id in node.vnodes:
                    head_runtime = node.vnodes[head_id]
                    head_node = node
                if tail_id in node.vnodes:
                    tail_runtime = node.vnodes[tail_id]
            # Simulate the head lagging: tail committed one more
            # version than the head applied.
            head_runtime.mark_dirty(b"k")
            tail_runtime.committed_version[b"k"] = \
                head_runtime.applied_version.get(b"k", 0) + 1
            reply = yield client.rpc.call(
                head_node.address, "kv",
                KVRequest("get", b"k", None, head_id,
                          client.local_ring.version, 0, "t"), 32)
            return reply, head_runtime

        reply, head = drive(sim, proc())
        assert reply.status == "ok"
        assert head.stats.version_queries == 1
        assert head.stats.reads_shipped == 1  # query, then ship anyway

    def test_craq_generates_more_internal_traffic(self):
        """The paper's reason for rejecting CRAQ: extra cross-JBOF
        messages per dirty read."""
        traffic = {}
        for mode in ("craq", "ship"):
            cluster = make_cluster(mode)
            reply, head = dirty_read_at_head(cluster)
            assert reply.status == "ok"
            traffic[mode] = head.stats.version_query_bytes
        assert traffic["craq"] > 0
        assert traffic["ship"] == 0

    def test_craq_cluster_consistency(self):
        """Full workload under CRAQ mode stays read-your-writes."""
        cluster = make_cluster("craq")
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for version in range(30):
                value = b"v%04d" % version
                result = yield from client.put(b"key", value)
                assert result.ok
                got = yield from client.get(b"key")
                assert got.ok and got.value == value

        drive(sim, proc())
