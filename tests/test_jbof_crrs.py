"""Tests for the JBOF node and CRRS chain replication (§3.7)."""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.jbof import LeedOptions
from repro.core.protocol import KVRequest

from conftest import drive


def small_cluster(num_jbofs=3, replication=3, crrs=True, num_clients=1,
                  seed=0, **options_kwargs):
    options = LeedOptions(**options_kwargs) if options_kwargs else LeedOptions()
    config = ClusterConfig(
        num_jbofs=num_jbofs, ssds_per_jbof=2, num_clients=num_clients,
        replication=replication,
        store=StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        options=options, crrs=crrs, seed=seed)
    cluster = LeedCluster(config)
    cluster.start()
    return cluster


class TestWritePath:
    def test_write_replicated_to_all_chain_members(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            result = yield from client.put(b"replicated-key", b"the-value")
            assert result.ok
            # Let backward acks drain.
            yield sim.timeout(1000)

        drive(sim, proc())
        chain = client.local_ring.chain_ids_for_key(b"replicated-key")
        assert len(chain) == 3
        holders = 0
        for node in cluster.jbofs:
            for vnode_id, runtime in node.vnodes.items():
                if vnode_id in chain:
                    def check(runtime=runtime):
                        got = yield from runtime.store.get(b"replicated-key")
                        return got

                    got = drive(sim, check())
                    assert got.ok and got.value == b"the-value"
                    holders += 1
        assert holders == 3

    def test_dirty_bits_cleared_after_commit(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for index in range(20):
                result = yield from client.put(b"k%02d" % index, b"v")
                assert result.ok
            yield sim.timeout(2000)  # acks propagate backward

        drive(sim, proc())
        residue = sum(len(rt.dirty) for node in cluster.jbofs
                      for rt in node.vnodes.values())
        assert residue == 0

    def test_tail_commits_and_counts(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for index in range(10):
                yield from client.put(b"w%d" % index, b"v")
            yield sim.timeout(500)

        drive(sim, proc())
        commits = sum(rt.stats.writes_committed for node in cluster.jbofs
                      for rt in node.vnodes.values())
        forwards = sum(rt.stats.writes_forwarded for node in cluster.jbofs
                       for rt in node.vnodes.values())
        assert commits == 10
        assert forwards == 20  # two non-tail hops per write


class TestReadPath:
    def test_read_any_clean_replica(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            yield from client.put(b"key", b"value")
            yield sim.timeout(1000)
            # Read repeatedly; CRRS may serve from any replica.
            for _ in range(12):
                result = yield from client.get(b"key")
                assert result.ok and result.value == b"value"

        drive(sim, proc())
        served = [rt.stats.reads_served for node in cluster.jbofs
                  for rt in node.vnodes.values()]
        assert sum(served) == 12

    def test_dirty_read_ships_to_tail(self):
        """A GET hitting a replica with the dirty bit set must be
        shipped to the tail, never served stale."""
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            yield from client.put(b"hot", b"v0")
            yield sim.timeout(1000)
            chain = client.local_ring.chain_ids_for_key(b"hot")
            # Manually dirty the head replica (as if a write were in
            # flight) and force a read at it.
            head_id = chain[0]
            for node in cluster.jbofs:
                if head_id in node.vnodes:
                    node.vnodes[head_id].mark_dirty(b"hot")
                    head_node, head_runtime = node, node.vnodes[head_id]
            reply = yield client.rpc.call(
                head_node.address, "kv",
                KVRequest("get", b"hot", None, head_id,
                          client.local_ring.version, 0, "t"),
                32)
            return reply, head_runtime.stats.reads_shipped

        reply, shipped = drive(sim, proc())
        assert reply.status == "ok"
        assert reply.value == b"v0"
        assert shipped == 1
        # The reply came from the tail, not the dirty head.
        chain = cluster.clients[0].local_ring.chain_ids_for_key(b"hot")
        assert reply.served_by == chain[-1]

    def test_read_without_crrs_goes_to_tail(self):
        cluster = small_cluster(crrs=False)
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            yield from client.put(b"k", b"v")
            yield sim.timeout(500)
            for _ in range(8):
                result = yield from client.get(b"k")
                assert result.ok

        drive(sim, proc())
        chain = client.local_ring.chain_ids_for_key(b"k")
        tail_id = chain[-1]
        for node in cluster.jbofs:
            for vnode_id, runtime in node.vnodes.items():
                if vnode_id == tail_id:
                    assert runtime.stats.reads_served == 8
                elif vnode_id in chain:
                    assert runtime.stats.reads_served == 0


class TestViewValidation:
    def test_stale_hop_nacked(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            chain = client.local_ring.chain_for_key(b"key")
            wrong_hop = 2  # head vnode addressed as if it were the tail
            reply = yield client.rpc.call(
                chain[0].jbof_address, "kv",
                KVRequest("put", b"key", b"v", chain[0].vnode_id,
                          client.local_ring.version, wrong_hop, "t"),
                64)
            return reply

        reply = drive(sim, proc())
        assert reply.status == "nack"

    def test_unknown_vnode_unavailable(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            reply = yield client.rpc.call(
                cluster.jbofs[0].address, "kv",
                KVRequest("get", b"key", None, "jbof0/p999",
                          client.local_ring.version, 0, "t"),
                32)
            return reply

        assert drive(sim, proc()).status == "unavailable"


class TestTokenPiggyback:
    def test_replies_carry_tokens(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            yield from client.put(b"k", b"v")
            result = yield from client.get(b"k")
            return result

        result = drive(sim, proc())
        assert result.ok
        served = result.served_by
        assert client.flow.view(served).tokens > 0


class TestSwapInCluster:
    def test_swap_disabled_never_redirects(self):
        cluster = small_cluster(enable_swap=False)
        sim = cluster.sim
        client = cluster.clients[0]

        def proc():
            for index in range(40):
                yield from client.put(b"s%02d" % index, b"v" * 256)

        drive(sim, proc())
        assert sum(node.swap_redirects for node in cluster.jbofs) == 0

    def test_crash_makes_node_silent(self):
        cluster = small_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        cluster.jbofs[1].crash()

        def proc():
            result = yield from client.put(b"k", b"v")
            return result

        result = drive(sim, proc())
        # The write either succeeded via a chain that avoids jbof1, or
        # exhausted retries; it must not hang or corrupt.
        assert result.status in ("ok", "unavailable", "overloaded")
