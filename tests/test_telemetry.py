"""Tests for the telemetry snapshot/report module."""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.telemetry import render, snapshot

from conftest import drive


@pytest.fixture
def busy_cluster():
    cluster = LeedCluster(ClusterConfig(
        num_jbofs=2, ssds_per_jbof=1, num_clients=1, replication=2,
        store=StoreConfig(num_segments=32, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        seed=15))
    cluster.start()
    client = cluster.clients[0]

    def warmup():
        for index in range(25):
            result = yield from client.put(b"k%02d" % index, b"v" * 100)
            assert result.ok
        for index in range(25):
            result = yield from client.get(b"k%02d" % index)
            assert result.ok
        yield cluster.sim.timeout(1_000)

    drive(cluster.sim, warmup())
    return cluster


class TestSnapshot:
    def test_structure(self, busy_cluster):
        snap = snapshot(busy_cluster)
        assert snap.time_us > 0
        assert snap.ring_version == 1
        assert len(snap.nodes) == 2
        assert len(snap.clients) == 1
        assert snap.total_energy_joules > 0

    def test_device_counters_nonzero(self, busy_cluster):
        snap = snapshot(busy_cluster)
        devices = [d for node in snap.nodes for d in node.devices]
        assert sum(d.reads for d in devices) > 0
        assert sum(d.writes for d in devices) > 0
        assert all(0 <= d.busy_fraction <= 1 for d in devices)

    def test_vnode_counters(self, busy_cluster):
        snap = snapshot(busy_cluster)
        vnodes = [v for node in snap.nodes for v in node.vnodes]
        assert sum(v.live_objects for v in vnodes) >= 25  # replicated
        assert sum(v.completed for v in vnodes) > 0
        assert all(v.state == "RUNNING" for v in vnodes)
        assert all(v.dirty_keys == 0 for v in vnodes)  # acks drained

    def test_client_counters(self, busy_cluster):
        snap = snapshot(busy_cluster)
        client = snap.clients[0]
        assert client.operations == 50
        assert client.ok == 50
        assert client.mean_latency_us > 0
        assert client.p99_latency_us >= client.mean_latency_us * 0.5

    def test_render_contains_everything(self, busy_cluster):
        text = render(snapshot(busy_cluster))
        assert "jbof0" in text
        assert "jbof1" in text
        assert "client0" in text
        assert "ring v1" in text
        assert "ops" in text

    def test_render_marks_dead_nodes(self, busy_cluster):
        busy_cluster.jbofs[1].crash()
        text = render(snapshot(busy_cluster))
        assert "DOWN" in text
