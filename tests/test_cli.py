"""Tests for the `python -m repro.bench` command-line runner."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "stingray" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_every_listed_experiment_importable(self):
        import importlib
        for name in EXPERIMENTS:
            module = importlib.import_module(
                "repro.bench.experiments." + name)
            assert callable(module.run)
