"""Tests for the `python -m repro.bench` and `python -m repro.obs.trace`
command-line runners."""

import json

import pytest

from repro.bench.__main__ import EXPERIMENTS, main
from repro.obs.trace import main as trace_main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "stingray" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_every_listed_experiment_importable(self):
        import importlib
        for name in EXPERIMENTS:
            module = importlib.import_module(
                "repro.bench.experiments." + name)
            assert callable(module.run)


class TestTraceCli:
    def test_writes_chrome_trace_artifact(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert trace_main(["--ops", "6", "--output", str(out),
                           "--metrics-output", str(metrics),
                           "--metrics-interval-us", "5000"]) == 0
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        cats = {e["cat"] for e in events if e["ph"] == "X"}
        assert {"client", "net", "engine", "device"} <= cats
        assert json.loads(metrics.read_text())
        err = capsys.readouterr().err
        assert "traced" in err and "coverage" in err

    def test_stdout_output(self, capsys):
        assert trace_main(["--ops", "2", "--jbofs", "2"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["traceEvents"]

    def test_deterministic_across_runs(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert trace_main(["--ops", "4", "--output", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()
