"""Tests for the fabric, RDMA verbs, and RPC layer."""

import pytest

from repro.net.rdma import QueuePair, WIRE_OVERHEAD_BYTES
from repro.net.rpc import RpcEndpoint, RpcError, RpcTimeout
from repro.net.topology import NIC_1G_USB, NIC_100G, Network

from conftest import drive


@pytest.fixture
def net(sim):
    network = Network(sim)
    network.attach("a")
    network.attach("b")
    return network


class TestFabric:
    def test_delivery(self, sim, net):
        net.transmit("a", "b", 100, "hello")
        sim.run()
        assert net.nic("b").rx_queue.try_get() == "hello"
        assert net.messages_delivered == 1

    def test_in_order_per_pair(self, sim, net):
        for index in range(5):
            net.transmit("a", "b", 1000, index)
        sim.run()
        received = []
        while True:
            item = net.nic("b").rx_queue.try_get()
            if item is None:
                break
            received.append(item)
        assert received == [0, 1, 2, 3, 4]

    def test_latency_scales_with_size(self, sim, net):
        small = net.one_way_latency_us("a", "b", 64)
        large = net.one_way_latency_us("a", "b", 64 * 1024)
        assert large > small

    def test_serialization_paces_sender(self, sim, net):
        # Two 125000-byte messages at 12.5 GB/s: second is delayed by
        # the first's 10us serialization.
        net.transmit("a", "b", 125000, 1)
        net.transmit("a", "b", 125000, 2)
        sim.run()
        # Both delivered, and time includes 2x serialization.
        assert sim.now >= 2 * 125000 / NIC_100G.bandwidth_bpus

    def test_partition_drops_traffic(self, sim, net):
        net.partition("b")
        net.transmit("a", "b", 10, "lost")
        sim.run()
        assert net.nic("b").rx_queue.try_get() is None
        net.heal("b")
        net.transmit("a", "b", 10, "found")
        sim.run()
        assert net.nic("b").rx_queue.try_get() == "found"

    def test_partition_mid_flight(self, sim, net):
        net.transmit("a", "b", 10, "doomed")
        net.partition("b")  # dies before delivery
        sim.run()
        assert net.nic("b").rx_queue.try_get() is None

    def test_unknown_endpoint_rejected(self, sim, net):
        with pytest.raises(KeyError):
            net.transmit("a", "nowhere", 1, "x")

    def test_duplicate_attach_rejected(self, sim, net):
        with pytest.raises(ValueError):
            net.attach("a")

    def test_slow_nic_profile(self, sim):
        network = Network(sim)
        network.attach("pi", NIC_1G_USB)
        network.attach("host")
        slow = network.one_way_latency_us("pi", "host", 1500)
        network2 = Network(sim)
        network2.attach("fast1")
        network2.attach("fast2")
        fast = network2.one_way_latency_us("fast1", "fast2", 1500)
        assert slow > 10 * fast


class TestRdmaVerbs:
    def test_send_reaches_recv_cq(self, sim, net):
        qp_a = QueuePair(sim, net, "a")
        qp_b = QueuePair(sim, net, "b")

        def proc():
            qp_a.post_send("b", {"cmd": "get"}, 64)
            completion = yield qp_b.recv_cq.get()
            return completion

        completion = drive(sim, proc())
        assert completion.src == "a"
        assert completion.payload == {"cmd": "get"}

    def test_write_imm_lands_in_region(self, sim, net):
        qp_a = QueuePair(sim, net, "a")
        qp_b = QueuePair(sim, net, "b")
        region = qp_a.register_region(4096)

        def proc():
            qp_b.post_write_imm("a", region.key, b"response", 8, imm=77)
            completion = yield qp_a.write_cq.get()
            return completion

        completion = drive(sim, proc())
        assert completion.imm == 77
        assert region.data == b"response"

    def test_write_to_deregistered_region_dropped(self, sim, net):
        qp_a = QueuePair(sim, net, "a")
        qp_b = QueuePair(sim, net, "b")
        region = qp_a.register_region(64)
        qp_a.deregister_region(region.key)
        qp_b.post_write_imm("a", region.key, b"x", 1, imm=1)
        sim.run(until=100)
        assert len(qp_a.write_cq) == 0

    def test_verb_counters(self, sim, net):
        qp_a = QueuePair(sim, net, "a")
        QueuePair(sim, net, "b")
        qp_a.post_send("b", "x", 4)
        qp_a.post_write_imm("b", 1, "y", 4, imm=0)
        assert qp_a.sends_posted == 1
        assert qp_a.writes_posted == 1


class TestRpc:
    def test_round_trip(self, sim, net):
        client = RpcEndpoint(sim, net, "a")
        server = RpcEndpoint(sim, net, "b")

        def handler(src, body):
            yield sim.timeout(1)
            return body * 2, 8

        server.register("double", handler)

        def proc():
            result = yield client.call("b", "double", 21, 8)
            return result

        assert drive(sim, proc()) == 42

    def test_plain_function_handler(self, sim, net):
        client = RpcEndpoint(sim, net, "a")
        server = RpcEndpoint(sim, net, "b")
        server.register("echo", lambda src, body: (body, 4))

        def proc():
            return (yield client.call("b", "echo", "hi", 2))

        assert drive(sim, proc()) == "hi"

    def test_missing_handler_fails_call(self, sim, net):
        client = RpcEndpoint(sim, net, "a")
        RpcEndpoint(sim, net, "b")

        def proc():
            yield client.call("b", "nothing", None, 0)

        with pytest.raises(RpcError):
            drive(sim, proc())

    def test_timeout_on_dead_server(self, sim, net):
        client = RpcEndpoint(sim, net, "a")
        RpcEndpoint(sim, net, "b")
        net.partition("b")

        def proc():
            try:
                yield client.call("b", "x", None, 0, timeout_us=50)
            except RpcTimeout:
                return "timed-out"

        assert drive(sim, proc()) == "timed-out"
        assert sim.now >= 50

    def test_notify_one_way(self, sim, net):
        client = RpcEndpoint(sim, net, "a")
        server = RpcEndpoint(sim, net, "b")
        heard = []

        def on_ping(src, body):
            heard.append((src, body))
            return None

        server.register("ping", on_ping)
        client.notify("b", "ping", "knock", 5)
        sim.run(until=100)
        assert heard == [("a", "knock")]

    def test_raw_handler_forwarding(self, sim, net):
        """A raw handler forwards the envelope; the remote responds
        directly to the original caller (request shipping)."""
        net.attach("c")
        client = RpcEndpoint(sim, net, "a")
        middle = RpcEndpoint(sim, net, "b")
        tail = RpcEndpoint(sim, net, "c")

        def middle_handler(src, request):
            middle.forward("c", request)
            yield sim.timeout(0)

        def tail_handler(src, request):
            yield sim.timeout(1)
            tail.respond(request, "from-tail", 9)

        middle.register_raw("kv", middle_handler)
        tail.register_raw("kv", tail_handler)

        def proc():
            return (yield client.call("b", "kv", "get-x", 5))

        assert drive(sim, proc()) == "from-tail"

    def test_duplicate_registration_rejected(self, sim, net):
        server = RpcEndpoint(sim, net, "b")
        server.register("m", lambda s, b: None)
        with pytest.raises(ValueError):
            server.register("m", lambda s, b: None)
        with pytest.raises(ValueError):
            server.register_raw("m", lambda s, r: None)
