"""Partition-parallel engine: determinism cross-checks + unit tests.

The headline contract of :mod:`repro.sim.parallel`:

* ``workers=0`` (classic single simulator) and ``workers=1`` (sharded,
  stepped in-process) produce identical figure metrics — completed
  ops, latency statistics, histograms, energy.
* ``workers=1`` and ``workers=N`` (forked) additionally produce
  byte-identical per-shard schedule digests: process count must not
  leak into the event schedule.

The cross-check here runs one fixed-seed YCSB-B workload at each
worker count and compares everything.
"""

import pytest

from repro.bench.harness import (build_cluster, latency_summary,
                                 load_cluster, run_closed_loop)
from repro.core.cluster import LeedCluster
from repro.net.topology import NIC_100G, Network, SwitchProfile
from repro.sim.core import Simulator
from repro.sim.parallel import ShardPlan
from repro.workloads.ycsb import YCSBWorkload

SEED = 13
VALUE_SIZE = 256
RECORDS = 120
OPS = 240
CONCURRENCY = 8


def run_fixture(workers):
    """One fixed-seed YCSB-B run; returns (figures, digests, reports)."""
    cluster = build_cluster("leed", scale="quick", value_size=VALUE_SIZE,
                            seed=SEED, num_nodes=3, num_clients=2,
                            workers=workers)
    cluster.enable_schedule_digests()
    workload = YCSBWorkload("B", num_records=RECORDS, seed=SEED,
                            value_size=VALUE_SIZE)
    load_cluster(cluster, workload, parallelism=8)
    stats = run_closed_loop(cluster, workload, OPS, CONCURRENCY)
    cluster.shutdown()
    cluster.sim.run()
    figures = {
        "completed": stats.completed,
        "failed": stats.failed,
        "elapsed_us": round(stats.elapsed_us, 6),
        "mean_us": round(stats.mean_latency_us(), 6),
        "p99_us": round(stats.percentile_us(0.99), 6),
        "energy_j": round(cluster.energy_joules(), 9),
        "latency_rows": latency_summary(cluster, "xcheck"),
    }
    digests = cluster.shard_digests()
    reports = cluster.shard_reports()
    cluster.stop_workers()
    return figures, digests, reports


@pytest.fixture(scope="module")
def runs():
    """The same workload at workers 0 (serial), 1 (sharded), 4 (forked)."""
    return {workers: run_fixture(workers) for workers in (0, 1, 4)}


class TestDeterminismCrossCheck:
    def test_serial_matches_sharded_figures(self, runs):
        """workers=0 and workers=1 agree on every figure metric."""
        assert runs[0][0] == runs[1][0]

    def test_forked_matches_sharded_figures(self, runs):
        """workers=4 agrees with workers=1 on every figure metric."""
        assert runs[4][0] == runs[1][0]

    def test_forked_matches_sharded_schedule_digests(self, runs):
        """Per-shard schedules are byte-identical across worker counts."""
        _, digests_w1, reports_w1 = runs[1]
        _, digests_w4, reports_w4 = runs[4]
        assert set(digests_w1) == {0, 1, 2, 3}
        assert all(digests_w1.values()), "digests were not enabled"
        assert digests_w4 == digests_w1
        for sid in digests_w1:
            assert (reports_w4[sid]["digest_events"]
                    == reports_w1[sid]["digest_events"])
            assert (reports_w4[sid]["events_dispatched"]
                    == reports_w1[sid]["events_dispatched"])

    def test_workload_actually_ran(self, runs):
        figures = runs[0][0]
        assert figures["completed"] == OPS
        assert figures["failed"] == 0
        assert figures["energy_j"] > 0


class TestShardPlan:
    def test_for_cluster_layout(self):
        plan = ShardPlan.for_cluster(
            "cp", ["client0", "client1"], ["jbof0", "jbof1", "jbof2"])
        assert plan.num_shards == 4
        assert plan.shard_of["cp"] == 0
        assert plan.shard_of["client0"] == 0
        assert plan.shard_of["client1"] == 0
        assert plan.shard_of["jbof0"] == 1
        assert plan.shard_of["jbof2"] == 3


class TestNetworkSharding:
    def _sharded_fabric(self):
        sim0, sim1 = Simulator(), Simulator()
        network = Network(sim0)
        network.attach("a", NIC_100G, sim=sim0)
        network.attach("b", NIC_100G, sim=sim1)
        network.configure_shards({"a": 0, "b": 1}, {0: sim0, 1: sim1})
        return network, sim0, sim1

    def test_min_cross_shard_delay(self):
        network, _, _ = self._sharded_fabric()
        expected = (1.0 / NIC_100G.bandwidth_bpus
                    + NIC_100G.base_latency_us
                    + SwitchProfile().hop_latency_us
                    + 1.0 / NIC_100G.bandwidth_bpus)
        assert network.min_cross_shard_delay_us() == pytest.approx(expected)

    def test_min_delay_infinite_without_cross_shard_pairs(self):
        sim = Simulator()
        network = Network(sim)
        network.attach("a", NIC_100G, sim=sim)
        network.attach("b", NIC_100G, sim=sim)
        assert network.min_cross_shard_delay_us() == float("inf")

    def test_cross_shard_transmit_lands_on_boundary(self):
        network, sim0, _ = self._sharded_fabric()
        network.transmit("a", "b", 64, "payload")
        records = network.take_boundary()
        assert len(records) == 1
        deliver_at, dst, src, _seq, _wire, _payload = records[0]
        assert (dst, src) == ("b", "a")
        assert deliver_at >= sim0.now + network.min_cross_shard_delay_us()
        assert network.take_boundary() == []

    def test_same_shard_transmit_bypasses_boundary(self):
        network, sim0, _ = self._sharded_fabric()
        network.attach("c", NIC_100G, sim=sim0)
        network.transmit("a", "c", 64, "payload")
        assert network.boundary == []
        # The delivery went to shard 0's pump: a drain event is queued.
        assert sim0.peek() < float("inf")

    def test_inject_refuses_past_delivery(self):
        network, _, sim1 = self._sharded_fabric()
        sim1.sync_now(10.0)
        with pytest.raises(ValueError):
            network.inject((5.0, "b", "a", 1, 64, "late"))


class TestRunWindow:
    def test_window_end_exclusive_by_default(self):
        sim = Simulator()
        fired = []
        for when in (1.0, 2.0, 3.0):
            sim.schedule(when, lambda when=when: fired.append(when))
        sim.run_window(2.0)
        assert fired == [1.0]
        sim.run_window(2.0, inclusive=True)
        assert fired == [1.0, 2.0]
        assert sim.peek() == 3.0

    def test_clock_stays_at_last_dispatched_event(self):
        sim = Simulator()
        sim.schedule(1.5, lambda: None)
        sim.run_window(4.0)
        assert sim.now == 1.5

    def test_sync_now_never_rewinds(self):
        sim = Simulator()
        sim.sync_now(7.0)
        assert sim.now == 7.0
        sim.sync_now(3.0)
        assert sim.now == 7.0


class TestParallelClusterGuards:
    def test_tracing_requires_single_process(self):
        with pytest.raises(ValueError):
            LeedCluster(num_jbofs=2, num_clients=1, workers=2,
                        trace_sample_interval=1)

    def test_metrics_sampler_requires_single_process(self):
        with pytest.raises(ValueError):
            LeedCluster(num_jbofs=2, num_clients=1, workers=2,
                        metrics_interval_us=100.0)

    def test_run_until_past_deadline_raises(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=1)
        cluster.start()
        cluster.sim.run(until=50.0)
        with pytest.raises(ValueError):
            cluster.sim.run(until=10.0)
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()

    def test_digests_must_be_enabled_before_fork(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=2)
        cluster.start()
        cluster.sim.run(until=200.0)  # first run forks the workers
        assert cluster.engine.forked
        with pytest.raises(RuntimeError):
            cluster.enable_schedule_digests()
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()
