"""Partition-parallel engine: determinism cross-checks + unit tests.

The headline contract of :mod:`repro.sim.parallel`:

* ``workers=0`` (classic single simulator) and ``workers=1`` (sharded,
  stepped in-process) produce identical figure metrics — completed
  ops, latency statistics, histograms, energy.
* ``workers=1`` and ``workers=N`` (forked) additionally produce
  byte-identical per-shard schedule digests: process count must not
  leak into the event schedule.

The cross-check here runs one fixed-seed YCSB-B workload at each
worker count and compares everything.
"""

import pytest

from repro.bench.harness import (build_cluster, latency_summary,
                                 load_cluster, run_closed_loop)
from repro.core.cluster import LeedCluster
from repro.net.topology import (NIC_100G, NIC_1G_USB, Network,
                                SwitchProfile)
from repro.sim.core import Simulator
from repro.sim.parallel import ParallelEngine, ShardPlan
from repro.workloads.ycsb import YCSBWorkload

SEED = 13
VALUE_SIZE = 256
RECORDS = 120
OPS = 240
CONCURRENCY = 8


def run_fixture(workers):
    """One fixed-seed YCSB-B run; returns (figures, digests, reports)."""
    cluster = build_cluster("leed", scale="quick", value_size=VALUE_SIZE,
                            seed=SEED, num_nodes=3, num_clients=2,
                            workers=workers)
    cluster.enable_schedule_digests()
    workload = YCSBWorkload("B", num_records=RECORDS, seed=SEED,
                            value_size=VALUE_SIZE)
    load_cluster(cluster, workload, parallelism=8)
    stats = run_closed_loop(cluster, workload, OPS, CONCURRENCY)
    cluster.shutdown()
    cluster.sim.run()
    figures = {
        "completed": stats.completed,
        "failed": stats.failed,
        "elapsed_us": round(stats.elapsed_us, 6),
        "mean_us": round(stats.mean_latency_us(), 6),
        "p99_us": round(stats.percentile_us(0.99), 6),
        "energy_j": round(cluster.energy_joules(), 9),
        "latency_rows": latency_summary(cluster, "xcheck"),
    }
    digests = cluster.shard_digests()
    reports = cluster.shard_reports()
    cluster.stop_workers()
    return figures, digests, reports


@pytest.fixture(scope="module")
def runs():
    """The same workload at workers 0 (serial), 1 (sharded), 4 (forked)."""
    return {workers: run_fixture(workers) for workers in (0, 1, 4)}


class TestDeterminismCrossCheck:
    def test_serial_matches_sharded_figures(self, runs):
        """workers=0 and workers=1 agree on every figure metric."""
        assert runs[0][0] == runs[1][0]

    def test_forked_matches_sharded_figures(self, runs):
        """workers=4 agrees with workers=1 on every figure metric."""
        assert runs[4][0] == runs[1][0]

    def test_forked_matches_sharded_schedule_digests(self, runs):
        """Per-shard schedules are byte-identical across worker counts."""
        _, digests_w1, reports_w1 = runs[1]
        _, digests_w4, reports_w4 = runs[4]
        assert set(digests_w1) == {0, 1, 2, 3}
        assert all(digests_w1.values()), "digests were not enabled"
        assert digests_w4 == digests_w1
        for sid in digests_w1:
            assert (reports_w4[sid]["digest_events"]
                    == reports_w1[sid]["digest_events"])
            assert (reports_w4[sid]["events_dispatched"]
                    == reports_w1[sid]["events_dispatched"])

    def test_workload_actually_ran(self, runs):
        figures = runs[0][0]
        assert figures["completed"] == OPS
        assert figures["failed"] == 0
        assert figures["energy_j"] > 0


class TestShardPlan:
    def test_for_cluster_layout(self):
        plan = ShardPlan.for_cluster(
            "cp", ["client0", "client1"], ["jbof0", "jbof1", "jbof2"])
        assert plan.num_shards == 4
        assert plan.shard_of["cp"] == 0
        assert plan.shard_of["client0"] == 0
        assert plan.shard_of["client1"] == 0
        assert plan.shard_of["jbof0"] == 1
        assert plan.shard_of["jbof2"] == 3


class TestNetworkSharding:
    def _sharded_fabric(self):
        sim0, sim1 = Simulator(), Simulator()
        network = Network(sim0)
        network.attach("a", NIC_100G, sim=sim0)
        network.attach("b", NIC_100G, sim=sim1)
        network.configure_shards({"a": 0, "b": 1}, {0: sim0, 1: sim1})
        return network, sim0, sim1

    def test_min_cross_shard_delay(self):
        network, _, _ = self._sharded_fabric()
        expected = (1.0 / NIC_100G.bandwidth_bpus
                    + NIC_100G.base_latency_us
                    + SwitchProfile().hop_latency_us
                    + 1.0 / NIC_100G.bandwidth_bpus)
        assert network.min_cross_shard_delay_us() == pytest.approx(expected)

    def test_min_delay_infinite_without_cross_shard_pairs(self):
        sim = Simulator()
        network = Network(sim)
        network.attach("a", NIC_100G, sim=sim)
        network.attach("b", NIC_100G, sim=sim)
        assert network.min_cross_shard_delay_us() == float("inf")

    def test_cross_shard_transmit_lands_on_boundary(self):
        network, sim0, _ = self._sharded_fabric()
        network.transmit("a", "b", 64, "payload")
        records = network.take_boundary()
        assert len(records) == 1
        deliver_at, dst, src, _seq, _wire, _payload = records[0]
        assert (dst, src) == ("b", "a")
        assert deliver_at >= sim0.now + network.min_cross_shard_delay_us()
        assert network.take_boundary() == []

    def test_same_shard_transmit_bypasses_boundary(self):
        network, sim0, _ = self._sharded_fabric()
        network.attach("c", NIC_100G, sim=sim0)
        network.transmit("a", "c", 64, "payload")
        assert network.boundary == []
        # The delivery went to shard 0's pump: a drain event is queued.
        assert sim0.peek() < float("inf")

    def test_inject_refuses_past_delivery(self):
        network, _, sim1 = self._sharded_fabric()
        sim1.sync_now(10.0)
        with pytest.raises(ValueError):
            network.inject((5.0, "b", "a", 1, 64, "late"))


class TestLookaheadMatrix:
    """Per-pair lookahead: exact values, separable parts, caching."""

    def _fabric(self):
        sims = {0: Simulator(), 1: Simulator(), 2: Simulator()}
        network = Network(sims[0])
        network.attach("cp", NIC_100G, sim=sims[0])
        network.attach("slow", NIC_1G_USB, sim=sims[1])
        network.attach("fast", NIC_100G, sim=sims[2])
        network.configure_shards({"cp": 0, "slow": 1, "fast": 2}, sims)
        return network, sims

    @staticmethod
    def _tx(profile):
        return 1.0 / profile.bandwidth_bpus + profile.base_latency_us

    @staticmethod
    def _rx(profile):
        return 1.0 / profile.bandwidth_bpus

    def test_asymmetric_pairs_exact(self):
        network, _ = self._fabric()
        hop = SwitchProfile().hop_latency_us
        matrix = network.cross_shard_lookahead()
        assert set(matrix) == {(s, d) for s in (0, 1, 2)
                               for d in (0, 1, 2) if s != d}
        assert matrix[(0, 1)] == pytest.approx(
            self._tx(NIC_100G) + hop + self._rx(NIC_1G_USB))
        assert matrix[(1, 2)] == pytest.approx(
            self._tx(NIC_1G_USB) + hop + self._rx(NIC_100G))
        assert matrix[(0, 2)] == pytest.approx(
            self._tx(NIC_100G) + hop + self._rx(NIC_100G))
        # Direction matters: leaving the USB-NIC shard pays its big
        # base latency, entering it only pays its serialization.
        assert matrix[(1, 0)] > matrix[(0, 1)]
        assert network.min_cross_shard_delay_us() == min(matrix.values())

    def test_parts_compose_to_matrix(self):
        network, _ = self._fabric()
        tx, rx = network.cross_shard_lookahead_parts()
        matrix = network.cross_shard_lookahead()
        for (src, dst), value in matrix.items():
            assert tx[src] + rx[dst] == value

    def test_cached_until_topology_changes(self):
        network, sims = self._fabric()
        first = network.cross_shard_lookahead()
        assert network.cross_shard_lookahead() is first
        version = network.topology_version
        network.attach("joiner", NIC_100G, sim=sims[1])
        assert network.topology_version > version
        assert network.cross_shard_lookahead() is not first

    def test_post_join_recompute_tightens_pairs(self):
        network, sims = self._fabric()
        before = dict(network.cross_shard_lookahead())
        hop = SwitchProfile().hop_latency_us
        network.attach("joiner", NIC_100G, sim=sims[1])
        network.configure_shards(
            {"cp": 0, "slow": 1, "fast": 2, "joiner": 1}, sims)
        after = network.cross_shard_lookahead()
        assert after[(1, 0)] < before[(1, 0)]
        assert after[(1, 0)] == pytest.approx(
            self._tx(NIC_100G) + hop + self._rx(NIC_100G))


class TestBarrierElision:
    """Idle shards skip windows (and pipe round-trips) entirely."""

    def _engine(self, workers):
        sims = {0: Simulator(), 1: Simulator(), 2: Simulator()}
        network = Network(sims[0])
        for sid, name in ((0, "a"), (1, "b"), (2, "c")):
            network.attach(name, NIC_100G, sim=sims[sid])
        network.configure_shards({"a": 0, "b": 1, "c": 2}, sims)
        fired = []
        # One early cross-shard message, then a long stretch where
        # only shard 0 has (widely spaced) local events: shards 1-2
        # must be elided from those windows, not barriered.
        sims[0].schedule(0.5, lambda: network.transmit("a", "b", 64, "x"))
        for when in (1000.0, 2000.0, 3000.0):
            sims[0].schedule(when, lambda when=when: fired.append(when))
        engine = ParallelEngine(network, sims, workers)
        engine.enable_schedule_digests()
        return engine, fired

    def test_quiet_shards_are_elided(self):
        engine, fired = self._engine(workers=1)
        engine.run(until=4000.0)
        assert fired == [1000.0, 2000.0, 3000.0]
        stats = engine.stats
        assert stats.records_exchanged == 1
        assert stats.elided_shard_windows > 0
        assert stats.shard_windows < stats.windows * 3

    def test_elision_preserves_schedule_digests(self):
        """workers=1 and workers=2 agree through elided windows, and
        the forked engine actually skipped worker round-trips."""
        engine1, _ = self._engine(workers=1)
        engine1.run(until=4000.0)
        reports1 = engine1.collect()
        engine2, _ = self._engine(workers=2)
        engine2.run(until=4000.0)
        reports2 = engine2.collect()
        assert engine2.stats.elided_child_messages > 0
        assert engine2.stats.child_messages > 0
        for sid in (0, 1, 2):
            assert (reports2[sid]["schedule_digest"]
                    == reports1[sid]["schedule_digest"])
            assert (reports2[sid]["events_dispatched"]
                    == reports1[sid]["events_dispatched"])
        engine1.stop_workers()
        engine2.stop_workers()


class TestXlargeSmokeGeometry:
    """The 16-JBOF / 64-client tier keeps the determinism contract."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.bench import perf
        spec = perf.SCALES["xlarge-smoke"]
        return {workers: perf.run_once("B", spec, None, workers=workers)
                for workers in (0, 1, 4)}

    def test_figure_digest_identity(self, rows):
        assert (rows[0]["figure_digest"] == rows[1]["figure_digest"]
                == rows[4]["figure_digest"])
        assert rows[0]["ops"] > 0
        assert rows[0]["failed"] == 0

    def test_shard_schedule_identity(self, rows):
        assert rows[1]["shard_digests"] == rows[4]["shard_digests"]
        assert len(rows[1]["shard_digests"]) == 17

    def test_exchange_counters_recorded(self, rows):
        assert "exchange" not in rows[0]
        exchange = rows[4]["exchange"]
        assert exchange["windows"] > 0
        assert exchange["elided_shard_windows"] > 0
        assert exchange["child_messages"] > 0
        assert exchange["records_exchanged"] > 0


class TestRunWindow:
    def test_window_end_exclusive_by_default(self):
        sim = Simulator()
        fired = []
        for when in (1.0, 2.0, 3.0):
            sim.schedule(when, lambda when=when: fired.append(when))
        sim.run_window(2.0)
        assert fired == [1.0]
        sim.run_window(2.0, inclusive=True)
        assert fired == [1.0, 2.0]
        assert sim.peek() == 3.0

    def test_clock_stays_at_last_dispatched_event(self):
        sim = Simulator()
        sim.schedule(1.5, lambda: None)
        sim.run_window(4.0)
        assert sim.now == 1.5

    def test_sync_now_never_rewinds(self):
        sim = Simulator()
        sim.sync_now(7.0)
        assert sim.now == 7.0
        sim.sync_now(3.0)
        assert sim.now == 7.0


class TestParallelClusterGuards:
    def test_tracing_requires_single_process(self):
        with pytest.raises(ValueError):
            LeedCluster(num_jbofs=2, num_clients=1, workers=2,
                        trace_sample_interval=1)

    def test_metrics_sampler_requires_single_process(self):
        with pytest.raises(ValueError):
            LeedCluster(num_jbofs=2, num_clients=1, workers=2,
                        metrics_interval_us=100.0)

    def test_run_until_past_deadline_raises(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=1)
        cluster.start()
        cluster.sim.run(until=50.0)
        with pytest.raises(ValueError):
            cluster.sim.run(until=10.0)
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()

    def test_digests_must_be_enabled_before_fork(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=2)
        cluster.start()
        cluster.sim.run(until=200.0)  # first run forks the workers
        assert cluster.engine.forked
        with pytest.raises(RuntimeError):
            cluster.enable_schedule_digests()
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()

    def test_elasticity_allowed_sharded_in_process(self):
        """add_jbof works at workers=1: everything still lives in this
        process, and the NIC attach bumps the topology version so the
        engine refreshes its lookahead matrix."""
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=1)
        cluster.start()
        cluster.sim.run(until=200.0)
        version_before = cluster.network.topology_version
        before = len(cluster.jbofs)
        done = cluster.sim.process(cluster.add_jbof(), name="test.add")
        cluster.sim.run(until=done)
        assert len(cluster.jbofs) == before + 1
        # The join attached a NIC (version bump) and the engine's
        # cached matrix caught up with it during the run.
        assert cluster.network.topology_version > version_before
        assert (cluster.engine._matrix_version
                == cluster.network.topology_version)
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()

    def test_elasticity_refused_with_forked_workers(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=2)
        cluster.start()
        cluster.sim.run(until=200.0)
        with pytest.raises(ValueError, match="workers"):
            next(cluster.add_jbof())
        with pytest.raises(ValueError, match="workers"):
            next(cluster.remove_jbof(0))
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()


class TestEngineTuning:
    """Elision-threshold and window-cap knobs: schedule-safe tuning."""

    #: (shard, time) of every scheduled local event: widely spaced and
    #: staggered across shards, so each shard repeatedly sits idle
    #: with a *finite* gap to its next event — the case the elision
    #: threshold arbitrates.
    #: The 1000.0/1000.5/1001.0 burst fits inside one uncapped window
    #: (a window reaches one relay round-trip past the horizon, a few
    #: microseconds here); a sub-microsecond cap splits it.  The other
    #: events are widely spaced and staggered across shards, so each
    #: shard repeatedly idles with a *finite* gap to its next event —
    #: the case the elision threshold arbitrates.
    EVENTS = ((0, 1000.0), (0, 1000.5), (0, 1001.0),
              (0, 2000.0), (0, 3000.0),
              (1, 1400.0), (1, 2400.0), (1, 3400.0),
              (2, 1800.0), (2, 2800.0), (2, 3800.0))

    def _engine(self, workers, tuning=None):
        from repro.sim.parallel import EngineTuning
        sims = {0: Simulator(), 1: Simulator(), 2: Simulator()}
        network = Network(sims[0])
        for sid, name in ((0, "a"), (1, "b"), (2, "c")):
            network.attach(name, NIC_100G, sim=sims[sid])
        network.configure_shards({"a": 0, "b": 1, "c": 2}, sims)
        fired = []
        sims[0].schedule(0.5, lambda: network.transmit("a", "b", 64, "x"))
        for sid, when in self.EVENTS:
            sims[sid].schedule(when,
                               lambda when=when: fired.append(when))
        engine = ParallelEngine(network, sims, workers,
                                tuning=tuning or EngineTuning())
        engine.enable_schedule_digests()
        return engine, fired

    def test_validation(self):
        from repro.sim.parallel import EngineTuning
        with pytest.raises(ValueError):
            EngineTuning(elision_threshold_us=-1.0)
        with pytest.raises(ValueError):
            EngineTuning(window_cap_us=-0.5)
        with pytest.raises(ValueError):
            EngineTuning(slab_region_bytes=16)

    def test_default_tuning_preserves_stock_behavior(self):
        from repro.sim.parallel import SLAB_REGION_BYTES, EngineTuning
        tuning = EngineTuning()
        assert tuning.elision_threshold_us == 0.0
        assert tuning.window_cap_us == 0.0
        assert tuning.slab_region_bytes == SLAB_REGION_BYTES

    def test_huge_threshold_disables_elision(self):
        """A huge threshold forces every shard with a pending event
        into every window; only event-less shards (infinite gap, so
        nothing to miss) may still be elided."""
        from repro.sim.parallel import EngineTuning
        stock, fired_stock = self._engine(workers=1)
        stock.run(until=4000.0)
        assert stock.stats.elided_shard_windows > 0
        tuned, fired = self._engine(
            workers=1, tuning=EngineTuning(elision_threshold_us=1e9))
        tuned.run(until=4000.0)
        assert (sorted(fired) == sorted(fired_stock)
                == sorted(when for _, when in self.EVENTS))
        assert (tuned.stats.elided_shard_windows
                < stock.stats.elided_shard_windows)
        assert (tuned.stats.shard_windows
                > stock.stats.shard_windows)
        # Forcing idle shards into windows dispatches nothing extra:
        # the per-shard schedules stay byte-identical.
        stock_reports = stock.collect()
        tuned_reports = tuned.collect()
        for sid in (0, 1, 2):
            assert (tuned_reports[sid]["schedule_digest"]
                    == stock_reports[sid]["schedule_digest"])
            assert (tuned_reports[sid]["events_dispatched"]
                    == stock_reports[sid]["events_dispatched"])

    def test_threshold_keeps_near_gap_shards_active(self):
        from repro.sim.parallel import EngineTuning
        stock, _ = self._engine(workers=1)
        stock.run(until=4000.0)
        tuned, _ = self._engine(
            workers=1, tuning=EngineTuning(elision_threshold_us=1500.0))
        tuned.run(until=4000.0)
        # Gaps of ~1000us fall under the 1500us threshold, so fewer
        # (or equal) shard-windows are elided than at threshold 0.
        assert (tuned.stats.elided_shard_windows
                <= stock.stats.elided_shard_windows)

    def test_window_cap_shrinks_windows_not_schedules(self):
        from repro.sim.parallel import EngineTuning
        stock, fired_stock = self._engine(workers=1)
        stock.run(until=4000.0)
        capped, fired = self._engine(
            workers=1, tuning=EngineTuning(window_cap_us=0.2))
        capped.run(until=4000.0)
        assert sorted(fired) == sorted(fired_stock)
        # Shorter windows => more of them to cover the same span.
        assert capped.stats.windows > stock.stats.windows
        stock_reports = stock.collect()
        capped_reports = capped.collect()
        for sid in (0, 1, 2):
            assert (capped_reports[sid]["events_dispatched"]
                    == stock_reports[sid]["events_dispatched"])

    def test_window_cap_digest_identity_across_workers(self):
        """The same cap at workers=1 and workers=2 runs byte-identical
        schedules: capping depends on shard clocks, never on which
        process hosts a shard."""
        from repro.sim.parallel import EngineTuning
        tuning = EngineTuning(window_cap_us=0.2,
                              elision_threshold_us=8.0)
        one, _ = self._engine(workers=1, tuning=tuning)
        one.run(until=4000.0)
        two, _ = self._engine(workers=2, tuning=tuning)
        two.run(until=4000.0)
        reports1, reports2 = one.collect(), two.collect()
        for sid in (0, 1, 2):
            assert (reports2[sid]["schedule_digest"]
                    == reports1[sid]["schedule_digest"])
            assert (reports2[sid]["events_dispatched"]
                    == reports1[sid]["events_dispatched"])
        one.stop_workers()
        two.stop_workers()

    def test_cluster_config_threads_tuning_to_engine(self):
        cluster = LeedCluster(num_jbofs=2, num_clients=1, workers=1,
                              engine_elision_threshold_us=12.5,
                              engine_window_cap_us=80.0)
        assert cluster.engine.tuning.elision_threshold_us == 12.5
        assert cluster.engine.tuning.window_cap_us == 80.0
        cluster.start()
        cluster.sim.run(until=200.0)
        cluster.shutdown()
        cluster.sim.run()
        cluster.stop_workers()

    def test_tuned_cluster_matches_serial_figures(self):
        """A capped+thresholded workers=1 run reproduces the serial
        engine's figure metrics on a real YCSB workload."""
        from repro.baselines import make_cluster
        from repro.core.datastore import StoreConfig

        def run(workers, **engine_kwargs):
            store = StoreConfig(num_segments=256,
                                key_log_bytes=4 << 20,
                                value_log_bytes=24 << 20)
            cluster = make_cluster("leed", num_nodes=3, num_clients=2,
                                   store_config=store, seed=SEED,
                                   workers=workers, **engine_kwargs)
            workload = YCSBWorkload("B", num_records=RECORDS, seed=SEED,
                                    value_size=VALUE_SIZE)
            load_cluster(cluster, workload, parallelism=8)
            stats = run_closed_loop(cluster, workload, OPS, CONCURRENCY)
            cluster.shutdown()
            cluster.sim.run()
            figures = {
                "completed": stats.completed,
                "failed": stats.failed,
                "elapsed_us": round(stats.elapsed_us, 6),
                "mean_us": round(stats.mean_latency_us(), 6),
                "p99_us": round(stats.percentile_us(0.99), 6),
                "energy_j": round(cluster.energy_joules(), 9),
            }
            cluster.stop_workers()
            return figures

        serial = run(workers=0)
        tuned = run(workers=1, engine_elision_threshold_us=64.0,
                    engine_window_cap_us=50.0)
        assert tuned == serial
