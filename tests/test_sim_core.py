"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim.core import Simulator
from repro.sim.errors import EventAlreadyTriggered, Interrupt
from repro.sim.events import Event, Timeout

from conftest import drive


class TestEvent:
    def test_untriggered_initially(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_sets_exception(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        event.defuse()
        assert event.triggered
        assert not event.ok
        assert isinstance(event.value, ValueError)

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(AttributeError):
            _ = event.value

    def test_undefused_failure_crashes_run(self, sim):
        event = sim.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(25.5)
            return sim.now

        assert drive(sim, proc()) == pytest.approx(25.5)

    def test_timeout_carries_value(self, sim):
        def proc():
            got = yield sim.timeout(1, value="payload")
            return got

        assert drive(sim, proc()) == "payload"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_zero_delay_runs_immediately(self, sim):
        def proc():
            yield sim.timeout(0)
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_timeouts_fire_in_order(self, sim):
        order = []
        sim.schedule(5, lambda: order.append("b"))
        sim.schedule(1, lambda: order.append("a"))
        sim.schedule(9, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, sim):
        order = []
        for label in "abc":
            sim.schedule(3, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert drive(sim, proc()) == "done"

    def test_nested_yield_from(self, sim):
        def inner():
            yield sim.timeout(2)
            return 10

        def outer():
            value = yield from inner()
            yield sim.timeout(3)
            return value + 1

        assert drive(sim, outer()) == 11
        assert sim.now == 5.0

    def test_exception_propagates_to_waiter(self, sim):
        def bad():
            yield sim.timeout(1)
            raise KeyError("oops")

        with pytest.raises(KeyError):
            drive(sim, bad())

    def test_process_is_event(self, sim):
        def child():
            yield sim.timeout(7)
            return "child-done"

        def parent():
            result = yield sim.process(child())
            return result

        assert drive(sim, parent()) == "child-done"

    def test_yield_non_event_raises(self, sim):
        def proc():
            yield 42

        process = sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_waiting_on_already_processed_event(self, sim):
        event = sim.event()
        event.succeed("early")

        def late():
            yield sim.timeout(5)
            value = yield event
            return value

        assert drive(sim, late()) == "early"

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(10)

        process = sim.process(proc())
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper():
            try:
                yield sim.timeout(1000)
                return "overslept"
            except Interrupt as interrupt:
                return interrupt.cause

        target = sim.process(sleeper())

        def killer():
            yield sim.timeout(10)
            target.interrupt("wake-up")

        sim.process(killer())
        assert sim.run(until=target) == "wake-up"
        assert sim.now == 10.0

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_self_interrupt_rejected(self, sim):
        def suicidal(handle):
            yield sim.timeout(1)
            handle[0].interrupt()

        handle = [None]
        process = sim.process(suicidal(handle))
        handle[0] = process
        with pytest.raises(RuntimeError):
            sim.run()

    def test_interrupted_process_can_continue(self, sim):
        def resilient():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            return sim.now

        target = sim.process(resilient())

        def poker():
            yield sim.timeout(3)
            target.interrupt()

        sim.process(poker())
        assert sim.run(until=target) == 8.0


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def proc():
            timeouts = [sim.timeout(t, value=t) for t in (3, 1, 7)]
            yield sim.all_of(timeouts)
            return sim.now

        assert drive(sim, proc()) == 7.0

    def test_any_of_fires_on_first(self, sim):
        def proc():
            timeouts = [sim.timeout(t, value=t) for t in (3, 1, 7)]
            result = yield sim.any_of(timeouts)
            return sim.now, list(result.values())

        now, values = drive(sim, proc())
        assert now == 1.0
        assert values == [1]

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_all_of_propagates_failure(self, sim):
        def failer():
            yield sim.timeout(1)
            raise ValueError("inner")

        def proc():
            yield sim.all_of([sim.process(failer()), sim.timeout(10)])

        with pytest.raises(ValueError):
            drive(sim, proc())


class TestRun:
    def test_run_until_time(self, sim):
        sim.schedule(5, lambda: None)
        sim.schedule(50, lambda: None)
        sim.run(until=10)
        assert sim.now == 10.0
        assert sim.pending_events == 1

    def test_run_until_past_raises(self, sim):
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1)

    def test_run_until_event_returns_value(self, sim):
        event = sim.event()
        sim.schedule(4, lambda: event.succeed("yo"))
        assert sim.run(until=event) == "yo"
        assert sim.now == 4.0

    def test_run_until_never_triggering_event(self, sim):
        event = sim.event()
        sim.schedule(1, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run(until=event)

    def test_run_empty_simulation(self, sim):
        sim.run()
        assert sim.now == 0.0

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.schedule(3, lambda: None)
        assert sim.peek() == 3.0
