"""Tests for workload trace recording and replay."""

import io

import pytest

from repro.core.datastore import LeedDataStore, StoreConfig
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry
from repro.workloads.trace import Trace
from repro.workloads.ycsb import Operation, YCSBWorkload

from conftest import drive


def make_store(sim):
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(5))
    return LeedDataStore(sim, ssd, StoreConfig(
        num_segments=32, key_log_bytes=1 << 20, value_log_bytes=4 << 20))


class TestRecord:
    def test_record_from_workload(self):
        workload = YCSBWorkload("A", 50, value_size=64, seed=1)
        trace = Trace.record(workload, 200)
        assert len(trace) == 200
        mix = trace.mix()
        assert set(mix) <= {"get", "put", "rmw"}
        assert mix["get"] == pytest.approx(100, abs=25)

    def test_keys_inventory(self):
        workload = YCSBWorkload("C", 20, value_size=32, seed=2)
        trace = Trace.record(workload, 100)
        assert trace.keys() <= {op.key for op in trace}


class TestPersistence:
    def test_dump_load_roundtrip(self):
        workload = YCSBWorkload("A", 30, value_size=48, seed=3)
        trace = Trace.record(workload, 100)
        buffer = io.StringIO()
        trace.dump(buffer)
        buffer.seek(0)
        restored = Trace.load(buffer)
        assert len(restored) == len(trace)
        for original, loaded in zip(trace, restored):
            assert original.op == loaded.op
            assert original.key == loaded.key
            assert (original.value or b"") == (loaded.value or b"")

    def test_load_skips_comments_and_blanks(self):
        text = "# comment\n\nget 6b6579\nput 6b6579 76616c\n"
        trace = Trace.load(io.StringIO(text))
        assert len(trace) == 2
        assert trace.operations[0].key == b"key"
        assert trace.operations[1].value == b"val"

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            Trace.load(io.StringIO("frobnicate 00\n"))


class TestReplay:
    def test_serial_replay_reproduces_state(self, sim):
        trace = Trace(operations=[
            Operation("put", b"a", b"1"),
            Operation("put", b"b", b"2"),
            Operation("del", b"a"),
            Operation("put", b"b", b"3"),
            Operation("get", b"b"),
        ])
        store = make_store(sim)

        def proc():
            stats = yield from trace.replay(sim, store)
            got_a = yield from store.get(b"a")
            got_b = yield from store.get(b"b")
            return stats, got_a, got_b

        stats, got_a, got_b = drive(sim, proc())
        assert stats.completed == 5
        assert got_a.status == "not_found"
        assert got_b.value == b"3"

    def test_identical_traces_identical_results(self):
        """Replaying the same trace on two fresh stores yields
        identical end states — the reproducibility property traces
        exist for."""
        workload = YCSBWorkload("A", 25, value_size=40, seed=9)
        trace = Trace.record(workload, 150)
        states = []
        for _ in range(2):
            from repro.sim.core import Simulator
            sim = Simulator()
            store = make_store(sim)

            def proc():
                yield from trace.replay(sim, store)
                pairs = yield from store.scan()
                return sorted(pairs)

            process = sim.process(proc())
            states.append(sim.run(until=process))
        assert states[0] == states[1]

    def test_concurrent_replay_completes_all(self, sim):
        workload = YCSBWorkload("C", 30, value_size=32, seed=4)
        load_trace = Trace(operations=[
            Operation("put", key, b"v") for key in
            (b"k%02d" % i for i in range(30))])
        read_trace = Trace.record(workload, 60)
        store = make_store(sim)

        def proc():
            yield from load_trace.replay(sim, store)
            stats = yield from read_trace.replay(sim, store, concurrency=8)
            return stats

        stats = drive(sim, proc())
        assert stats.completed == 60
