"""Batched-datapath semantics: vectored I/O, coalesced RPC, fast paths.

The batching layer must change *wall-clock* behaviour only: results,
ordering, token accounting, and (with knobs off) the event-schedule
digest all have to match the unbatched reference paths.
"""

import pytest

from repro.bench.harness import build_cluster, load_cluster, run_closed_loop
from repro.core.datastore import LeedDataStore, StoreConfig
from repro.core.io_engine import KVCommand, PartitionIOEngine
from repro.core.jbof import LeedOptions
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.driver import ClosedLoopDriver, DriverStats
from repro.workloads.ycsb import YCSBWorkload

from conftest import drive


def make_store(sim, jitter=0.0):
    profile = SSDProfile(capacity_bytes=32 << 20, block_size=512,
                         jitter=jitter)
    ssd = NVMeSSD(sim, profile, rng=RngRegistry(5))
    store = LeedDataStore(sim, ssd, StoreConfig(
        num_segments=64, key_log_bytes=2 << 20, value_log_bytes=8 << 20))
    return store, ssd


class TestReadMulti:
    PAYLOADS = [bytes([33 + i]) * 512 for i in range(6)]

    def _roundtrip(self, sim, ssd):
        def proc():
            for i, payload in enumerate(self.PAYLOADS):
                yield from ssd.write(i * 512, payload)
            extents = [(i * 512, 512) for i in range(len(self.PAYLOADS))]
            # Deliberately submit out of offset order: results must
            # come back in submission order regardless.
            extents.reverse()
            chunks = yield from ssd.read_multi(extents)
            return chunks

        chunks = drive(sim, proc())
        assert chunks == list(reversed(self.PAYLOADS))
        assert ssd.stats.reads_completed == len(self.PAYLOADS)

    def test_data_and_counts_event_path(self, sim, quiet_ssd):
        self._roundtrip(sim, quiet_ssd)

    def test_data_and_counts_fast_path(self, sim, quiet_ssd):
        quiet_ssd.fast_path = True
        self._roundtrip(sim, quiet_ssd)

    def test_empty_batch(self, sim, quiet_ssd):
        def proc():
            return (yield from quiet_ssd.read_multi([]))

        assert drive(sim, proc()) == []
        assert quiet_ssd.stats.reads_completed == 0

    def test_write_multi_totals(self, sim, quiet_ssd):
        writes = [(i * 512, bytes([i + 1]) * 512) for i in range(4)]

        def proc():
            total = yield from quiet_ssd.write_multi(writes)
            chunks = yield from quiet_ssd.read_multi(
                [(off, len(data)) for off, data in writes])
            return total, chunks

        total, chunks = drive(sim, proc())
        assert total == 4 * 512
        assert chunks == [data for _off, data in writes]
        assert quiet_ssd.stats.writes_completed == 4


class TestMultiGet:
    KEYS = [b"key-%d" % i for i in range(8)]

    def test_results_in_input_order(self, sim):
        store, _ssd = make_store(sim)

        def proc():
            for i, key in enumerate(self.KEYS):
                yield from store.put(key, b"val-%d" % i)
            wanted = list(reversed(self.KEYS)) + [b"missing"]
            results = yield from store.multi_get(wanted)
            return wanted, results

        wanted, results = drive(sim, proc())
        assert len(results) == len(wanted)
        for key, result in zip(wanted[:-1], results[:-1]):
            assert result.ok
            index = self.KEYS.index(key)
            assert result.value == b"val-%d" % index
        assert results[-1].status == "not_found"

    def test_logical_and_physical_access_counts(self, sim):
        store, ssd = make_store(sim)

        def proc():
            for i, key in enumerate(self.KEYS):
                yield from store.put(key, b"v%d" % i)
            before = ssd.stats.reads_completed
            results = yield from store.multi_get(self.KEYS)
            return before, results

        before, results = drive(sim, proc())
        # Logical accounting matches the single-key path: 2 accesses
        # per hit (key-log segment + value entry).
        assert all(r.ok and r.nvme_accesses == 2 for r in results)
        # Physical accounting is deduplicated: one read per distinct
        # segment plus one per value entry — never more than the
        # logical total, and at least one segment + N values.
        physical = ssd.stats.reads_completed - before
        assert len(self.KEYS) + 1 <= physical <= 2 * len(self.KEYS)

    def test_matches_single_key_gets(self, sim):
        store, _ssd = make_store(sim)

        def proc():
            for i, key in enumerate(self.KEYS):
                yield from store.put(key, b"v%d" % i)
            batched = yield from store.multi_get(self.KEYS)
            singles = []
            for key in self.KEYS:
                singles.append((yield from store.get(key)))
            return batched, singles

        batched, singles = drive(sim, proc())
        assert [r.value for r in batched] == [r.value for r in singles]


class TestEngineBatchedAdmission:
    def _run_burst(self, admission_batch):
        sim = Simulator()
        store, _ssd = make_store(sim)
        engine = PartitionIOEngine(sim, store, token_capacity=6,
                                   waiting_capacity=64, name="eng",
                                   admission_batch=admission_batch)

        def proc():
            results = []
            for i in range(16):
                results.append(
                    (yield engine.submit(KVCommand("put", b"k%d" % i,
                                                   b"v%d" % i))))
            gets = []
            for i in range(16):
                gets.append(
                    (yield engine.submit(KVCommand("get", b"k%d" % i))))
            return results, gets

        results, gets = drive(sim, proc())
        return engine, results, gets

    @pytest.mark.parametrize("batch", [1, 4])
    def test_all_commands_complete(self, batch):
        engine, results, gets = self._run_burst(batch)
        assert all(r.ok for r in results)
        assert all(g.ok for g in gets)
        assert [g.value for g in gets] == [b"v%d" % i for i in range(16)]
        assert engine.stats.completed == 32
        # Token pool fully returned once the burst drains.
        assert engine.tokens == engine.token_capacity
        assert engine.active_occupancy == 0


class TestCoalescedRpc:
    def _drive_cluster(self, options):
        cluster = build_cluster("leed", scale="quick", value_size=128,
                                seed=7, options=options)
        workload = YCSBWorkload("B", num_records=80, seed=7, value_size=128)
        load_cluster(cluster, workload, parallelism=16)
        stats = run_closed_loop(cluster, workload, 200, 16)
        cluster.shutdown()
        cluster.sim.run()
        return cluster, stats

    def test_coalescing_batches_and_token_accounting(self):
        cluster, stats = self._drive_cluster(
            LeedOptions(fast_datapath=True, admission_batch=8))
        assert stats.failed == 0
        # At least one SEND actually carried multiple requests.
        assert sum(c.rpc.batched_requests for c in cluster.clients) >= 2
        # Flow-control token accounting drains cleanly: nothing left
        # outstanding or queued once the run completes.
        for client in cluster.clients:
            assert client.flow.queued() == 0
            for view in client.flow.targets.values():
                assert view.outstanding == 0

    def test_fast_datapath_matches_reference_results(self):
        _off_cluster, off = self._drive_cluster(None)
        _on_cluster, on = self._drive_cluster(
            LeedOptions(fast_datapath=True, admission_batch=8))
        assert off.failed == 0 and on.failed == 0
        assert on.completed == off.completed


class TestBatchingDeterminism:
    RECORDS = 60
    OPS = 120

    def _digest(self, runner, options=None, seed=3):
        """Build, load, and drive a small cluster entirely through
        ``runner(sim, until)`` (a callable advancing the simulator),
        so the whole schedule — not just the tail — goes through the
        dispatcher under test."""
        cluster = build_cluster("leed", scale="quick", value_size=96,
                                seed=seed, options=options)
        sim = cluster.sim
        sim.enable_schedule_digest()
        workload = YCSBWorkload("B", num_records=self.RECORDS, seed=seed,
                                value_size=96)
        cluster.start()
        loaded = sim.process(
            cluster.load(workload.load_pairs(), parallelism=16),
            name="load")
        runner(sim, loaded)
        share = max(self.OPS // len(cluster.clients), 1)
        drivers = [ClosedLoopDriver(sim, client, workload, share,
                                    concurrency=4)
                   for client in cluster.clients]
        procs = [sim.process(driver.run(), name="drive")
                 for driver in drivers]
        runner(sim, sim.all_of(procs))
        cluster.shutdown()
        runner(sim, None)
        stats = DriverStats()
        for driver in drivers:
            stats = stats.merge(driver.stats)
        assert stats.completed >= self.OPS and stats.failed == 0
        return sim.schedule_digest, sim.schedule_digest_events

    @staticmethod
    def _run(sim, until):
        sim.run(until=until)

    @staticmethod
    def _run_batch(sim, until):
        sim.run_batch(until=until)

    @staticmethod
    def _step(sim, until):
        """Event-by-event replay through the reference dispatcher."""
        if until is None:
            while True:
                try:
                    sim.step()
                except IndexError:
                    return
        while not until.triggered:
            sim.step()

    def test_knobs_off_same_seed_digest_stable(self):
        assert self._digest(self._run) == self._digest(self._run)

    def test_run_batch_matches_step_loop_digest(self):
        assert self._digest(self._run_batch) == self._digest(self._step)

    def test_knobs_on_same_seed_digest_stable(self):
        """The fast datapath may *differ* from the reference schedule,
        but it must still be deterministic for a fixed seed."""
        options = LeedOptions(fast_datapath=True, admission_batch=8)
        first = self._digest(self._run, options=options)
        second = self._digest(self._run, options=options)
        assert first == second
