"""Tests for consistent hashing and replica chains (§3.1.2, §3.8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashring import (
    RING_SPACE,
    HashRing,
    VNode,
    in_arcs,
    ring_position,
)


def make_ring(num_jbofs=3, vnodes_per_jbof=2, replication=3, version=1):
    vnodes = [VNode("jbof%d/p%d" % (j, p), "jbof%d" % j)
              for j in range(num_jbofs) for p in range(vnodes_per_jbof)]
    return HashRing(vnodes, replication=replication, version=version)


class TestChains:
    def test_chain_has_replication_members(self):
        ring = make_ring()
        chain = ring.chain_for_key(b"somekey")
        assert len(chain) == 3

    def test_chain_prefers_distinct_jbofs(self):
        ring = make_ring(num_jbofs=3, vnodes_per_jbof=4)
        for index in range(50):
            chain = ring.chain_for_key(b"key-%d" % index)
            jbofs = [v.jbof_address for v in chain]
            assert len(set(jbofs)) == 3

    def test_chain_repeats_when_too_few_jbofs(self):
        ring = make_ring(num_jbofs=2, vnodes_per_jbof=2, replication=3)
        chain = ring.chain_for_key(b"k")
        assert len(chain) == 3  # fills with same-JBOF vnodes

    def test_chain_deterministic(self):
        ring = make_ring()
        assert (ring.chain_ids_for_key(b"stable")
                == ring.chain_ids_for_key(b"stable"))

    def test_position_in_chain(self):
        ring = make_ring()
        chain = ring.chain_ids_for_key(b"key")
        for hop, vnode_id in enumerate(chain):
            assert ring.position_in_chain(b"key", vnode_id) == hop
        assert ring.position_in_chain(b"key", "not-a-node") is None

    def test_empty_ring(self):
        ring = HashRing([], replication=3)
        assert ring.chain_for_key(b"k") == []


class TestMembershipChanges:
    def test_with_vnode_bumps_version(self):
        ring = make_ring(version=5)
        bigger = ring.with_vnode(VNode("new/p0", "new"))
        assert bigger.version == 6
        assert "new/p0" in bigger
        assert len(bigger) == len(ring) + 1

    def test_without_vnode(self):
        ring = make_ring()
        victim = next(iter(ring.vnodes))
        smaller = ring.without_vnode(victim)
        assert victim not in smaller
        assert len(smaller) == len(ring) - 1

    def test_removal_only_shifts_affected_chains(self):
        """Consistent hashing: removing one vnode must not reshuffle
        chains that did not contain it."""
        ring = make_ring(num_jbofs=4, vnodes_per_jbof=4)
        victim = ring.chain_ids_for_key(b"probe-key")[0]
        smaller = ring.without_vnode(victim)
        moved = unchanged = 0
        for index in range(200):
            key = b"key-%04d" % index
            before = ring.chain_ids_for_key(key)
            after = smaller.chain_ids_for_key(key)
            if victim not in before:
                if before == after:
                    unchanged += 1
                else:
                    moved += 1
        assert unchanged > moved  # the vast majority stay put


class TestOwnerRanges:
    def test_ranges_cover_own_keys(self):
        ring = make_ring()
        for vnode_id in ring.vnodes:
            arcs = ring.owner_ranges(vnode_id)
            assert arcs
            # Each key whose chain includes the vnode falls in an arc.
            for index in range(100):
                key = b"key-%03d" % index
                if vnode_id in ring.chain_ids_for_key(key):
                    assert in_arcs(ring_position(key), arcs), (vnode_id, key)

    def test_ranges_exclude_foreign_keys(self):
        ring = make_ring(num_jbofs=4, vnodes_per_jbof=4, replication=2)
        for vnode_id in list(ring.vnodes)[:4]:
            arcs = ring.owner_ranges(vnode_id)
            for index in range(100):
                key = b"key-%03d" % index
                if vnode_id not in ring.chain_ids_for_key(key):
                    assert not in_arcs(ring_position(key), arcs)

    def test_single_vnode_owns_everything(self):
        ring = HashRing([VNode("solo/p0", "solo")], replication=3)
        assert ring.owner_ranges("solo/p0") == [(0, RING_SPACE)]

    def test_unknown_vnode_owns_nothing(self):
        ring = make_ring()
        assert ring.owner_ranges("missing") == []


class TestPositions:
    def test_position_range(self):
        for label in (b"a", b"b", b"key", b"x" * 100):
            assert 0 <= ring_position(label) < RING_SPACE

    def test_positions_spread(self):
        positions = [ring_position(b"node-%d" % i) for i in range(100)]
        assert len(set(positions)) == 100

    @settings(max_examples=30, deadline=None)
    @given(keys=st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                         max_size=20),
           num_jbofs=st.integers(min_value=3, max_value=6))
    def test_chain_members_unique_property(self, keys, num_jbofs):
        ring = make_ring(num_jbofs=num_jbofs, vnodes_per_jbof=2)
        for key in keys:
            chain = ring.chain_ids_for_key(key)
            assert len(chain) == len(set(chain))

    @settings(max_examples=30, deadline=None)
    @given(key=st.binary(min_size=1, max_size=32))
    def test_every_key_covered_by_union_of_arcs(self, key):
        ring = make_ring()
        position = ring_position(key)
        owners = [vnode_id for vnode_id in ring.vnodes
                  if in_arcs(position, ring.owner_ranges(vnode_id))]
        assert sorted(owners) == sorted(ring.chain_ids_for_key(key))
