"""Dataflow race rules (SIM007-SIM009), CFG framework, engine
extensions (select/baseline/SARIF), and the order-dependence
sanitizer.

Rule fixtures follow the ``test_lint.py`` convention: a true positive
(must fire with the right ID), a suppressed variant, and a known
false-positive shape that must NOT fire — for SIM007 specifically the
re-read-after-yield guard and the finish-the-RMW-before-yielding
pattern, which are exactly how the PR 1 CircularLog fix works.
"""

import ast
import json
import textwrap

import pytest

from repro.lint import LintConfig, run
from repro.lint.engine import (
    apply_baseline,
    baseline_key,
    load_module,
    write_baseline,
)
from repro.lint.flow import build_cfg, count_yields, dotted, has_yield
from repro.lint.sarif import to_sarif


def lint_snippet(tmp_path, relpath, code, **kwargs):
    """Write ``code`` at ``tmp_path/relpath`` and lint the tree."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return run([str(tmp_path)], **kwargs)


def rules_hit(report):
    return {finding.rule for finding in report.findings}


# ---------------------------------------------------------------------------
# flow framework
# ---------------------------------------------------------------------------

class TestFlowFramework:
    def _cfg_for(self, code):
        tree = ast.parse(textwrap.dedent(code))
        func = tree.body[0]
        return build_cfg(func)

    def test_linear_body_single_block_chain(self):
        cfg = self._cfg_for("""\
            def f(self):
                a = 1
                b = a + 1
                return b
            """)
        assert cfg.entry is not None
        # Entry block carries both assignments and the return.
        assert len(cfg.entry.elements) == 3

    def test_if_else_creates_branches(self):
        cfg = self._cfg_for("""\
            def f(self, x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """)
        assert len(cfg.entry.successors) == 2

    def test_loop_has_back_edge(self):
        cfg = self._cfg_for("""\
            def f(self, xs):
                for x in xs:
                    y = x
                return 0
            """)
        preds = cfg.predecessors()
        # Some block (the loop head) has two predecessors: entry and
        # the loop body's tail.
        assert any(len(sources) >= 2 for sources in preds.values())

    def test_count_yields_skips_nested_functions(self):
        tree = ast.parse(textwrap.dedent("""\
            def outer(self):
                def inner():
                    yield 1
                yield 2
            """))
        outer = tree.body[0]
        assert sum(count_yields(stmt) for stmt in outer.body) == 1
        assert has_yield(outer)

    def test_dotted_chains(self):
        expr = ast.parse("self.log.tail", mode="eval").body
        assert dotted(expr) == "self.log.tail"
        call = ast.parse("f().x", mode="eval").body
        assert dotted(call) is None


# ---------------------------------------------------------------------------
# SIM007: atomicity across yields
# ---------------------------------------------------------------------------

class TestSIM007Atomicity:
    def test_circular_log_lost_update_fires(self, tmp_path):
        # Minimal reconstruction of the PR 1 CircularLog bug: tail is
        # read, the write yields, and tail is bumped from the stale
        # read — two concurrent appends both see the old tail.
        report = lint_snippet(tmp_path, "repro/core/bad_log.py", """\
            class CircularLog:
                def append(self, ssd, data):
                    offset = self.tail
                    yield from ssd.write(offset, data)
                    self.tail = offset + len(data)
                    return offset
            """)
        assert "SIM007" in rules_hit(report)
        [finding] = [f for f in report.findings if f.rule == "SIM007"]
        assert "self.tail" in finding.message
        assert "line 3" in finding.message

    def test_reserve_before_yield_clean(self, tmp_path):
        # The PR 1 fix: the read-modify-write completes synchronously
        # before the first yield, so the reservation is atomic.
        report = lint_snippet(tmp_path, "repro/core/good_log.py", """\
            class CircularLog:
                def append(self, ssd, data):
                    offset = self.tail
                    self.tail = offset + len(data)
                    yield from ssd.write(offset, data)
                    return offset
            """)
        assert "SIM007" not in rules_hit(report)

    def test_reread_after_yield_guard_clean(self, tmp_path):
        # Known false-positive shape that must NOT fire: the value is
        # re-validated against live state after resuming.
        report = lint_snippet(tmp_path, "repro/core/guarded.py", """\
            class Reclaimer:
                def advance(self, ssd):
                    cached = self.head
                    yield from ssd.read(cached, 8)
                    if self.head == cached:
                        self.head = cached + 8
            """)
        assert "SIM007" not in rules_hit(report)

    def test_augmented_assign_clean(self, tmp_path):
        # ``+=`` re-reads the target at write time by construction.
        report = lint_snippet(tmp_path, "repro/core/augmented.py", """\
            class Meter:
                def charge(self, ssd, data):
                    n = len(data)
                    yield from ssd.write(0, data)
                    self.total += n
            """)
        assert "SIM007" not in rules_hit(report)

    def test_fresh_reread_in_write_clean(self, tmp_path):
        # Re-reading the attribute inside the writing statement is a
        # current-era read: the RMW is against live state.
        report = lint_snippet(tmp_path, "repro/core/fresh.py", """\
            class Log:
                def append(self, ssd, data):
                    offset = self.tail
                    yield from ssd.write(offset, data)
                    self.tail = max(self.tail, offset + len(data))
            """)
        assert "SIM007" not in rules_hit(report)

    def test_loop_carried_staleness_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/loop.py", """\
            class Pool:
                def drain(self, ssd):
                    while self.pending:
                        batch = self.pending
                        yield from ssd.write(0, batch)
                        self.pending = batch[8:]
            """)
        assert "SIM007" in rules_hit(report)

    def test_shared_parameter_object_fires(self, tmp_path):
        # "Shared object" staleness is not limited to self.
        report = lint_snippet(tmp_path, "repro/core/sharedparam.py", """\
            def flush(log, ssd):
                tail = log.tail
                yield from ssd.write(tail, b"x")
                log.tail = tail + 1
            """)
        assert "SIM007" in rules_hit(report)

    def test_locally_constructed_object_clean(self, tmp_path):
        # A local object nobody else can reach is not shared state.
        report = lint_snippet(tmp_path, "repro/core/localobj.py", """\
            class Cursor:
                pass

            def walk(ssd):
                cur = Cursor()
                cur.pos = 0
                saved = cur.pos
                yield from ssd.read(saved, 8)
                cur.pos = saved + 8
            """)
        assert "SIM007" not in rules_hit(report)

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/waived.py", """\
            class Log:
                def append(self, ssd, data):
                    offset = self.tail
                    yield from ssd.write(offset, data)
                    self.tail = offset + len(data)  # simlint: ignore[SIM007]
            """)
        assert "SIM007" not in rules_hit(report)

    def test_no_yield_function_ignored(self, tmp_path):
        # Without scheduling points the whole body is atomic.
        report = lint_snippet(tmp_path, "repro/core/sync.py", """\
            class Log:
                def bump(self, n):
                    offset = self.tail
                    self.tail = offset + n
                    return offset
            """)
        assert "SIM007" not in rules_hit(report)


# ---------------------------------------------------------------------------
# SIM008: shard safety through dataflow
# ---------------------------------------------------------------------------

class TestSIM008ShardSafety:
    def test_alias_rebinding_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/alias.py", """\
            class Plane:
                def kick(self):
                    node = self.jbofs[0]
                    peer = node
                    peer.stop()
            """)
        assert "SIM008" in rules_hit(report)

    def test_container_store_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/container.py", """\
            class Plane:
                def kick(self):
                    victims = []
                    for node in self.jbofs:
                        victims.append(node)
                    for victim in victims:
                        victim.reboot()
            """)
        assert "SIM008" in rules_hit(report)

    def test_argument_passing_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/argpass.py", """\
            class Plane:
                def kick(self):
                    for node in self.jbofs:
                        self._poke(node)

                def _poke(self, target):
                    target.reboot()
            """)
        assert "SIM008" in rules_hit(report)

    def test_attribute_mutation_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/mutate.py", """\
            class Plane:
                def kick(self):
                    node = self.jbofs[0]
                    node.ring = None
            """)
        assert "SIM008" in rules_hit(report)

    def test_deep_chain_call_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/deep.py", """\
            class Plane:
                def survey(self):
                    out = {}
                    for node in self.jbofs:
                        for vnode_id, runtime in node.vnodes.items():
                            out[vnode_id] = runtime
                    return out
            """)
        assert "SIM008" in rules_hit(report)

    def test_rpc_path_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/rpc_ok.py", """\
            class Plane:
                def kick(self):
                    for node in self.jbofs:
                        self.rpc.notify(node.address, "reboot")
            """)
        assert "SIM008" not in rules_hit(report)

    def test_locally_constructed_nodes_clean(self, tmp_path):
        # Construction-time wiring: the nodes are this process's own.
        report = lint_snippet(tmp_path, "repro/core/ctor.py", """\
            class Plane:
                def build(self, node_class):
                    nodes = []
                    for index in range(4):
                        node = node_class(index)
                        nodes.append(node)
                        node.start()
                    return nodes
            """)
        assert "SIM008" not in rules_hit(report)

    def test_direct_call_left_to_sim006(self, tmp_path):
        # The syntactic shape stays SIM006's: no duplicate SIM008
        # finding at the same location.
        report = lint_snippet(tmp_path, "repro/core/direct.py", """\
            class Plane:
                def kick(self):
                    for node in self.jbofs:
                        node.stop()
            """)
        assert "SIM006" in rules_hit(report)
        sim006 = {(f.line, f.col) for f in report.findings
                  if f.rule == "SIM006"}
        sim008 = {(f.line, f.col) for f in report.findings
                  if f.rule == "SIM008"}
        assert not (sim006 & sim008)

    def test_out_of_scope_directory_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/bench/tooling.py", """\
            class Plane:
                def kick(self):
                    node = self.jbofs[0]
                    other = node
                    other.stop()
            """)
        assert "SIM008" not in rules_hit(report)

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/waived8.py", """\
            class Plane:
                def kick(self):
                    node = self.jbofs[0]
                    peer = node
                    peer.stop()  # simlint: ignore[SIM008]
            """)
        assert "SIM008" not in rules_hit(report)


# ---------------------------------------------------------------------------
# SIM009: digest stability
# ---------------------------------------------------------------------------

class TestSIM009DigestStability:
    def test_set_iteration_into_histogram_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/obs/bad_hist.py", """\
            def publish(keys, hist):
                for key in keys | {0}:
                    hist.observe(key)
            """)
        assert "SIM009" in rules_hit(report)

    def test_id_into_digest_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/obs/bad_id.py", """\
            def fold(obj, digest):
                digest.update(id(obj))
            """)
        assert "SIM009" in rules_hit(report)

    def test_tainted_local_reaches_record_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/obs/bad_local.py", """\
            def publish(members, trace):
                order = [m for m in {"a", "b"} if m in members]
                trace.record(order)
            """)
        assert "SIM009" in rules_hit(report)

    def test_sorted_launders_clean(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/obs/good_sorted.py", """\
            def publish(keys, hist):
                for key in sorted(keys | {0}):
                    hist.observe(key)
            """)
        assert "SIM009" not in rules_hit(report)

    def test_id_keyed_sort_still_fires(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/obs/bad_keyed.py", """\
            def publish(objs, hist):
                for item in sorted(objs, key=lambda o: id(o)):
                    hist.observe(item)
            """)
        assert "SIM009" in rules_hit(report)

    def test_non_sink_call_clean(self, tmp_path):
        # Set iteration feeding plain logic is SIM003's business (and
        # only inside its scoped directories), not SIM009's.
        report = lint_snippet(tmp_path, "repro/obs/good_logic.py", """\
            def count(keys):
                total = 0
                for key in keys | {0}:
                    total += 1
                return total
            """)
        assert "SIM009" not in rules_hit(report)

    def test_suppression(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/obs/waived9.py", """\
            def publish(keys, hist):
                for key in keys | {0}:
                    hist.observe(key)  # simlint: ignore[SIM009]
            """)
        assert "SIM009" not in rules_hit(report)


# ---------------------------------------------------------------------------
# engine: select, baseline, SARIF
# ---------------------------------------------------------------------------

class TestEngineExtensions:
    BAD = """\
        import random

        class Log:
            def append(self, ssd, data):
                offset = self.tail
                yield from ssd.write(offset, data)
                self.tail = offset + len(data)
        """

    def test_select_restricts_rules(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/two.py", self.BAD,
                              select=["SIM007"])
        assert rules_hit(report) == {"SIM007"}

    def test_select_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError):
            lint_snippet(tmp_path, "repro/core/two.py", self.BAD,
                         select=["SIM042"])

    def test_baseline_roundtrip_filters_findings(self, tmp_path):
        report = lint_snippet(tmp_path, "repro/core/two.py", self.BAD)
        assert report.findings
        baseline_doc = json.loads(write_baseline(report))
        counts = {}
        for key in baseline_doc["findings"]:
            counts[key] = counts.get(key, 0) + 1
        fresh, matched = apply_baseline(report.findings, counts)
        assert fresh == []
        assert matched == len(report.findings)

    def test_baseline_key_is_line_independent(self, tmp_path):
        # The same finding shifted by an unrelated edit above it must
        # keep its baseline identity.  (SIM007 messages cite the read
        # line, so those keys legitimately move; use SIM001 here.)
        code = "import random\n"
        first = lint_snippet(tmp_path, "repro/core/two.py", code)
        shifted = lint_snippet(tmp_path, "repro/core/two.py",
                               "\n\n" + code)
        assert first.findings and shifted.findings
        assert [f.line for f in first.findings] != \
            [f.line for f in shifted.findings]
        assert sorted(baseline_key(f) for f in first.findings) == \
            sorted(baseline_key(f) for f in shifted.findings)

    def test_sarif_output_is_valid_and_complete(self, tmp_path):
        from repro.lint.rules import default_rules
        report = lint_snippet(tmp_path, "repro/core/two.py", self.BAD)
        log = json.loads(to_sarif(report, default_rules(LintConfig())))
        assert log["version"] == "2.1.0"
        run_obj = log["runs"][0]
        assert run_obj["tool"]["driver"]["name"] == "simlint"
        rule_ids = {r["id"] for r in run_obj["tool"]["driver"]["rules"]}
        assert {"SIM001", "SIM007", "SIM008", "SIM009"} <= rule_ids
        assert len(run_obj["results"]) == len(report.findings)
        result = run_obj["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1

    def test_shared_index_caches_cfgs(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent("""\
            def f(self):
                yield 1
            """), encoding="utf-8")
        source = load_module(path)
        func = source.index.functions()[0]
        assert source.index.cfg(func) is source.index.cfg(func)

    def test_catalog_header_is_generated(self):
        import repro.lint.rules as rules_mod
        from repro.lint.rules import catalog_lines, catalog_range
        assert catalog_range() == "SIM001-SIM009"
        for line in catalog_lines():
            assert line in rules_mod.__doc__


# ---------------------------------------------------------------------------
# dynamic sanitizer
# ---------------------------------------------------------------------------

class TestOrderDependenceSanitizer:
    # A reduced shape keeps the three sanitized runs inside the
    # tier-1 budget; the full perf-smoke shape runs in CI via
    # ``python -m repro.lint.sanitize``.
    SHAPE = dict(records=60, ops=120, concurrency=8,
                 num_jbofs=2, num_clients=2, value_size=64, seed=11)

    def test_figure_digest_invariant_across_permutations(self):
        from repro.lint.sanitize import verify
        report = verify("B", permutations=3, **self.SHAPE)
        assert len(report.probes) == 4  # FIFO baseline + 3 permutations
        assert report.figure_invariant, report.format()
        assert report.schedules_permuted, report.format()
        assert report.clean
        for probe in report.probes:
            assert probe.ops_completed == 120
            assert probe.ops_failed == 0
            assert probe.keys_verified == probe.keys_checked == 60
            assert not probe.mismatches

    def test_same_sanitize_seed_reproduces_schedule(self):
        from repro.lint.sanitize import run_probe
        first = run_probe("B", 1, **self.SHAPE)
        second = run_probe("B", 1, **self.SHAPE)
        assert first.schedule_digest == second.schedule_digest
        assert first.figure_digest == second.figure_digest

    def test_sanitize_rejected_with_workers(self):
        from repro.core.cluster import ClusterConfig, LeedCluster
        with pytest.raises(ValueError):
            LeedCluster(ClusterConfig(workers=1, sanitize=True))

    def test_simulator_sanitize_flag(self):
        from repro.sim.core import Simulator
        assert Simulator(sanitize=True, sanitize_seed=3).sanitizing
        assert not Simulator().sanitizing
