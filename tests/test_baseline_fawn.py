"""Tests for the FAWN-KV baseline store."""

import pytest

from repro.baselines.fawn.datastore import (
    FAWN_INDEX_BYTES_PER_OBJECT,
    FawnConfig,
    FawnDataStore,
)
from repro.hw.dram import Dram
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


def make_store(sim, dram=None, **config_kwargs):
    defaults = dict(log_bytes=1 << 20)
    defaults.update(config_kwargs)
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(4))
    return FawnDataStore(sim, ssd, FawnConfig(**defaults), dram=dram)


class TestSemantics:
    def test_put_get_roundtrip(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            return (yield from store.get(b"k"))

        result = drive(sim, proc())
        assert result.ok and result.value == b"v"

    def test_overwrite(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v1")
            yield from store.put(b"k", b"v2")
            return (yield from store.get(b"k"))

        assert drive(sim, proc()).value == b"v2"

    def test_delete(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"k", b"v")
            yield from store.delete(b"k")
            return (yield from store.get(b"k"))

        assert drive(sim, proc()).status == "not_found"

    def test_single_nvme_access_per_command(self, sim):
        """FAWN's headline: one device access per GET/PUT (§4.2)."""
        store = make_store(sim)

        def proc():
            put = yield from store.put(b"k", b"v")
            got = yield from store.get(b"k")
            return put, got

        put, got = drive(sim, proc())
        assert put.nvme_accesses == 1
        assert got.nvme_accesses == 1

    def test_get_faster_than_leed(self, sim):
        """One access -> roughly half LEED's GET latency (Table 3)."""
        from repro.core.datastore import LeedDataStore, StoreConfig
        fawn = make_store(sim, synchronous_io=False)
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(6))
        leed = LeedDataStore(sim, ssd, StoreConfig(
            num_segments=32, key_log_bytes=1 << 20,
            value_log_bytes=4 << 20))

        def proc():
            yield from fawn.put(b"k", b"v" * 100)
            yield from leed.put(b"k", b"v" * 100)
            fawn_got = yield from fawn.get(b"k")
            leed_got = yield from leed.get(b"k")
            return fawn_got.total_us, leed_got.total_us

        fawn_us, leed_us = drive(sim, proc())
        assert fawn_us < 0.7 * leed_us


class TestSynchronousIO:
    def test_serialized_by_default(self, sim):
        """FAWN-DS blocks in I/O: concurrent ops serialize (the
        behaviour that caps FAWN-JBOF throughput in Table 3)."""
        store = make_store(sim)

        def writer(index):
            return (yield from store.put(b"k%d" % index, b"v"))

        for index in range(4):
            sim.process(writer(index))
        sim.run()
        serial_time = sim.now

        sim2 = type(sim)()
        parallel = make_store(sim2, synchronous_io=False)

        def writer2(index):
            return (yield from parallel.put(b"k%d" % index, b"v"))

        for index in range(4):
            sim2.process(writer2(index))
        sim2.run()
        assert serial_time > 2.5 * sim2.now


class TestDramLimit:
    def test_index_budget_caps_objects(self, sim):
        store = make_store(sim, index_budget_bytes=10 * FAWN_INDEX_BYTES_PER_OBJECT)

        def proc():
            statuses = []
            for index in range(15):
                result = yield from store.put(b"key-%02d" % index, b"v")
                statuses.append(result.status)
            return statuses

        statuses = drive(sim, proc())
        assert statuses.count("ok") == 10
        assert statuses.count("store_full") == 5

    def test_dram_reservation_tracks_population(self, sim):
        dram = Dram(1 << 20)
        store = make_store(sim, dram=dram)

        def proc():
            for index in range(20):
                yield from store.put(b"key-%02d" % index, b"v")
            yield from store.delete(b"key-00")

        drive(sim, proc())
        assert dram.reservation(store._dram_label) == \
            19 * FAWN_INDEX_BYTES_PER_OBJECT

    def test_delete_frees_index_slot(self, sim):
        store = make_store(sim, index_budget_bytes=2 * FAWN_INDEX_BYTES_PER_OBJECT)

        def proc():
            yield from store.put(b"a", b"1")
            yield from store.put(b"b", b"2")
            full = yield from store.put(b"c", b"3")
            yield from store.delete(b"a")
            retry = yield from store.put(b"c", b"3")
            return full.status, retry.status

        assert drive(sim, proc()) == ("store_full", "ok")


class TestLogCleaning:
    def test_cleaning_reclaims_and_preserves(self, sim):
        store = make_store(sim, log_bytes=64 << 10,
                           compact_high_watermark=0.6,
                           compact_low_watermark=0.3)

        def proc():
            for _round in range(10):
                for index in range(20):
                    result = yield from store.put(b"key-%02d" % index,
                                                  b"v" * 100)
                    if not result.ok:
                        yield from store.clean(target_fill=0.2)
            yield from store.clean(target_fill=0.2)
            for index in range(20):
                got = yield from store.get(b"key-%02d" % index)
                assert got.ok
            return store.stats.cleanings

        assert drive(sim, proc()) >= 1
        assert store.stats.bytes_reclaimed > 0

    def test_scan(self, sim):
        store = make_store(sim)

        def proc():
            yield from store.put(b"a", b"1")
            yield from store.put(b"b", b"2")
            yield from store.delete(b"a")
            return dict((yield from store.scan()))

        assert drive(sim, proc()) == {b"b": b"2"}
