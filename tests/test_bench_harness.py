"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    build_cluster,
    build_single_store,
    drive_store,
    load_cluster,
    preload_store,
    run_closed_loop,
    scale_profile,
)
from repro.workloads.ycsb import YCSBWorkload


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult("t", ["a", "b"])
        result.add(a=1, b="x")
        result.add(a=2, b="y")
        assert result.column("a") == [1, 2]

    def test_row_for(self):
        result = ExperimentResult("t", ["a", "b"])
        result.add(a=1, b="x")
        result.add(a=2, b="y")
        assert result.row_for(a=2)["b"] == "y"
        assert result.row_for(a=99) is None

    def test_format_renders_table(self):
        result = ExperimentResult("My Table", ["col"])
        result.add(col=3.14159)
        text = result.format()
        assert "My Table" in text
        assert "col" in text
        assert "3.14" in text

    def test_format_empty(self):
        result = ExperimentResult("Empty", ["x"])
        assert "Empty" in result.format()


class TestScaleProfiles:
    def test_quick_smaller_than_full(self):
        quick = scale_profile("quick")
        full = scale_profile("full")
        assert quick.num_records < full.num_records
        assert quick.num_ops < full.num_ops


class TestSingleStoreHarness:
    @pytest.mark.parametrize("system", ["leed", "fawn", "kvell"])
    def test_build_preload_drive(self, system):
        single = build_single_store(system, value_size=128,
                                    capacity_bytes=32 << 20)
        preload_store(single, 50, 128)
        workload = YCSBWorkload("B", 50, value_size=128,
                                distribution="uniform", seed=1)
        stats = drive_store(single, workload, 100, concurrency=4)
        assert stats.completed >= 100
        assert stats.throughput_qps > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            build_single_store("rocksdb")

    def test_pi_platform_slower(self):
        fast = build_single_store("fawn", platform="stingray",
                                  block_size=4096)
        slow = build_single_store("fawn", platform="pi", block_size=4096)
        preload_store(fast, 20, 128)
        preload_store(slow, 20, 128)
        workload = YCSBWorkload("C", 20, value_size=128,
                                distribution="uniform", seed=2)
        fast_stats = drive_store(fast, workload, 40, concurrency=1)
        workload2 = YCSBWorkload("C", 20, value_size=128,
                                 distribution="uniform", seed=2)
        slow_stats = drive_store(slow, workload2, 40, concurrency=1)
        assert slow_stats.mean_latency_us() > 3 * fast_stats.mean_latency_us()


class TestClusterHarness:
    def test_build_and_run_leed(self):
        workload = YCSBWorkload("B", 60, value_size=128, seed=3)
        cluster = build_cluster("leed", num_clients=1, seed=3)
        load_cluster(cluster, workload)
        stats = run_closed_loop(cluster, workload, 120, concurrency=8)
        assert stats.completed >= 120
        assert stats.failed == 0

    def test_ablation_toggles_apply(self):
        cluster = build_cluster("leed", flow_control=False, crrs=False,
                                num_clients=1)
        client = cluster.clients[0]
        assert not client.flow.enabled
        assert not client.crrs
        assert client.read_policy == "tail"
