"""Chain-role failure tests — failed head, mid, tail (§3.8.2).

The paper enumerates how CRRS interacts with a failure at each chain
position.  Here we find keys whose chain places the crashed JBOF at a
specific position and check the paper's promised behaviour:

* **failed head**: reads are still served by the rest of the chain;
  new writes succeed once the control plane reconfigures;
* **failed mid-node**: reads unaffected; writes resume after the
  neighbour update;
* **failed tail**: committed data survives — reads are handled by
  other replicas (the client fails over past the dead tail).
"""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.jbof import LeedOptions

from conftest import drive


def make_cluster(seed=31):
    config = ClusterConfig(
        num_jbofs=4, ssds_per_jbof=1, num_clients=1, replication=3,
        store=StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        options=LeedOptions(heartbeat_period_us=2_000.0),
        heartbeat_timeout_us=15_000.0,
        seed=seed)
    cluster = LeedCluster(config)
    cluster.start()
    return cluster


def keys_by_chain_position(cluster, jbof_address, position, count=5,
                           universe=400):
    """Keys whose chain puts a vnode of ``jbof_address`` at ``position``."""
    ring = cluster.control_plane.master_ring()
    found = []
    for index in range(universe):
        key = b"probe-%04d" % index
        chain = ring.chain_for_key(key)
        if len(chain) > position and \
                chain[position].jbof_address == jbof_address:
            found.append(key)
            if len(found) == count:
                break
    return found


def load(cluster, keys):
    client = cluster.clients[0]

    def proc():
        for key in keys:
            result = yield from client.put(key, b"payload-" + key)
            assert result.ok
        yield cluster.sim.timeout(2_000)

    drive(cluster.sim, proc())


def wait_recovery(cluster, duration_us=600_000):
    def proc():
        yield cluster.sim.timeout(duration_us)

    drive(cluster.sim, proc())


@pytest.mark.parametrize("position,role", [(0, "head"), (1, "mid"),
                                           (2, "tail")])
class TestRoleFailure:
    def test_reads_survive_role_failure(self, position, role):
        cluster = make_cluster()
        victim = cluster.jbofs[1]
        keys = keys_by_chain_position(cluster, victim.address, position)
        assert keys, "no keys with %s at %s" % (victim.address, role)
        load(cluster, keys)

        victim.crash()
        # Reads during the detection window: the client retries over
        # replicas; with R=3 and one failure the data is reachable.
        client = cluster.clients[0]

        def during():
            ok = 0
            for key in keys:
                result = yield from client.get(key)
                if result.status == "ok":
                    assert result.value == b"payload-" + key
                    ok += 1
            return ok

        served_during = drive(cluster.sim, during())
        wait_recovery(cluster)

        def after():
            for key in keys:
                result = yield from client.get(key)
                assert result.status == "ok", (role, key, result.status)
                assert result.value == b"payload-" + key

        drive(cluster.sim, after())
        # During the outage most reads should already have been served
        # (tail failure forces failover; head/mid reads are direct).
        assert served_during >= len(keys) - 1

    def test_writes_resume_after_reconfiguration(self, position, role):
        cluster = make_cluster()
        victim = cluster.jbofs[2]
        keys = keys_by_chain_position(cluster, victim.address, position)
        assert keys
        load(cluster, keys)
        victim.crash()
        wait_recovery(cluster)
        client = cluster.clients[0]

        def proc():
            for key in keys:
                result = yield from client.put(key, b"v2-" + key)
                assert result.ok, (role, key, result.status)
                got = yield from client.get(key)
                assert got.ok and got.value == b"v2-" + key

        drive(cluster.sim, proc())


class TestCrashRecoverCycle:
    def test_recovered_jbof_can_rejoin(self):
        """A crashed JBOF heals and its vnodes rejoin via the control
        plane's join path, receiving fresh copies."""
        cluster = make_cluster()
        sim = cluster.sim
        keys = [b"probe-%04d" % index for index in range(30)]
        load(cluster, keys)

        victim = cluster.jbofs[3]
        old_vnodes = list(victim.vnodes)
        victim.crash()
        wait_recovery(cluster)
        assert all(v not in cluster.control_plane.vnodes
                   for v in old_vnodes)

        # Heal and rejoin each vnode.
        victim.recover()

        def rejoin():
            for vnode_id in old_vnodes:
                yield from cluster.control_plane.join_vnode(
                    vnode_id, victim.address)
            yield sim.timeout(5_000)

        drive(sim, rejoin())
        assert all(v in cluster.control_plane.vnodes for v in old_vnodes)

        client = cluster.clients[0]

        def verify():
            for key in keys:
                result = yield from client.get(key)
                assert result.ok, key

        drive(sim, verify())
