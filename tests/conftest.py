"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(1234)


@pytest.fixture
def small_ssd(sim, rng) -> NVMeSSD:
    """A 32 MB, 512 B-sector device for fast functional tests."""
    profile = SSDProfile(capacity_bytes=32 << 20, block_size=512)
    return NVMeSSD(sim, profile, rng=rng, name="test-nvme")


@pytest.fixture
def quiet_ssd(sim, rng) -> NVMeSSD:
    """Like small_ssd but jitter-free, for exact timing assertions."""
    profile = SSDProfile(capacity_bytes=32 << 20, block_size=512,
                         jitter=0.0)
    return NVMeSSD(sim, profile, rng=rng, name="quiet-nvme")


def drive(sim: Simulator, generator, name="test"):
    """Run a generator process to completion; return its value."""
    process = sim.process(generator, name=name)
    return sim.run(until=process)
