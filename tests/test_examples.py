"""The example scripts stay runnable and their invariants hold.

``examples/`` is not a package; each script is loaded by file path and
its ``main()`` executed (the scripts assert their own headline
invariants — lost acked writes zero — and return their records for the
extra checks here).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.scenario


def load_example(stem):
    spec = importlib.util.spec_from_file_location(
        "examples_" + stem, EXAMPLES_DIR / (stem + ".py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_failover_demo(capsys):
    record = load_example("failover_demo").main()
    assert record["invariants"]["lost_acked_writes"] == 0
    assert record["recovery"]["failover"], "crash was never detected"
    out = capsys.readouterr().out
    assert "lost acked writes: 0" in out


def test_power_failure_recovery(capsys):
    record = load_example("power_failure_recovery").main()
    assert record["invariants"]["lost_acked_writes"] == 0
    report = record["recovery"]["power"][0]["report"]
    assert report["objects_recovered"] > 0
    assert report["scan_duration_us"] > 0
    assert "lost acked writes: 0" in capsys.readouterr().out


def test_hot_key_mitigation(capsys):
    records = load_example("hot_key_mitigation").main()
    assert set(records) == {False, True}
    for record in records.values():
        assert record["invariants"]["lost_acked_writes"] == 0
    assert "CRRS" in capsys.readouterr().out
