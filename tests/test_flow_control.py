"""Tests for the inter-JBOF flow-control scheduler (§3.5, Alg. 1)."""

import pytest

from repro.core.flow_control import FlowController, PendingRequest


def make_request(target, cost, sent):
    return PendingRequest(target=target, token_cost=cost,
                          send=lambda: sent.append(target))


class TestAlgorithm1:
    def test_sends_when_tokens_available(self, sim):
        flow = FlowController(sim)
        flow.on_response("ssd1", 10)
        sent = []
        flow.enqueue("t1", make_request("ssd1", 3, sent))
        sim.run(until=1)
        assert sent == ["ssd1"]
        assert flow.view("ssd1").tokens == 7

    def test_defers_without_tokens_when_outstanding(self, sim):
        flow = FlowController(sim)
        flow.on_response("ssd1", 3)
        sent = []
        flow.enqueue("t1", make_request("ssd1", 3, sent))   # spends all
        flow.enqueue("t1", make_request("ssd1", 3, sent))   # must wait
        sim.run(until=1)
        assert len(sent) == 1
        assert flow.stats.deferred >= 1
        # A response replenishes tokens and releases the second.
        flow.on_complete("ssd1")
        flow.on_response("ssd1", 5)
        sim.run(until=2)
        assert len(sent) == 2

    def test_nagle_probe_with_no_outstanding(self, sim):
        """Alg.1 L9-13: zero tokens but nothing outstanding -> send
        one probe anyway."""
        flow = FlowController(sim)
        flow.on_response("ssd1", 0)
        sent = []
        flow.enqueue("t1", make_request("ssd1", 2, sent))
        sim.run(until=1)
        assert sent == ["ssd1"]
        assert flow.stats.nagle_probes == 1
        assert flow.view("ssd1").tokens == 0

    def test_round_robin_across_tenants(self, sim):
        flow = FlowController(sim)
        flow.on_response("x", 100)
        sent = []
        for tenant in ("a", "b", "a", "b"):
            flow.enqueue(tenant, make_request("x", 1, sent))
        sim.run(until=1)
        assert len(sent) == 4

    def test_disabled_passthrough(self, sim):
        flow = FlowController(sim, enabled=False)
        sent = []
        for index in range(5):
            flow.enqueue("t", make_request("hot", 99, sent))
        assert len(sent) == 5  # immediate, no scheduling
        assert flow.queued() == 0

    def test_best_target_picks_max_tokens(self, sim):
        flow = FlowController(sim)
        flow.on_response("a", 2)
        flow.on_response("b", 9)
        flow.on_response("c", 5)
        assert flow.best_target(["a", "b", "c"]) == "b"

    def test_outstanding_accounting(self, sim):
        flow = FlowController(sim)
        flow.on_response("t", 10)
        sent = []
        flow.enqueue("x", make_request("t", 2, sent))
        sim.run(until=1)
        assert flow.view("t").outstanding == 1
        flow.on_complete("t")
        assert flow.view("t").outstanding == 0

    def test_token_view_is_snapshot(self, sim):
        flow = FlowController(sim)
        flow.on_response("t", 8)
        flow.on_response("t", 3)  # fresher snapshot overrides
        assert flow.view("t").tokens == 3

    def test_queue_drains_in_order_per_tenant(self, sim):
        flow = FlowController(sim)
        flow.on_response("t", 100)
        order = []
        for index in range(4):
            flow.enqueue("one", PendingRequest(
                target="t", token_cost=1,
                send=lambda index=index: order.append(index)))
        sim.run(until=1)
        assert order == [0, 1, 2, 3]
