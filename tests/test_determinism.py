"""Runtime determinism: same-seed replay must be bit-for-bit identical.

The event-schedule digest (Simulator.enable_schedule_digest) hashes
``(time, priority, sequence, event-kind)`` of every popped event, so
any wall-clock, hash-order, or unseeded-RNG leak anywhere in the
model shows up as a digest divergence between two same-seed runs.
"""

import pytest

from repro.lint.determinism import run_probe, verify
from repro.sim.core import Simulator

#: Small probe geometry so the double run stays fast.
PROBE = dict(num_records=60, num_ops=100, value_size=96)


@pytest.fixture(scope="module")
def probes():
    """One seed-3 pair plus a seed-4 run, computed once."""
    return (run_probe(seed=3, **PROBE),
            run_probe(seed=3, **PROBE),
            run_probe(seed=4, **PROBE))


class TestScheduleDigest:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.timeout(5)
        sim.run()
        assert sim.schedule_digest is None
        assert sim.schedule_digest_events == 0

    def test_counts_popped_events(self):
        sim = Simulator()
        sim.enable_schedule_digest()
        for delay in (1, 2, 3):
            sim.timeout(delay)
        sim.run()
        assert sim.schedule_digest_events == 3
        assert len(sim.schedule_digest) == 64

    def test_identical_schedules_hash_identically(self):
        def build():
            sim = Simulator()
            sim.enable_schedule_digest()
            for delay in (5, 1, 3):
                sim.timeout(delay)
            sim.run()
            return sim.schedule_digest

        assert build() == build()

    def test_schedule_order_changes_digest(self):
        """Creation order feeds the sequence numbers, so a reordered
        schedule — e.g. a heap popping in hash order instead of
        (time, priority, sequence) — cannot reproduce the digest."""
        def build(delays):
            sim = Simulator()
            sim.enable_schedule_digest()
            for delay in delays:
                sim.timeout(delay)
            sim.run()
            return sim.schedule_digest

        assert build((5, 1, 3)) != build((1, 3, 5))


class TestSameSeedReplay:
    def test_digests_identical(self, probes):
        first, replay, _ = probes
        assert first.digest == replay.digest
        assert first.events == replay.events

    def test_telemetry_identical(self, probes):
        first, replay, _ = probes
        assert first.telemetry_report == replay.telemetry_report

    def test_final_time_identical(self, probes):
        first, replay, _ = probes
        assert first.final_time_us == replay.final_time_us

    def test_distinct_seeds_diverge(self, probes):
        first, _, alternate = probes
        assert first.digest != alternate.digest

    def test_probe_does_real_work(self, probes):
        first, _, _ = probes
        assert first.events > 1000
        assert first.final_time_us > 0


class TestVerify:
    def test_report_ok(self):
        report = verify(seed=0, alt_seed=1, num_records=40, num_ops=60,
                        value_size=64)
        assert report.replay_identical
        assert report.seeds_diverge
        assert report.ok
        assert "deterministic" in report.format()

    def test_equal_seeds_rejected(self):
        with pytest.raises(ValueError):
            verify(seed=2, alt_seed=2)
