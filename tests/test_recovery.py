"""Tests for crash recovery from the on-flash logs (§3.2.3)."""

import random

import pytest

from repro.core.datastore import LeedDataStore, StoreConfig
from repro.core.recovery import recover_store
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


CONFIG = dict(num_segments=32, key_log_bytes=512 << 10,
              value_log_bytes=2 << 20)


def make_store(sim, ssd=None, **overrides):
    config_kwargs = dict(CONFIG)
    config_kwargs.update(overrides)
    if ssd is None:
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(3))
    return LeedDataStore(sim, ssd, StoreConfig(**config_kwargs)), ssd


class TestRecovery:
    def test_rebuilds_index_after_crash(self, sim):
        store, ssd = make_store(sim)

        def before():
            for index in range(40):
                result = yield from store.put(b"key-%03d" % index,
                                              b"value-%03d" % index)
                assert result.ok

        drive(sim, before())

        # "Crash": a brand-new store object over the same device; the
        # SegTbl and log pointers (DRAM state) are gone.
        reborn, _ = make_store(sim, ssd=ssd)
        assert reborn.segtbl.location(0) is None

        def recover_and_check():
            report = yield from recover_store(reborn)
            for index in range(40):
                got = yield from reborn.get(b"key-%03d" % index)
                assert got.ok, (index, got.status)
                assert got.value == b"value-%03d" % index
            return report

        report = drive(sim, recover_and_check())
        assert report.live_objects == 40
        assert report.segments_recovered > 0
        assert report.blocks_scanned == CONFIG["key_log_bytes"] // 512

    def test_latest_version_wins(self, sim):
        """Overwrites leave stale segment versions on flash; recovery
        must pick the newest via the tail snapshot."""
        store, ssd = make_store(sim)

        def before():
            for round_index in range(5):
                for index in range(10):
                    yield from store.put(b"k%02d" % index,
                                         b"round-%d" % round_index)

        drive(sim, before())
        reborn, _ = make_store(sim, ssd=ssd)

        def recover_and_check():
            report = yield from recover_store(reborn)
            for index in range(10):
                got = yield from reborn.get(b"k%02d" % index)
                assert got.ok and got.value == b"round-4"
            return report

        report = drive(sim, recover_and_check())
        assert report.stale_versions_skipped > 0
        assert report.live_objects == 10

    def test_deletes_stay_deleted(self, sim):
        store, ssd = make_store(sim)

        def before():
            for index in range(20):
                yield from store.put(b"k%02d" % index, b"v")
            for index in range(10):
                yield from store.delete(b"k%02d" % index)

        drive(sim, before())
        reborn, _ = make_store(sim, ssd=ssd)

        def recover_and_check():
            yield from recover_store(reborn)
            for index in range(10):
                got = yield from reborn.get(b"k%02d" % index)
                assert got.status == "not_found", index
            for index in range(10, 20):
                got = yield from reborn.get(b"k%02d" % index)
                assert got.ok, index

        drive(sim, recover_and_check())

    def test_store_writable_after_recovery(self, sim):
        store, ssd = make_store(sim)

        def before():
            for index in range(15):
                yield from store.put(b"old-%02d" % index, b"v1")

        drive(sim, before())
        reborn, _ = make_store(sim, ssd=ssd)

        def after():
            yield from recover_store(reborn)
            # New writes and overwrites work on the recovered store.
            result = yield from reborn.put(b"new-key", b"fresh")
            assert result.ok
            result = yield from reborn.put(b"old-03", b"v2")
            assert result.ok
            got_new = yield from reborn.get(b"new-key")
            got_old = yield from reborn.get(b"old-03")
            got_other = yield from reborn.get(b"old-07")
            return got_new, got_old, got_other

        got_new, got_old, got_other = drive(sim, after())
        assert got_new.value == b"fresh"
        assert got_old.value == b"v2"
        assert got_other.value == b"v1"

    def test_empty_store_recovers_empty(self, sim):
        store, ssd = make_store(sim)
        reborn, _ = make_store(sim, ssd=ssd)

        def proc():
            report = yield from recover_store(reborn)
            return report

        report = drive(sim, proc())
        assert report.live_objects == 0
        assert report.segments_recovered == 0

    def test_recovery_after_compaction(self, sim):
        """Recovery is correct no matter where compaction left the
        head/tail, because entries are self-describing."""
        from repro.core.compaction import Compactor
        store, ssd = make_store(sim)
        compactor = Compactor(store)

        def before():
            for round_index in range(6):
                for index in range(20):
                    yield from store.put(
                        b"k%02d" % index, b"r%d" % round_index)
            yield from compactor.compact_key_log(target_fill=0.05)

        drive(sim, before())
        reborn, _ = make_store(sim, ssd=ssd)

        def recover_and_check():
            yield from recover_store(reborn)
            for index in range(20):
                got = yield from reborn.get(b"k%02d" % index)
                assert got.ok and got.value == b"r5", (index, got.status)

        drive(sim, recover_and_check())

    def test_randomized_crash_consistency(self, sim):
        """Property-style: any prefix of operations, then crash, then
        recovery reproduces exactly the surviving dict state."""
        rng = random.Random(17)
        store, ssd = make_store(sim)
        shadow = {}

        def before():
            for step in range(150):
                key = b"k%02d" % rng.randrange(25)
                if rng.random() < 0.6:
                    value = b"v%03d" % step
                    result = yield from store.put(key, value)
                    if result.ok:
                        shadow[key] = value
                else:
                    result = yield from store.delete(key)
                    if result.ok:
                        shadow.pop(key, None)

        drive(sim, before())
        reborn, _ = make_store(sim, ssd=ssd)

        def recover_and_check():
            report = yield from recover_store(reborn)
            for key, value in shadow.items():
                got = yield from reborn.get(key)
                assert got.ok and got.value == value, key
            for key in (b"k%02d" % i for i in range(25)):
                if key not in shadow:
                    got = yield from reborn.get(key)
                    assert got.status == "not_found", key
            return report

        report = drive(sim, recover_and_check())
        assert report.live_objects == len(shadow)
