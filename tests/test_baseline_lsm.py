"""Tests for the LSM-tree baseline: bloom, sstable, datastore."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lsm.bloom import BloomFilter
from repro.baselines.lsm.datastore import LsmConfig, LsmDataStore
from repro.baselines.lsm.sstable import DELETED, write_sstable
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(100)
        keys = [b"key-%03d" % i for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(500, bits_per_key=10)
        for index in range(500):
            bloom.add(b"member-%04d" % index)
        false_positives = sum(
            1 for index in range(5000)
            if bloom.might_contain(b"stranger-%05d" % index))
        # ~1% theoretical at 10 bits/key; allow generous slack.
        assert false_positives / 5000 < 0.05

    def test_empty_contains_nothing(self):
        bloom = BloomFilter(10)
        assert not bloom.might_contain(b"anything")
        assert bloom.fill_ratio() == 0.0

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, bits_per_key=0)

    @settings(max_examples=20, deadline=None)
    @given(keys=st.sets(st.binary(min_size=1, max_size=24), min_size=1,
                        max_size=100))
    def test_membership_property(self, keys):
        bloom = BloomFilter(len(keys))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)


class TestSSTable:
    def build(self, sim, records):
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=16 << 20,
                                      block_size=512, jitter=0.0),
                      rng=RngRegistry(6))

        def proc():
            return (yield from write_sstable(ssd, 0, 512, records))

        return drive(sim, proc())

    def test_point_lookups(self, sim):
        records = [(b"k%03d" % i, b"v%03d" % i) for i in range(200)]
        table = self.build(sim, records)

        def proc():
            hits = []
            for index in (0, 57, 123, 199):
                value = yield from table.get(b"k%03d" % index)
                hits.append(value)
            missing = yield from table.get(b"k999")
            return hits, missing

        hits, missing = drive(sim, proc())
        assert hits == [b"v000", b"v057", b"v123", b"v199"]
        assert missing is None

    def test_tombstones_visible(self, sim):
        records = [(b"a", b"1"), (b"b", None), (b"c", b"3")]
        table = self.build(sim, records)

        def proc():
            return (yield from table.get(b"b"))

        assert drive(sim, proc()) is DELETED

    def test_scan_all_roundtrip(self, sim):
        records = [(b"k%02d" % i, b"value-%02d" % i) for i in range(50)]
        table = self.build(sim, records)

        def proc():
            return (yield from table.scan_all())

        assert drive(sim, proc()) == records

    def test_out_of_range_needs_no_io(self, sim):
        records = [(b"m%02d" % i, b"v") for i in range(10)]
        table = self.build(sim, records)
        reads_before = table.ssd.stats.reads_completed

        def proc():
            low = yield from table.get(b"a")
            high = yield from table.get(b"z")
            return low, high

        low, high = drive(sim, proc())
        assert low is None and high is None
        assert table.ssd.stats.reads_completed == reads_before

    def test_empty_input_returns_none(self, sim):
        assert self.build(sim, []) is None


def make_store(sim, **overrides):
    config_kwargs = dict(region_bytes=48 << 20, memtable_bytes=2 << 10,
                         l0_limit=3, l1_bytes=16 << 10)
    config_kwargs.update(overrides)
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=64 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(8))
    return LsmDataStore(sim, ssd, LsmConfig(**config_kwargs))


class TestLsmStore:
    def test_put_get_through_flush(self, sim):
        store = make_store(sim)

        def proc():
            for index in range(300):
                result = yield from store.put(b"key-%04d" % index,
                                              b"value-%04d" % index)
                assert result.ok
            assert store.stats.flushes > 0
            for index in range(0, 300, 17):
                got = yield from store.get(b"key-%04d" % index)
                assert got.ok and got.value == b"value-%04d" % index

        drive(sim, proc())

    def test_overwrite_latest_wins_across_levels(self, sim):
        store = make_store(sim)

        def proc():
            for round_index in range(4):
                for index in range(60):
                    yield from store.put(b"k%02d" % index,
                                         b"round-%d" % round_index)
            got = yield from store.get(b"k30")
            return got

        assert drive(sim, proc()).value == b"round-3"

    def test_delete_shadows_older_levels(self, sim):
        store = make_store(sim)

        def proc():
            for index in range(150):
                yield from store.put(b"k%03d" % index, b"v")
            yield from store.delete(b"k010")
            # Push the tombstone through a flush.
            for index in range(150, 300):
                yield from store.put(b"k%03d" % index, b"v")
            got = yield from store.get(b"k010")
            return got.status

        assert drive(sim, proc()) == "not_found"

    def test_compaction_triggers_and_preserves(self, sim):
        store = make_store(sim)

        def proc():
            for round_index in range(10):
                for index in range(80):
                    yield from store.put(b"k%02d" % (index % 90),
                                         b"r%d-%02d" % (round_index, index))
            assert store.stats.compactions > 0
            pairs = dict((yield from store.scan()))
            return pairs

        pairs = drive(sim, proc())
        assert pairs  # data survived the merge cascade

    def test_write_amplification_tracked(self, sim):
        store = make_store(sim)

        def proc():
            for index in range(250):
                yield from store.put(b"key-%04d" % index, b"x" * 64)
            return store.stats.write_amplification()

        amplification = drive(sim, proc())
        assert amplification > 1.0  # WAL + flush + merges

    def test_bloom_filters_skip_tables(self, sim):
        store = make_store(sim)

        def proc():
            for index in range(400):
                yield from store.put(b"key-%04d" % index, b"v" * 32)
            for index in range(50):
                yield from store.get(b"absent-%04d" % index)
            return store.stats.bloom_skips

        assert drive(sim, proc()) > 0

    def test_scan_matches_shadow(self, sim):
        store = make_store(sim)
        rng = random.Random(5)

        def proc():
            shadow = {}
            for step in range(500):
                key = b"k%02d" % rng.randrange(60)
                if rng.random() < 0.7:
                    value = b"v%04d" % step
                    yield from store.put(key, value)
                    shadow[key] = value
                else:
                    yield from store.delete(key)
                    shadow.pop(key, None)
            pairs = dict((yield from store.scan()))
            return pairs, shadow

        pairs, shadow = drive(sim, proc())
        assert pairs == shadow
