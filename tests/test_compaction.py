"""Tests for key-log and value-log compaction (§3.3.1)."""

import random

import pytest

from repro.core.compaction import CompactionConfig, Compactor
from repro.core.datastore import LeedDataStore, StoreConfig
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.rng import RngRegistry

from conftest import drive


def make_store(sim, **config_kwargs):
    defaults = dict(num_segments=32, key_log_bytes=128 << 10,
                    value_log_bytes=256 << 10,
                    compact_high_watermark=0.7,
                    compact_low_watermark=0.4)
    defaults.update(config_kwargs)
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(5))
    return LeedDataStore(sim, ssd, StoreConfig(**defaults))


def fill(store, count, value_size=64, prefix=b"key"):
    """Generator: count puts over ``count`` distinct keys."""
    for index in range(count):
        result = yield from store.put(b"%s-%04d" % (prefix, index),
                                      b"v" * value_size)
        assert result.ok, result.status


class TestKeyLogCompaction:
    def test_reclaims_dead_entries(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            # Rewrite the same keys repeatedly: old segments become dead.
            for _round in range(8):
                yield from fill(store, 20)
            before = store.key_log.used_bytes
            reclaimed = yield from compactor.compact_key_log(target_fill=0.1)
            return before, reclaimed

        before, reclaimed = drive(sim, proc())
        assert reclaimed > 0
        assert store.key_log.used_bytes < before

    def test_data_survives_compaction(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            for _round in range(6):
                yield from fill(store, 25)
            yield from compactor.compact_key_log(target_fill=0.05)
            for index in range(25):
                got = yield from store.get(b"key-%04d" % index)
                assert got.ok and got.value == b"v" * 64
            return compactor.stats

        stats = drive(sim, proc())
        assert stats.segments_scanned > 0
        assert stats.key_rounds == 1

    def test_tombstones_purged(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            yield from fill(store, 20)
            for index in range(10):
                yield from store.delete(b"key-%04d" % index)
            yield from compactor.compact_key_log(target_fill=0.0)
            # Deleted keys stay deleted; live keys stay live.
            for index in range(10):
                got = yield from store.get(b"key-%04d" % index)
                assert got.status == "not_found"
            for index in range(10, 20):
                got = yield from store.get(b"key-%04d" % index)
                assert got.ok
            return compactor.stats.tombstones_dropped

        assert drive(sim, proc()) > 0

    def test_subcompaction_workers_produce_same_result(self, sim):
        for workers in (1, 4):
            sim2 = type(sim)()
            store = make_store(sim2)
            compactor = Compactor(store, CompactionConfig(
                subcompactions=workers))

            def proc():
                for _round in range(5):
                    yield from fill(store, 30)
                yield from compactor.compact_key_log(target_fill=0.05)
                values = {}
                for index in range(30):
                    got = yield from store.get(b"key-%04d" % index)
                    values[index] = got.status
                return values

            process = sim2.process(proc())
            values = sim2.run(until=process)
            assert all(status == "ok" for status in values.values())

    def test_prefetch_toggle_equivalent_outcome(self, sim):
        results = {}
        for prefetch in (True, False):
            sim2 = type(sim)()
            store = make_store(sim2)
            compactor = Compactor(store, CompactionConfig(prefetch=prefetch))

            def proc():
                for _round in range(4):
                    yield from fill(store, 20)
                reclaimed = yield from compactor.compact_key_log(
                    target_fill=0.05)
                return reclaimed

            process = sim2.process(proc())
            results[prefetch] = sim2.run(until=process)
        assert results[True] == results[False]


class TestValueLogCompaction:
    def test_reclaims_overwritten_values(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            for _round in range(6):
                yield from fill(store, 15, value_size=200)
            before = store.value_log.used_bytes
            reclaimed = yield from compactor.compact_value_log(
                target_fill=0.05)
            return before, reclaimed

        before, reclaimed = drive(sim, proc())
        assert reclaimed > 0

    def test_live_values_relocated_and_readable(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            yield from fill(store, 20, value_size=150)
            # A little churn so the head has a mix of live and dead.
            yield from fill(store, 5, value_size=150)
            yield from compactor.compact_value_log(target_fill=0.0)
            for index in range(20):
                got = yield from store.get(b"key-%04d" % index)
                assert got.ok, (index, got.status)
                assert got.value == b"v" * 150
            return compactor.stats.values_relocated

        relocated = drive(sim, proc())
        assert relocated > 0

    def test_deleted_values_not_resurrected(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            yield from fill(store, 10, value_size=100)
            yield from store.delete(b"key-0003")
            yield from compactor.compact_value_log(target_fill=0.0)
            got = yield from store.get(b"key-0003")
            return got.status

        assert drive(sim, proc()) == "not_found"


class TestMaintenance:
    def test_watermark_triggers(self, sim):
        store = make_store(sim, key_log_bytes=32 << 10)
        compactor = Compactor(store)
        sim.process(compactor.maintenance_loop(poll_us=50.0))

        def proc():
            for _round in range(12):
                yield from fill(store, 15)
                yield sim.timeout(200)
            return compactor.stats.key_rounds

        assert drive(sim, proc()) >= 1
        assert store.key_log.fill_fraction() < 1.0

    def test_no_compaction_below_watermark(self, sim):
        store = make_store(sim)
        compactor = Compactor(store)

        def proc():
            yield from fill(store, 5)
            ran = yield from compactor.maintenance()
            return ran

        assert drive(sim, proc()) == 0
        assert compactor.stats.key_rounds == 0


class TestSwapMergeBack:
    def test_swapped_value_merges_home(self, sim):
        """A value written to a peer store's log returns to its home
        log during value compaction (§3.6 merge-back)."""
        ssd_a = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20,
                                        block_size=512, jitter=0.0),
                        rng=RngRegistry(1), name="ssd-a")
        ssd_b = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20,
                                        block_size=512, jitter=0.0),
                        rng=RngRegistry(2), name="ssd-b")
        config = StoreConfig(num_segments=16, key_log_bytes=64 << 10,
                             value_log_bytes=128 << 10)
        home = LeedDataStore(sim, ssd_a, config, name="home", store_id=0)
        peer = LeedDataStore(sim, ssd_b, config, name="peer", store_id=1)
        for store in (home, peer):
            store.peer_value_logs.update({0: home.value_log,
                                          1: peer.value_log})
            store.peer_stores.update({0: home, 1: peer})
        # Route home's next value write to the peer SSD (a swap).
        home.value_router = lambda store, key, value: (1, peer.value_log)

        def proc():
            result = yield from home.put(b"swapped", b"payload")
            assert result.ok
            got = yield from home.get(b"swapped")
            assert got.ok and got.value == b"payload"
            # The key item records the peer as the value holder.
            location = home.segtbl.location(
                __import__("repro.core.segment", fromlist=["segment_of"])
                .segment_of(b"swapped", 16))
            # Merge back happens when the PEER compacts its value log.
            home.value_router = LeedDataStore._home_value_router
            compactor = Compactor(peer)
            yield from compactor.compact_value_log(target_fill=0.0)
            got = yield from home.get(b"swapped")
            assert got.ok and got.value == b"payload"
            return compactor.stats.values_merged_home

        assert drive(sim, proc()) == 1
