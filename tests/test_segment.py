"""Tests for key items, buckets, segments, and value entries (§3.2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment import (
    BUCKET_HEADER,
    KEY_ITEM_HEADER,
    Bucket,
    KeyItem,
    Segment,
    SegmentFullError,
    TOMBSTONE_VLEN,
    key_hash,
    pack_value_entry,
    peek_segment_header,
    segment_of,
    unpack_value_entry,
    value_entry_size,
)

BLOCK = 512


class TestKeyItem:
    def test_pack_unpack_roundtrip(self):
        item = KeyItem(b"user123", vlen=1024, voffset=4096, ssd_id=2)
        packed = item.pack()
        assert len(packed) == item.wire_size
        restored = KeyItem.unpack_from(packed, 0)
        assert restored.key == b"user123"
        assert restored.vlen == 1024
        assert restored.voffset == 4096
        assert restored.ssd_id == 2
        assert restored.khash == item.khash

    def test_tombstone_flag(self):
        live = KeyItem(b"k", vlen=10, voffset=0)
        dead = KeyItem(b"k", vlen=TOMBSTONE_VLEN, voffset=0)
        assert not live.is_tombstone
        assert dead.is_tombstone

    def test_hash_derived_from_key(self):
        a = KeyItem(b"same", vlen=1, voffset=0)
        b = KeyItem(b"same", vlen=9, voffset=5)
        assert a.khash == b.khash == key_hash(b"same")


class TestBucket:
    def test_pack_fits_block(self):
        bucket = Bucket(seg_id=7)
        bucket.items = [KeyItem(b"key-%02d" % i, vlen=10, voffset=i)
                        for i in range(10)]
        block = bucket.pack(chain_len=1, block_size=BLOCK)
        assert len(block) == BLOCK

    def test_pack_unpack_roundtrip(self):
        bucket = Bucket(seg_id=9, position=1)
        bucket.items = [KeyItem(b"alpha", vlen=11, voffset=22, ssd_id=1)]
        block = bucket.pack(chain_len=3, block_size=BLOCK)
        restored = Bucket.unpack(block)
        assert restored.seg_id == 9
        assert restored.position == 1
        assert len(restored.items) == 1
        assert restored.items[0].key == b"alpha"

    def test_overflow_rejected(self):
        bucket = Bucket(seg_id=0)
        bucket.items = [KeyItem(b"x" * 100, vlen=1, voffset=0)
                        for _ in range(10)]
        with pytest.raises(ValueError):
            bucket.pack(chain_len=1, block_size=BLOCK)

    def test_has_room(self):
        bucket = Bucket(seg_id=0)
        small = KeyItem(b"k", vlen=1, voffset=0)
        assert bucket.has_room(small, BLOCK)
        bucket.items = [KeyItem(b"y" * 80, vlen=1, voffset=0)
                        for _ in range(5)]
        big = KeyItem(b"z" * 200, vlen=1, voffset=0)
        assert not bucket.has_room(big, BLOCK)


class TestSegment:
    def test_upsert_insert_and_update(self):
        segment = Segment(seg_id=1)
        segment.upsert(KeyItem(b"k1", vlen=5, voffset=100), BLOCK, 4)
        segment.upsert(KeyItem(b"k1", vlen=9, voffset=200), BLOCK, 4)
        item = segment.find(b"k1")
        assert item.vlen == 9
        assert item.voffset == 200
        assert segment.chain_len == 1

    def test_chain_extension(self):
        segment = Segment(seg_id=1)
        # Fill buckets with large keys until the chain must grow.
        index = 0
        while segment.chain_len < 2:
            segment.upsert(KeyItem(b"key-%03d" % index + b"p" * 60,
                                   vlen=1, voffset=index), BLOCK, 4)
            index += 1
        assert segment.chain_len == 2
        # Every inserted key is still findable across the chain.
        for check in range(index):
            key = b"key-%03d" % check + b"p" * 60
            assert segment.find(key) is not None

    def test_max_chain_enforced(self):
        segment = Segment(seg_id=1)
        with pytest.raises(SegmentFullError):
            index = 0
            while True:
                segment.upsert(KeyItem(b"key-%04d" % index + b"q" * 60,
                                       vlen=1, voffset=0), BLOCK, 2)
                index += 1

    def test_pack_unpack_roundtrip(self):
        segment = Segment(seg_id=3)
        for index in range(20):
            segment.upsert(KeyItem(b"user%04d" % index, vlen=index + 1,
                                   voffset=index * 7), BLOCK, 4)
        blob = segment.pack(BLOCK)
        assert len(blob) % BLOCK == 0
        restored = Segment.unpack(blob, BLOCK)
        assert restored.seg_id == 3
        assert restored.chain_len == segment.chain_len
        for index in range(20):
            item = restored.find(b"user%04d" % index)
            assert item is not None
            assert item.vlen == index + 1

    def test_drop_tombstones_shrinks_chain(self):
        segment = Segment(seg_id=1)
        index = 0
        while segment.chain_len < 3:
            segment.upsert(KeyItem(b"key-%04d" % index + b"r" * 60,
                                   vlen=1, voffset=0), BLOCK, 4)
            index += 1
        for item in list(segment.iter_items())[5:]:
            item.vlen = TOMBSTONE_VLEN
        dropped = segment.drop_tombstones()
        assert dropped == index - 5
        assert segment.chain_len < 3
        assert len(segment.live_items()) == 5

    def test_peek_header(self):
        segment = Segment(seg_id=42)
        segment.upsert(KeyItem(b"a", vlen=1, voffset=0), BLOCK, 4)
        blob = segment.pack(BLOCK)
        seg_id, chain_len = peek_segment_header(blob)
        assert seg_id == 42
        assert chain_len == 1

    def test_empty_segment_packs_one_bucket(self):
        segment = Segment(seg_id=5)
        blob = segment.pack(BLOCK)
        assert len(blob) == BLOCK


class TestValueEntry:
    def test_roundtrip(self):
        entry = pack_value_entry(12, b"key", b"value-bytes", owner_id=3)
        seg_id, key, value, size, owner = unpack_value_entry(entry)
        assert (seg_id, key, value, owner) == (12, b"key", b"value-bytes", 3)
        assert size == len(entry) == value_entry_size(3, 11)

    def test_roundtrip_mid_buffer(self):
        buffer = b"JUNK" + pack_value_entry(1, b"k", b"v") + b"TRAILING"
        seg_id, key, value, size, owner = unpack_value_entry(buffer, 4)
        assert (key, value) == (b"k", b"v")


class TestHashing:
    def test_segment_of_in_range(self):
        for key in (b"a", b"b", b"hello", b"user999"):
            assert 0 <= segment_of(key, 64) < 64

    def test_hash_stable(self):
        assert key_hash(b"stable") == key_hash(b"stable")

    @settings(max_examples=50, deadline=None)
    @given(key=st.binary(min_size=1, max_size=64),
           vlen=st.integers(min_value=1, max_value=2**31),
           voffset=st.integers(min_value=0, max_value=2**32 - 1),
           ssd_id=st.integers(min_value=0, max_value=255))
    def test_key_item_roundtrip_property(self, key, vlen, voffset, ssd_id):
        item = KeyItem(key, vlen=vlen, voffset=voffset, ssd_id=ssd_id)
        restored = KeyItem.unpack_from(item.pack(), 0)
        assert restored.key == key
        assert restored.vlen == vlen
        assert restored.voffset == voffset
        assert restored.ssd_id == ssd_id

    @settings(max_examples=30, deadline=None)
    @given(pairs=st.dictionaries(
        st.binary(min_size=1, max_size=24),
        st.integers(min_value=1, max_value=10**6),
        min_size=1, max_size=30))
    def test_segment_upsert_find_property(self, pairs):
        segment = Segment(seg_id=0)
        for key, vlen in pairs.items():
            segment.upsert(KeyItem(key, vlen=vlen, voffset=0), BLOCK, 8)
        blob = segment.pack(BLOCK)
        restored = Segment.unpack(blob, BLOCK)
        for key, vlen in pairs.items():
            item = restored.find(key)
            assert item is not None and item.vlen == vlen
