"""Tests for the control plane: join, leave, failure, COPY (§3.8)."""

import pytest

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.jbof import JOINING, LEAVING, RUNNING, LeedOptions

from conftest import drive


def make_cluster(num_jbofs=3, replication=2, heartbeat_timeout_us=20_000.0):
    config = ClusterConfig(
        num_jbofs=num_jbofs, ssds_per_jbof=2, num_clients=1,
        replication=replication,
        store=StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        options=LeedOptions(heartbeat_period_us=2_000.0),
        heartbeat_timeout_us=heartbeat_timeout_us,
        seed=3)
    cluster = LeedCluster(config)
    cluster.start()
    return cluster


def load_keys(cluster, count, prefix=b"key"):
    client = cluster.clients[0]

    def proc():
        for index in range(count):
            result = yield from client.put(b"%s-%04d" % (prefix, index),
                                           b"value-%04d" % index)
            assert result.ok, result.status
        yield cluster.sim.timeout(2000)

    drive(cluster.sim, proc())


def verify_keys(cluster, count, prefix=b"key", expect_ok=True):
    client = cluster.clients[0]
    missing = []

    def proc():
        for index in range(count):
            result = yield from client.get(b"%s-%04d" % (prefix, index))
            if result.status != "ok":
                missing.append(index)

    drive(cluster.sim, proc())
    if expect_ok:
        assert not missing, "missing keys: %s" % missing[:10]
    return missing


class TestBootstrap:
    def test_initial_ring_published(self):
        cluster = make_cluster()
        assert cluster.control_plane.ring_version == 1
        for node in cluster.jbofs:
            assert node.local_ring.version == 1
            assert len(node.local_ring) == 6
        assert cluster.clients[0].local_ring.version == 1

    def test_vnode_registry(self):
        cluster = make_cluster()
        assert len(cluster.control_plane.vnodes) == 6
        for info in cluster.control_plane.vnodes.values():
            assert info.state == RUNNING


class TestJoin:
    def test_join_preserves_data(self):
        cluster = make_cluster()
        sim = cluster.sim
        load_keys(cluster, 60)

        host = cluster.jbofs[0]
        new_id = host.address + "/pnew"
        runtime = host._make_vnode(new_id, host.ssds[0], 0, 1, 50)
        host.vnodes[new_id] = runtime

        def proc():
            yield from cluster.control_plane.join_vnode(new_id, host.address)
            yield sim.timeout(5000)

        drive(sim, proc())
        assert cluster.control_plane.vnodes[new_id].state == RUNNING
        assert new_id in cluster.control_plane.master_ring().vnodes
        verify_keys(cluster, 60)

    def test_joined_node_receives_copies(self):
        cluster = make_cluster()
        sim = cluster.sim
        load_keys(cluster, 80)
        host = cluster.jbofs[0]
        new_id = host.address + "/pnew"
        runtime = host._make_vnode(new_id, host.ssds[0], 0, 1, 50)
        host.vnodes[new_id] = runtime

        def proc():
            yield from cluster.control_plane.join_vnode(new_id, host.address)
            yield sim.timeout(5000)

        drive(sim, proc())
        new_ring = cluster.control_plane.master_ring()
        owned = sum(1 for index in range(80)
                    if new_id in new_ring.chain_ids_for_key(
                        b"key-%04d" % index))
        if owned:
            assert runtime.store.live_objects > 0

    def test_membership_events_logged(self):
        cluster = make_cluster()
        sim = cluster.sim
        host = cluster.jbofs[0]
        new_id = host.address + "/pnew"
        host.vnodes[new_id] = host._make_vnode(new_id, host.ssds[0], 0, 1, 50)

        def proc():
            yield from cluster.control_plane.join_vnode(new_id, host.address)

        drive(sim, proc())
        kinds = [kind for _t, kind, _v in
                 cluster.control_plane.membership_events]
        assert kinds == ["join_start", "join_end"]


class TestLeave:
    def test_leave_preserves_data(self):
        cluster = make_cluster()
        sim = cluster.sim
        load_keys(cluster, 60)
        victim = list(cluster.jbofs[2].vnodes)[0]

        def proc():
            yield from cluster.control_plane.leave_vnode(victim)
            yield sim.timeout(5000)

        drive(sim, proc())
        assert victim not in cluster.control_plane.vnodes
        assert victim not in cluster.control_plane.master_ring().vnodes
        verify_keys(cluster, 60)

    def test_leave_unknown_vnode_noop(self):
        cluster = make_cluster()

        def proc():
            yield from cluster.control_plane.leave_vnode("ghost/p0")
            yield cluster.sim.timeout(0)

        drive(cluster.sim, proc())


class TestFailure:
    def test_heartbeat_failure_detected(self):
        cluster = make_cluster(heartbeat_timeout_us=15_000.0)
        sim = cluster.sim
        load_keys(cluster, 40)
        dead = cluster.jbofs[1]
        dead.crash()

        def wait():
            yield sim.timeout(400_000)

        drive(sim, wait())
        assert dead.address in cluster.control_plane._failed
        ring = cluster.control_plane.master_ring()
        assert all(dead.address != v.jbof_address
                   for v in ring.vnodes.values())

    def test_data_survives_single_failure(self):
        """R=2: every key has a surviving replica after one JBOF dies;
        reads keep working after re-replication."""
        cluster = make_cluster(heartbeat_timeout_us=15_000.0)
        sim = cluster.sim
        load_keys(cluster, 50)
        cluster.jbofs[1].crash()

        def wait():
            yield sim.timeout(600_000)

        drive(sim, wait())
        verify_keys(cluster, 50)

    def test_writes_resume_after_recovery(self):
        cluster = make_cluster(heartbeat_timeout_us=15_000.0)
        sim = cluster.sim
        load_keys(cluster, 20)
        cluster.jbofs[2].crash()

        def wait():
            yield sim.timeout(600_000)

        drive(sim, wait())
        client = cluster.clients[0]

        def proc():
            result = yield from client.put(b"post-failure", b"new-value")
            got = yield from client.get(b"post-failure")
            return result, got

        result, got = drive(sim, proc())
        assert result.ok
        assert got.ok and got.value == b"new-value"
