#!/usr/bin/env python3
"""Energy-efficiency shoot-out: the paper's three deployments.

Runs YCSB-B (95% read, Zipf 0.99) against:

* **SmartNIC-LEED** — 3 Stingray JBOFs, the full LEED stack;
* **Server-KVell**  — 3 Xeon server JBOFs running our KVell
  reimplementation (share-nothing workers, B-tree index);
* **Embedded-FAWN** — 10 Raspberry Pi 3B+ nodes running FAWN-KV.

and prints throughput, mean power, and KQueries/Joule side by side —
a miniature of the paper's Figure 5.

Run:  python examples/ycsb_energy_comparison.py
"""

from repro.bench.harness import build_cluster, load_cluster, run_closed_loop
from repro.workloads.ycsb import YCSBWorkload

NUM_RECORDS = 600
NUM_OPS = 1500
VALUE_SIZE = 1024

LABELS = {
    "leed": "SmartNIC-LEED (3x Stingray)",
    "kvell": "Server-KVell  (3x Xeon JBOF)",
    "fawn": "Embedded-FAWN (10x RasPi 3B+)",
}


def main():
    print("YCSB-B, %d B objects, %d preloaded records, R=3" %
          (VALUE_SIZE, NUM_RECORDS))
    print("%-32s %10s %9s %14s" % ("deployment", "KQPS", "watts",
                                   "KQueries/J"))
    rows = []
    for system in ("leed", "kvell", "fawn"):
        workload = YCSBWorkload("B", NUM_RECORDS, value_size=VALUE_SIZE,
                                seed=42)
        cluster = build_cluster(system, value_size=VALUE_SIZE, seed=42)
        load_cluster(cluster, workload)
        energy_before = cluster.energy_joules()
        time_before = cluster.sim.now
        ops = NUM_OPS if system != "fawn" else NUM_OPS // 6
        stats = run_closed_loop(cluster, workload, ops,
                                concurrency=144 if system != "fawn" else 24)
        energy = cluster.energy_joules() - energy_before
        watts = energy / ((cluster.sim.now - time_before) * 1e-6)
        kqpj = stats.completed / energy / 1e3
        rows.append((system, stats.throughput_qps / 1e3, watts, kqpj))
        print("%-32s %10.1f %9.1f %14.3f"
              % (LABELS[system], stats.throughput_qps / 1e3, watts, kqpj))

    leed = next(r for r in rows if r[0] == "leed")
    for system, _kqps, _watts, kqpj in rows:
        if system != "leed":
            print("LEED vs %-6s: %.1fx more queries per Joule"
                  % (system, leed[3] / kqpj))


if __name__ == "__main__":
    main()
