#!/usr/bin/env python3
"""Failure handling demo: crash a JBOF mid-workload and keep serving.

A thin wrapper over the production-scenario library
(:mod:`repro.scenarios`).  The episode — fail-stop crash, heartbeat
detection, COPY re-replication from surviving chain tails (§3.8), and
the eventual rejoin — is a declarative :class:`Scenario`; the
availability and lost-acked-write accounting come from the library's
shared :class:`WriteLedger` instead of demo-local bookkeeping.

Run:  python examples/failover_demo.py
"""

from repro.scenarios import Phase, Scenario, inject, run_scenario


def build() -> Scenario:
    """Crash JBOF 1 under write-heavy load, then bring it back."""
    return Scenario(
        name="failover_demo",
        description="Fail-stop crash, detection, re-replication, rejoin",
        workload="A",
        phases=(
            Phase("warm", 0.5),
            Phase("crash_and_recover", 1.5, injections=(
                inject(0.15, "crash", index=1),
                inject(0.70, "rejoin", index=1))),
            Phase("steady_state", 0.5),
        ))


def main():
    record = run_scenario(scenario=build())
    totals, invariants = record["totals"], record["invariants"]
    print("availability under churn: %.4f (p99 %.1f us)"
          % (totals["availability"], totals["p99_us"]))
    for event in record["recovery"]["failover"]:
        print("failover of %s: detected t=%.1f ms, re-replicated in %.1f ms"
              % (event["address"], event["detected_at_us"] / 1e3,
                 event["recovery_us"] / 1e3))
    print("lost acked writes: %d (checked %d acked keys)"
          % (invariants["lost_acked_writes"],
             invariants["acked_keys_checked"]))
    assert invariants["lost_acked_writes"] == 0, "data loss!"

    print("\nscenario timeline:")
    for note in record["events"]:
        detail = {k: v for k, v in note.items() if k not in ("t_us", "event")}
        print("  t=%8.1f ms  %-18s %s" % (note["t_us"] / 1e3, note["event"],
                                          detail or ""))
    print("final ring version: %d" % invariants["ring_version"])
    return record


if __name__ == "__main__":
    main()
