#!/usr/bin/env python3
"""Failure handling demo: crash a JBOF mid-workload and keep serving.

A 3-JBOF LEED cluster (R=2) loads data, then one JBOF fail-stops
while clients keep issuing requests.  The control plane detects the
missed heartbeats, removes the dead node's virtual nodes from the
ring, and re-replicates their ranges from the surviving chain tails
with the COPY primitive (§3.8).  The demo verifies every key remains
readable afterwards and prints the membership-event timeline.

Run:  python examples/failover_demo.py
"""

from repro import ClusterConfig, LeedCluster, LeedOptions, StoreConfig

NUM_KEYS = 120


def main():
    cluster = LeedCluster(ClusterConfig(
        num_jbofs=3, ssds_per_jbof=2, num_clients=1, replication=2,
        store=StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        options=LeedOptions(heartbeat_period_us=2_000.0),
        heartbeat_timeout_us=15_000.0,
    ))
    cluster.start()
    sim = cluster.sim
    client = cluster.clients[0]

    def load():
        for index in range(NUM_KEYS):
            result = yield from client.put(b"key-%04d" % index,
                                           b"value-%04d" % index)
            assert result.ok
        yield sim.timeout(2_000)

    sim.run(until=sim.process(load(), name="load"))
    print("loaded %d keys across %d virtual nodes"
          % (NUM_KEYS, len(cluster.control_plane.vnodes)))

    victim = cluster.jbofs[1]
    print("crashing %s (fail-stop: heartbeats cease, traffic drops)"
          % victim.address)
    victim.crash()

    def survive():
        # Keep reading during detection + recovery; some reads retry
        # while views are inconsistent, none may return wrong data.
        hiccups = 0
        for round_index in range(30):
            index = round_index % NUM_KEYS
            result = yield from client.get(b"key-%04d" % index)
            if result.status == "ok":
                assert result.value == b"value-%04d" % index
            else:
                hiccups += 1
            yield sim.timeout(10_000)
        return hiccups

    hiccups = sim.run(until=sim.process(survive(), name="survive"))
    print("served reads during recovery (%d transient hiccups)" % hiccups)

    def verify():
        missing = 0
        for index in range(NUM_KEYS):
            result = yield from client.get(b"key-%04d" % index)
            if result.status != "ok":
                missing += 1
        return missing

    missing = sim.run(until=sim.process(verify(), name="verify"))
    print("post-recovery sweep: %d/%d keys readable"
          % (NUM_KEYS - missing, NUM_KEYS))
    assert missing == 0, "data loss!"

    print("\nmembership events:")
    for when, kind, who in cluster.control_plane.membership_events:
        print("  t=%8.1f ms  %-10s %s" % (when / 1e3, kind, who))
    ring = cluster.control_plane.master_ring()
    print("final ring: %d vnodes (version %d)" % (len(ring), ring.version))


if __name__ == "__main__":
    main()
