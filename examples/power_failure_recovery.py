#!/usr/bin/env python3
"""Power-failure recovery: rebuild a LEED store from its flash logs.

A thin wrapper over the production-scenario library
(:mod:`repro.scenarios`).  A JBOF loses power mid-workload for less
than the heartbeat timeout, so the failure detector never fires: on
restore, the node rebuilds every SegTbl with one sequential key-log
scan (§3.2.3 "head/tail fields, used for recovery") and replays the
capacitor-backed WAL's outstanding intents through the live chain —
and the ledger proves no acknowledged write was lost.

Run:  python examples/power_failure_recovery.py
"""

from repro.scenarios import Phase, Scenario, inject, run_scenario

#: Must stay below the scenario scale's heartbeat timeout so the
#: outage exercises the *undetected* power-loss path (scan + WAL
#: replay), not failover re-replication.
OUTAGE_US = 6_000.0


def build() -> Scenario:
    return Scenario(
        name="power_failure_demo",
        description="Short power blackout: flash scan + WAL replay",
        workload="A",
        phases=(
            Phase("churn", 1.0),
            Phase("blackout", 1.0, injections=(
                inject(0.25, "power_blackout", index=2,
                       outage_us=OUTAGE_US),)),
            Phase("after", 0.5),
        ))


def main():
    record = run_scenario(scenario=build())
    for blackout in record["recovery"]["power"]:
        report = blackout["report"]
        wal = report.get("wal") or {}
        print("jbof%d lost power for %.0f us (below the %.0f us "
              "heartbeat timeout: no failover)"
              % (blackout["jbof"], blackout["outage_us"], 15_000.0))
        print("flash scan: %d blocks in %.1f ms -> %d objects restored"
              % (report["blocks_scanned"],
                 report["scan_duration_us"] / 1e3,
                 report["objects_recovered"]))
        print("WAL replay: %s intents pending, %s re-proposed, "
              "%s already durable"
              % (wal.get("pending", 0), wal.get("replayed", 0),
                 wal.get("skipped", 0)))
    invariants = record["invariants"]
    print("lost acked writes: %d (checked %d acked keys)"
          % (invariants["lost_acked_writes"],
             invariants["acked_keys_checked"]))
    assert invariants["lost_acked_writes"] == 0, "data loss!"
    print("availability through the outage: %.4f"
          % record["totals"]["availability"])
    return record


if __name__ == "__main__":
    main()
