#!/usr/bin/env python3
"""Power-failure recovery: rebuild a LEED store from its flash logs.

A SmartNIC JBOF has a standalone power supply; when it browns out,
the SegTbl (which lives in SoC DRAM) is gone, but the circular key
and value logs on the NVMe drives survive.  Each bucket carries a
key-log tail snapshot (§3.2.3 "head/tail fields, used for recovery"),
so a single sequential scan of the key-log region finds the newest
version of every segment and rebuilds the index.

This demo writes and churns a store, simulates the power failure by
constructing a brand-new store object over the same device, runs
recovery, and verifies the data — then keeps writing.

Run:  python examples/power_failure_recovery.py
"""

import random

from repro import StoreConfig, recover_store
from repro.core.datastore import LeedDataStore
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

CONFIG = StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                     value_log_bytes=4 << 20)


def main():
    sim = Simulator()
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=32 << 20, block_size=512),
                  rng=RngRegistry(1))
    store = LeedDataStore(sim, ssd, CONFIG, name="victim")
    rng = random.Random(2)
    shadow = {}

    def churn():
        for step in range(400):
            key = b"item-%03d" % rng.randrange(80)
            if rng.random() < 0.7:
                value = b"rev-%04d" % step
                result = yield from store.put(key, value)
                assert result.ok
                shadow[key] = value
            else:
                result = yield from store.delete(key)
                if result.ok:
                    del shadow[key]

    sim.run(until=sim.process(churn(), name="churn"))
    print("before crash: %d live objects, key log %.0f%% full"
          % (store.live_objects, 100 * store.key_log.fill_fraction()))

    # --- power failure: all DRAM state is lost -------------------------
    reborn = LeedDataStore(sim, ssd, CONFIG, name="reborn")
    assert reborn.live_objects == 0

    def recover():
        report = yield from recover_store(reborn)
        return report

    report = sim.run(until=sim.process(recover(), name="recover"))
    print("recovery: scanned %d blocks in %.1f ms -> %d segments, "
          "%d objects (%d stale versions skipped)"
          % (report.blocks_scanned, report.duration_us / 1e3,
             report.segments_recovered, report.live_objects,
             report.stale_versions_skipped))

    def verify():
        for key, value in shadow.items():
            got = yield from reborn.get(key)
            assert got.ok and got.value == value, key
        # And the store is immediately writable again.
        result = yield from reborn.put(b"post-crash", b"alive")
        assert result.ok
        return len(shadow)

    verified = sim.run(until=sim.process(verify(), name="verify"))
    print("verified %d surviving objects byte-for-byte; store is "
          "writable again" % verified)


if __name__ == "__main__":
    main()
