#!/usr/bin/env python3
"""Hot-key mitigation: CRRS request shipping + token-aware reads.

A skewed read workload (Zipf 0.99) hammers a few hot keys.  With
plain chain replication every read of a key lands on its chain tail;
with CRRS (§3.7) any *clean* replica may serve it and the front-end
picks the replica advertising the most tokens — spreading the hot
keys over 3x the hardware.  The demo runs both modes on identical
clusters and prints the throughput/latency gap plus how unevenly the
per-vnode read counts were distributed.

Run:  python examples/hot_key_mitigation.py
"""

import statistics

from repro.bench.harness import build_cluster, load_cluster, run_closed_loop
from repro.workloads.ycsb import YCSBWorkload

NUM_RECORDS = 600
NUM_OPS = 2000
SKEW = 0.99


def spread(counts):
    """Coefficient of variation of per-vnode read counts."""
    live = [c for c in counts if c]
    if len(live) < 2:
        return float("inf")
    return statistics.pstdev(counts) / max(statistics.mean(counts), 1e-9)


def main():
    print("YCSB-C, Zipf %.2f, %d reads over %d records\n"
          % (SKEW, NUM_OPS, NUM_RECORDS))
    print("%-22s %10s %10s %10s %12s" % ("mode", "KQPS", "avg us",
                                         "p99.9 us", "read spread"))
    for crrs in (False, True):
        workload = YCSBWorkload("C", NUM_RECORDS, value_size=1024,
                                skew=SKEW, seed=7)
        cluster = build_cluster("leed", crrs=crrs, seed=7)
        load_cluster(cluster, workload)
        stats = run_closed_loop(cluster, workload, NUM_OPS, concurrency=96)
        reads = [rt.stats.reads_served
                 for node in cluster.jbofs
                 for rt in node.vnodes.values()]
        label = "CRRS (ship + tokens)" if crrs else "plain chain (tail)"
        print("%-22s %10.1f %10.1f %10.1f %12.2f"
              % (label, stats.throughput_qps / 1e3,
                 stats.mean_latency_us(), stats.percentile_us(0.999),
                 spread(reads)))
    print("\nlower spread = hot keys' reads shared across replicas")


if __name__ == "__main__":
    main()
