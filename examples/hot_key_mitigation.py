#!/usr/bin/env python3
"""Hot-key mitigation: CRRS request shipping under a hot-key storm.

A thin wrapper over the production-scenario library
(:mod:`repro.scenarios`): the catalog's ``hot_key_storm`` — a
write-heavy workload whose Zipf skew deepens mid-run — runs twice on
identical clusters, once with plain chain replication (every dirty
read ships to the chain tail and stays there) and once with CRRS
(§3.7: any *clean* replica serves, token-aware selection spreads the
celebrity keys across the chain).

Run:  python examples/hot_key_mitigation.py
"""

from repro.scenarios import run_scenario


def main():
    print("hot_key_storm scenario, plain chain vs CRRS\n")
    print("%-22s %10s %10s %10s %8s" % ("mode", "storm KQPS", "p50 us",
                                        "p99 us", "avail"))
    records = {}
    for crrs in (False, True):
        record = run_scenario("hot_key_storm", crrs=crrs)
        assert record["invariants"]["lost_acked_writes"] == 0
        storm = next(p for p in record["phases"] if p["name"] == "storm")
        label = "CRRS (ship + tokens)" if crrs else "plain chain (tail)"
        print("%-22s %10.1f %10.1f %10.1f %8.4f"
              % (label, storm["throughput_qps"] / 1e3, storm["p50_us"],
                 storm["p99_us"], record["totals"]["availability"]))
        records[crrs] = record
    print("\nCRRS spreads a hot key's reads over every clean replica "
          "instead of its tail")
    return records


if __name__ == "__main__":
    main()
