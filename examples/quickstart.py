#!/usr/bin/env python3
"""Quickstart: a 3-JBOF LEED cluster serving GET/PUT/DEL.

Builds the paper's testbed topology — three Stingray PS1100R SmartNIC
JBOFs behind a 100 GbE ToR switch, replication factor 3 — loads a few
keys through the front-end library, and exercises reads, overwrites,
and deletes while printing latency and energy figures.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, LeedCluster, StoreConfig
from repro.telemetry import render, snapshot


def main():
    cluster = LeedCluster(ClusterConfig(
        num_jbofs=3,
        ssds_per_jbof=2,
        num_clients=1,
        replication=3,
        store=StoreConfig(num_segments=128,
                          key_log_bytes=2 << 20,
                          value_log_bytes=8 << 20),
    ))
    cluster.start()
    sim = cluster.sim
    client = cluster.clients[0]

    def application():
        # Write a handful of objects (each PUT traverses a 3-node
        # chain and is committed by the tail before the reply).
        for index in range(10):
            result = yield from client.put(b"user%04d" % index,
                                           b"profile-data-%04d" % index)
            assert result.ok, result.status
        print("wrote 10 objects, last PUT latency %.1f us"
              % result.latency_us)

        # Read them back — CRRS may serve each read from any clean
        # replica, chosen by available tokens.
        for index in range(10):
            result = yield from client.get(b"user%04d" % index)
            assert result.ok
            assert result.value == b"profile-data-%04d" % index
        print("read 10 objects, last GET latency %.1f us (served by %s)"
              % (result.latency_us, result.served_by))

        # Overwrite and delete.
        yield from client.put(b"user0000", b"updated")
        updated = yield from client.get(b"user0000")
        assert updated.value == b"updated"
        yield from client.delete(b"user0001")
        missing = yield from client.get(b"user0001")
        assert missing.status == "not_found"
        print("overwrite + delete verified")
        return client.stats

    process = sim.process(application(), name="quickstart")
    stats = sim.run(until=process)

    print()
    print("operations: %d ok, %d not_found, mean latency %.1f us, "
          "p99 %.1f us"
          % (stats.ok, stats.not_found, stats.mean_latency_us(),
             stats.percentile_latency_us(0.99)))
    report = cluster.energy_report("quickstart")
    print("cluster energy: %.3f J over %.1f ms (%.1f W mean)"
          % (report.energy_joules, report.elapsed_us / 1e3,
             report.mean_power_w))

    print()
    print("telemetry:")
    print(render(snapshot(cluster)))


if __name__ == "__main__":
    main()
