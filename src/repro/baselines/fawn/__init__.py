"""FAWN-KV: log-structured store over wimpy nodes (Andersen et al.)."""

from repro.baselines.fawn.datastore import (
    FAWN_INDEX_BYTES_PER_OBJECT,
    FawnConfig,
    FawnDataStore,
    FawnStats,
)

__all__ = ["FawnDataStore", "FawnConfig", "FawnStats",
           "FAWN_INDEX_BYTES_PER_OBJECT"]
