"""The FAWN-KV data store (Andersen et al., SOSP '09), reimplemented.

FAWN's back-end store is log-structured: a single on-flash data log
holds ``(key, value)`` records appended in write order, and an
in-DRAM hash index maps each key to its log offset.  The index costs
**6 bytes per object** (15-bit key fragment, valid bit, 4-byte log
pointer) — cheap on a FAWN node with 1 GB DRAM and 16 GB of flash,
but ruinous on a SmartNIC JBOF where flash is 1024x DRAM (Table 3's
7.7 % / 24.1 % usable-capacity rows).

Command costs: GET = 1 device read, PUT = 1 device write, DEL = 1
device write (tombstone) — half of LEED's, which is why FAWN-JBOF has
the best single-access latency in Table 3.

Log cleaning is the classic single-threaded semispace sweep — the
process §4.2 observes LEED's parallel sub-compactions beating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.analysis import FAWN_INDEX_BYTES_PER_OBJECT
from repro.core.circular_log import CircularLog, LogFullError, LogRangeError
from repro.core.datastore import NOT_FOUND, OK, STORE_FULL, OpResult
from repro.core.segment import (
    pack_value_entry,
    unpack_value_entry,
    value_entry_size,
)
from repro.hw.cpu import CYCLE_COSTS, Core
from repro.hw.dram import Dram, OutOfMemoryError
from repro.hw.ssd import NVMeSSD
from repro.sim.core import Simulator
from repro.sim.resources import Resource


@dataclass
class FawnConfig:
    """Geometry and policy for one FAWN datastore partition."""

    log_bytes: int = 32 << 20
    compact_high_watermark: float = 0.80
    compact_low_watermark: float = 0.60
    #: DRAM the index may use; None = take what the node grants.
    index_budget_bytes: Optional[int] = None
    #: FAWN-DS performs *synchronous* I/O: one outstanding device
    #: operation per datastore (the original implementation blocks in
    #: read()/write()).  This is what caps FAWN-JBOF at ~60-90 KQPS
    #: per node in Table 3 despite the NVMe drives' parallelism.
    synchronous_io: bool = True


@dataclass
class FawnStats:
    """Cumulative statistics."""

    gets: int = 0
    puts: int = 0
    dels: int = 0
    hits: int = 0
    misses: int = 0
    cleanings: int = 0
    bytes_reclaimed: int = 0
    ssd_time_us: float = 0.0
    cpu_time_us: float = 0.0
    op_latency_us: Dict[str, float] = field(default_factory=lambda: {
        "get": 0.0, "put": 0.0, "del": 0.0})


class FawnDataStore:
    """One FAWN-KV back-end partition."""

    def __init__(self, sim: Simulator, ssd: NVMeSSD, config: FawnConfig,
                 region_offset: int = 0, dram: Optional[Dram] = None,
                 core: Optional[Core] = None, name: str = "fawn",
                 store_id: int = 0):
        self.sim = sim
        self.ssd = ssd
        self.config = config
        self.name = name
        self.store_id = store_id
        self.core = core
        self.dram = dram
        self.log = CircularLog(ssd, region_offset, config.log_bytes,
                               name=name + ".log")
        #: In-memory hash index: key -> (virtual offset, entry size).
        #: Functionally a dict; its modeled cost is 6 B per object,
        #: reserved from node DRAM.
        self.index: Dict[bytes, Tuple[int, int]] = {}
        self.stats = FawnStats()
        self.live_objects = 0
        self._dram_label = name + ".index"
        self._cleaning = False
        self._serial = Resource(sim, 1, name + ".sync") \
            if config.synchronous_io else None
        if config.index_budget_bytes is not None:
            self.max_objects: Optional[int] = (
                config.index_budget_bytes // FAWN_INDEX_BYTES_PER_OBJECT)
        elif dram is not None:
            self.max_objects = None  # limited by Dram reservations
        else:
            self.max_objects = None

    # -- helpers ----------------------------------------------------------------------

    def _charge_cpu(self, cycles: int):
        if self.core is not None:
            yield from self.core.execute(cycles)
        else:
            yield self.sim.timeout(cycles / 3.0e3)

    def _reserve_index_slot(self) -> bool:
        """Account one more object in DRAM; False when out of memory."""
        if self.max_objects is not None and len(self.index) >= self.max_objects:
            return False
        if self.dram is not None:
            try:
                self.dram.reserve(self._dram_label,
                                  FAWN_INDEX_BYTES_PER_OBJECT)
            except OutOfMemoryError:
                return False
        return True

    def _release_index_slot(self) -> None:
        if self.dram is not None:
            current = self.dram.reservation(self._dram_label)
            self.dram.resize(self._dram_label,
                             max(current - FAWN_INDEX_BYTES_PER_OBJECT, 0))

    def index_footprint_bytes(self) -> int:
        """Modeled DRAM used by the hash index."""
        return len(self.index) * FAWN_INDEX_BYTES_PER_OBJECT

    # -- commands ----------------------------------------------------------------------

    def get(self, key: bytes):
        """Generator: GET — one device read (synchronous by default)."""
        if self._serial is not None:
            yield self._serial.acquire()
        try:
            result = yield from self._get(key)
        finally:
            if self._serial is not None:
                self._serial.release()
        return result

    def _get(self, key: bytes):
        start = self.sim.now
        self.stats.gets += 1
        t0 = self.sim.now
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"])
        cpu_us = self.sim.now - t0
        entry = self.index.get(key)
        result: OpResult
        ssd_us = 0.0
        if entry is None:
            self.stats.misses += 1
            result = OpResult(NOT_FOUND)
        else:
            offset, size = entry
            t0 = self.sim.now
            try:
                blob = yield from self.log.read(offset, size)
            except LogRangeError:
                blob = None
            ssd_us = self.sim.now - t0
            if blob is None:
                self.stats.misses += 1
                result = OpResult(NOT_FOUND)
            else:
                _sid, stored_key, value, _sz, _own = unpack_value_entry(blob)
                if stored_key != key:
                    self.stats.misses += 1
                    result = OpResult(NOT_FOUND)
                else:
                    self.stats.hits += 1
                    result = OpResult(OK, value=value)
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = 1 if entry is not None else 0
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["get"] += result.total_us
        return result

    def put(self, key: bytes, value: bytes):
        """Generator: PUT — one device write (synchronous by default)."""
        if self._serial is not None:
            yield self._serial.acquire()
        try:
            result = yield from self._put(key, value)
        finally:
            if self._serial is not None:
                self._serial.release()
        return result

    def _put(self, key: bytes, value: bytes):
        if not value:
            raise ValueError("empty values are reserved as tombstones")
        start = self.sim.now
        self.stats.puts += 1
        t0 = self.sim.now
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"]
                                    + CYCLE_COSTS["log_append_bookkeeping"])
        cpu_us = self.sim.now - t0
        existing = self.index.get(key)
        if existing is None and not self._reserve_index_slot():
            result = OpResult(STORE_FULL)
            result.total_us = self.sim.now - start
            result.cpu_us = result.total_us
            self.stats.op_latency_us["put"] += result.total_us
            return result
        entry = pack_value_entry(0, key, value, owner_id=self.store_id)
        t0 = self.sim.now
        try:
            offset = yield from self.log.append_bytes(entry)
        except LogFullError:
            if existing is None:
                self._release_index_slot()
            result = OpResult(STORE_FULL)
            result.total_us = self.sim.now - start
            self.stats.op_latency_us["put"] += result.total_us
            return result
        ssd_us = self.sim.now - t0
        self.index[key] = (offset, len(entry))
        if existing is None:
            self.live_objects += 1
        result = OpResult(OK)
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = 1
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["put"] += result.total_us
        return result

    def delete(self, key: bytes):
        """Generator: DEL — tombstone append (synchronous by default)."""
        if self._serial is not None:
            yield self._serial.acquire()
        try:
            result = yield from self._delete(key)
        finally:
            if self._serial is not None:
                self._serial.release()
        return result

    def _delete(self, key: bytes):
        start = self.sim.now
        self.stats.dels += 1
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"])
        if key not in self.index:
            result = OpResult(NOT_FOUND)
            result.total_us = self.sim.now - start
            result.cpu_us = result.total_us
            self.stats.op_latency_us["del"] += result.total_us
            return result
        tombstone = pack_value_entry(0, key, b"", owner_id=self.store_id)
        t0 = self.sim.now
        try:
            yield from self.log.append_bytes(tombstone)
        except LogFullError:
            result = OpResult(STORE_FULL)
            result.total_us = self.sim.now - start
            self.stats.op_latency_us["del"] += result.total_us
            return result
        ssd_us = self.sim.now - t0
        del self.index[key]
        self._release_index_slot()
        self.live_objects -= 1
        result = OpResult(OK)
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = 1
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["del"] += result.total_us
        return result

    # -- scan (COPY substrate) -----------------------------------------------------------

    def scan(self, predicate=None, batch_size: int = 32, visit=None):
        """Generator: iterate live pairs with real device reads."""
        collected = []
        batch = []
        for key, (offset, size) in list(self.index.items()):
            if predicate is not None and not predicate(key):
                continue
            try:
                blob = yield from self.log.read(offset, size)
            except LogRangeError:
                continue
            _sid, stored_key, value, _sz, _own = unpack_value_entry(blob)
            if stored_key != key or not value:
                continue
            batch.append((stored_key, value))
            if visit is not None and len(batch) >= batch_size:
                yield from visit(batch)
                batch = []
        if visit is not None:
            if batch:
                yield from visit(batch)
            return None
        collected.extend(batch)
        return collected

    # -- log cleaning --------------------------------------------------------------------

    def needs_key_compaction(self) -> bool:
        return self.log.fill_fraction() >= self.config.compact_high_watermark

    def needs_value_compaction(self) -> bool:
        return False

    def maintenance(self):
        """Generator: clean the log when the watermark demands it."""
        if not self.needs_key_compaction() or self._cleaning:
            return 0
        reclaimed = yield from self.clean()
        return reclaimed

    def clean(self, target_fill: Optional[float] = None):
        """Generator: one single-threaded cleaning pass.

        Reads entries sequentially from the head; entries the index
        still points at are re-appended (and the index repointed);
        everything else is dropped.
        """
        if self._cleaning:
            return 0
        self._cleaning = True
        target = (self.config.compact_low_watermark
                  if target_fill is None else target_fill)
        start_head = self.log.head
        try:
            scan = self.log.head
            end_tail = self.log.tail
            header = value_entry_size(0, 0)
            while self.log.fill_fraction() > target and scan < end_tail:
                chunk_len = min(end_tail - scan, 64 * 1024)
                blob = yield from self.log.read(scan, chunk_len)
                cursor = 0
                while cursor + header <= len(blob):
                    try:
                        _sid, key, value, size, _own = unpack_value_entry(
                            blob, cursor)
                    except Exception:
                        break
                    if size <= header or cursor + size > len(blob):
                        break
                    entry_offset = scan + cursor
                    live = self.index.get(key) == (entry_offset, size)
                    if live:
                        yield from self._charge_cpu(
                            CYCLE_COSTS["compaction_per_entry"])
                        new_offset = yield from self.log.append_bytes(
                            blob[cursor:cursor + size])
                        self.index[key] = (new_offset, size)
                    cursor += size
                if cursor == 0:
                    scan = min(scan + self.log.block_size, end_tail)
                else:
                    scan += cursor
                self.log.advance_head(min(scan, self.log.tail))
            self.stats.cleanings += 1
            self.stats.bytes_reclaimed += self.log.head - start_head
            return self.log.head - start_head
        finally:
            self._cleaning = False

    def __repr__(self):
        return "<FawnDataStore %s live=%d log=%.0f%%>" % (
            self.name, self.live_objects, 100 * self.log.fill_fraction())
