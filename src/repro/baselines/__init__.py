"""Baseline systems reimplemented for comparison: FAWN-KV and KVell."""

from repro.baselines.common import (
    FawnJBOFNode,
    KVellJBOFNode,
    SYSTEMS,
    make_cluster,
)
from repro.baselines.fawn.datastore import FawnConfig, FawnDataStore
from repro.baselines.kvell.btree import BTree
from repro.baselines.kvell.datastore import KVellConfig, KVellDataStore
from repro.baselines.lsm.bloom import BloomFilter
from repro.baselines.lsm.datastore import LsmConfig, LsmDataStore

__all__ = [
    "make_cluster",
    "SYSTEMS",
    "FawnJBOFNode",
    "KVellJBOFNode",
    "FawnDataStore",
    "FawnConfig",
    "KVellDataStore",
    "KVellConfig",
    "BTree",
    "LsmDataStore",
    "LsmConfig",
    "BloomFilter",
]
