"""The KVell data store (Lepers et al., SOSP '19), reimplemented.

KVell's design points, reproduced here:

* **share-nothing**: each worker owns a disjoint partition — in this
  simulation each :class:`KVellDataStore` instance is one worker, and
  the node hosts several;
* **in-memory sorted B-tree index** mapping keys to disk slots —
  computation-heavy on a wimpy core (charged per node visit);
* **no on-disk ordering, in-place updates**: values live in fixed
  size *slab* slots; an update overwrites its slot, so there is no
  compaction/GC at all;
* **free lists** for slot recycling and a small **page cache**.

Command costs: GET = 1 slot read (0 on a page-cache hit), PUT = 1
slot write, DEL = free-list push (metadata-only flush).

DRAM footprint per object is dominated by the B-tree entry plus its
share of page cache and free lists — tens of bytes per object, which
is why KVell-JBOF can only index 0.9 %/2.6 % of the flash in Table 3.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.baselines.kvell.btree import BTree
from repro.core.analysis import KVELL_DRAM_BYTES_PER_OBJECT
from repro.core.datastore import NOT_FOUND, OK, STORE_FULL, OpResult
from repro.hw.cpu import CYCLE_COSTS, Core
from repro.hw.dram import Dram, OutOfMemoryError
from repro.hw.ssd import NVMeSSD
from repro.sim.core import Simulator

#: Fixed page-cache reservation per store (KVell keeps a page cache
#: regardless of object count).
PAGE_CACHE_BYTES = 4 << 20


@dataclass
class KVellConfig:
    """Geometry for one KVell worker partition."""

    #: Slab region size on the device.
    slab_bytes: int = 32 << 20
    #: Slot size; objects must fit (KVell rounds to its slab class).
    slot_bytes: int = 1024
    #: Page-cache entries (slots cached in DRAM).  At the paper's
    #: 1.6 B-object scale the cache covers a negligible key fraction;
    #: the small default models that.
    page_cache_slots: int = 64
    #: KVell batches device submissions into windows to amortize
    #: syscalls; an I/O waits for the next flush boundary.  This buys
    #: throughput on beefy servers at a latency cost — the reason
    #: KVell's latencies are the worst of Table 3.
    batch_window_us: float = 400.0
    #: DRAM budget for the index; None = take what the node grants.
    index_budget_bytes: Optional[int] = None
    #: When set, CPU is charged for the B-tree depth of an index of
    #: this many objects (full-deployment scale) even though the
    #: simulated store is smaller — keeps the compute cost honest for
    #: Table 3-style comparisons.
    modeled_index_objects: Optional[int] = None


@dataclass
class KVellStats:
    """Cumulative statistics."""

    gets: int = 0
    puts: int = 0
    dels: int = 0
    hits: int = 0
    misses: int = 0
    cache_hits: int = 0
    btree_nodes_visited: int = 0
    ssd_time_us: float = 0.0
    cpu_time_us: float = 0.0
    op_latency_us: Dict[str, float] = field(default_factory=lambda: {
        "get": 0.0, "put": 0.0, "del": 0.0})


class KVellDataStore:
    """One KVell worker: B-tree index + slab file + free list."""

    def __init__(self, sim: Simulator, ssd: NVMeSSD, config: KVellConfig,
                 region_offset: int = 0, dram: Optional[Dram] = None,
                 core: Optional[Core] = None, name: str = "kvell",
                 store_id: int = 0):
        self.sim = sim
        self.ssd = ssd
        self.config = config
        self.name = name
        self.store_id = store_id
        self.core = core
        self.dram = dram
        self.region_offset = region_offset
        # KVell performs page-granular I/O: a slot occupies whole device
        # blocks (a 1 KB object still costs one 4 KB page on disk).
        block = ssd.block_size
        self.io_slot_bytes = ((config.slot_bytes + block - 1) // block) * block
        self.num_slots = config.slab_bytes // self.io_slot_bytes
        self.index = BTree(min_degree=32)
        self.free_list: Deque[int] = deque()
        self.next_fresh_slot = 0
        #: LRU page cache: slot -> value bytes.
        self.page_cache: "OrderedDict[int, bytes]" = OrderedDict()
        self.stats = KVellStats()
        self.live_objects = 0
        self._dram_label = name + ".index"
        if dram is not None:
            dram.reserve(name + ".pagecache", PAGE_CACHE_BYTES)
        if config.index_budget_bytes is not None:
            self.max_objects: Optional[int] = (
                config.index_budget_bytes // KVELL_DRAM_BYTES_PER_OBJECT)
        else:
            self.max_objects = None
        self._next_flush_us = 0.0
        self._modeled_visits = 0
        if config.modeled_index_objects:
            import math
            fanout = 2 * self.index.t - 1
            self._modeled_visits = max(
                int(math.ceil(math.log(config.modeled_index_objects,
                                       fanout))), 1)

    # -- helpers ---------------------------------------------------------------------

    def _charge_cpu(self, cycles: int):
        if self.core is not None:
            yield from self.core.execute(cycles)
        else:
            yield self.sim.timeout(cycles / 3.0e3)

    def _charge_btree(self, visited: int):
        visited = max(visited, self._modeled_visits)
        self.stats.btree_nodes_visited += visited
        yield from self._charge_cpu(CYCLE_COSTS["btree_node_visit"] * visited)

    def _batch_wait(self):
        """Generator: wait for the next submission-flush boundary."""
        window = self.config.batch_window_us
        if window <= 0:
            return
        now = self.sim.now
        if now >= self._next_flush_us:
            boundary = (int(now / window) + 1) * window
            self._next_flush_us = boundary
        yield self.sim.timeout(self._next_flush_us - now)

    def _slot_offset(self, slot: int) -> int:
        return self.region_offset + slot * self.io_slot_bytes

    def _allocate_slot(self) -> Optional[int]:
        if self.free_list:
            return self.free_list.popleft()
        if self.next_fresh_slot >= self.num_slots:
            return None
        slot = self.next_fresh_slot
        self.next_fresh_slot += 1
        return slot

    def _reserve_index_slot(self) -> bool:
        if self.max_objects is not None and self.live_objects >= self.max_objects:
            return False
        if self.dram is not None:
            try:
                self.dram.reserve(self._dram_label,
                                  KVELL_DRAM_BYTES_PER_OBJECT)
            except OutOfMemoryError:
                return False
        return True

    def _release_index_slot(self) -> None:
        if self.dram is not None:
            current = self.dram.reservation(self._dram_label)
            self.dram.resize(self._dram_label,
                             max(current - KVELL_DRAM_BYTES_PER_OBJECT, 0))

    def _cache_put(self, slot: int, payload: bytes) -> None:
        cache = self.page_cache
        cache[slot] = payload
        cache.move_to_end(slot)
        while len(cache) > self.config.page_cache_slots:
            cache.popitem(last=False)

    @staticmethod
    def _frame(key: bytes, value: bytes) -> bytes:
        """Slot layout: klen u16 | vlen u16 | key | value."""
        return (len(key).to_bytes(2, "little")
                + len(value).to_bytes(2, "little") + key + value)

    @staticmethod
    def _unframe(payload: bytes):
        klen = int.from_bytes(payload[0:2], "little")
        vlen = int.from_bytes(payload[2:4], "little")
        key = payload[4:4 + klen]
        value = payload[4 + klen:4 + klen + vlen]
        return key, value

    # -- commands -----------------------------------------------------------------------

    def get(self, key: bytes):
        """Generator: GET — B-tree descent + one slot read."""
        start = self.sim.now
        self.stats.gets += 1
        slot, visited = self.index.search(key)
        t0 = self.sim.now
        yield from self._charge_btree(visited)
        cpu_us = self.sim.now - t0
        ssd_us = 0.0
        accesses = 0
        if not isinstance(slot, int):
            self.stats.misses += 1
            result = OpResult(NOT_FOUND)
        else:
            cached = self.page_cache.get(slot)
            if cached is not None:
                self.stats.cache_hits += 1
                self.page_cache.move_to_end(slot)
                _key, value = self._unframe(cached)
                self.stats.hits += 1
                result = OpResult(OK, value=value)
            else:
                t0 = self.sim.now
                yield from self._batch_wait()
                payload = yield from self.ssd.read(self._slot_offset(slot),
                                                   self.io_slot_bytes)
                ssd_us = self.sim.now - t0
                accesses = 1
                stored_key, value = self._unframe(payload)
                if stored_key != key:
                    self.stats.misses += 1
                    result = OpResult(NOT_FOUND)
                else:
                    self._cache_put(slot, payload[:4 + len(key) + len(value)])
                    self.stats.hits += 1
                    result = OpResult(OK, value=value)
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = accesses
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["get"] += result.total_us
        return result

    def put(self, key: bytes, value: bytes):
        """Generator: PUT — B-tree upsert + one in-place slot write."""
        frame = self._frame(key, value)
        if len(frame) > self.config.slot_bytes:
            raise ValueError("object of %d bytes exceeds slot size %d"
                             % (len(frame), self.config.slot_bytes))
        start = self.sim.now
        self.stats.puts += 1
        slot, visited = self.index.search(key)
        yield from self._charge_btree(visited)
        is_new = not isinstance(slot, int)
        if is_new:
            if not self._reserve_index_slot():
                result = OpResult(STORE_FULL)
                result.total_us = self.sim.now - start
                result.cpu_us = result.total_us
                self.stats.op_latency_us["put"] += result.total_us
                return result
            slot = self._allocate_slot()
            if slot is None:
                self._release_index_slot()
                result = OpResult(STORE_FULL)
                result.total_us = self.sim.now - start
                result.cpu_us = result.total_us
                self.stats.op_latency_us["put"] += result.total_us
                return result
            _new, insert_visits = self.index.insert(key, slot)
            yield from self._charge_btree(insert_visits)
            self.live_objects += 1
        yield from self._charge_cpu(CYCLE_COSTS["kvell_commit"])
        t0 = self.sim.now
        yield from self._batch_wait()
        padded = frame + b"\x00" * (self.io_slot_bytes - len(frame))
        yield from self.ssd.write(self._slot_offset(slot), padded)
        ssd_us = self.sim.now - t0
        self._cache_put(slot, frame)
        result = OpResult(OK)
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = 1
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["put"] += result.total_us
        return result

    def delete(self, key: bytes):
        """Generator: DEL — B-tree tombstone + slot recycled to the
        free list (metadata-only; no data write needed)."""
        start = self.sim.now
        self.stats.dels += 1
        slot, visited = self.index.search(key)
        yield from self._charge_btree(visited)
        if not isinstance(slot, int):
            result = OpResult(NOT_FOUND)
        else:
            was_present, delete_visits = self.index.delete(key)
            yield from self._charge_btree(delete_visits)
            self.free_list.append(slot)
            self.page_cache.pop(slot, None)
            self._release_index_slot()
            self.live_objects -= 1
            result = OpResult(OK)
        result.total_us = self.sim.now - start
        result.cpu_us = result.total_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["del"] += result.total_us
        return result

    # -- scan (COPY substrate) & maintenance --------------------------------------------------

    def scan(self, predicate=None, batch_size: int = 32, visit=None):
        """Generator: iterate live pairs via slot reads."""
        collected = []
        batch = []
        for key, slot in list(self.index.items()):
            if predicate is not None and not predicate(key):
                continue
            if not isinstance(slot, int):
                continue
            payload = yield from self.ssd.read(self._slot_offset(slot),
                                               self.io_slot_bytes)
            stored_key, value = self._unframe(payload)
            if stored_key != key:
                continue
            batch.append((stored_key, value))
            if visit is not None and len(batch) >= batch_size:
                yield from visit(batch)
                batch = []
        if visit is not None:
            if batch:
                yield from visit(batch)
            return None
        collected.extend(batch)
        return collected

    def needs_key_compaction(self) -> bool:
        return False  # in-place updates: KVell never compacts

    def needs_value_compaction(self) -> bool:
        return False

    def maintenance(self):
        """Generator: no-op (kept for engine/runtime symmetry)."""
        return 0
        yield  # pragma: no cover

    def __repr__(self):
        return "<KVellDataStore %s live=%d slots=%d/%d>" % (
            self.name, self.live_objects,
            self.next_fresh_slot - len(self.free_list), self.num_slots)
