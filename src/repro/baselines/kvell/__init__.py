"""KVell: share-nothing NVMe key-value store (Lepers et al.)."""

from repro.baselines.kvell.btree import BTree
from repro.baselines.kvell.datastore import (
    KVELL_DRAM_BYTES_PER_OBJECT,
    KVellConfig,
    KVellDataStore,
    KVellStats,
)

__all__ = ["KVellDataStore", "KVellConfig", "KVellStats", "BTree",
           "KVELL_DRAM_BYTES_PER_OBJECT"]
