"""An in-memory B-tree, built from scratch for the KVell baseline.

KVell (SOSP '19) keeps a sorted in-memory B-tree index from keys to
on-disk slot locations.  The tree here is a textbook B-tree of order
``2t`` with iterative search and standard split-on-insert; deletion
uses lazy tombstoning plus periodic rebuild (KVell itself never needs
sorted deletion performance — scans are rare).

``search``/``insert`` return the number of nodes visited so the
caller can charge CPU time per node — the "computation-heavy" B-tree
descent that limits KVell on wimpy SmartNIC cores (Table 3).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class _Node:
    """One B-tree node."""

    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool = True):
        self.keys: List[bytes] = []
        self.values: List[Any] = []
        self.children: List["_Node"] = [] if leaf else []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTree:
    """A B-tree mapping byte-string keys to arbitrary values."""

    def __init__(self, min_degree: int = 32):
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self.t = min_degree
        self.root = _Node(leaf=True)
        self.size = 0
        self.height = 1

    # -- search -----------------------------------------------------------------------

    def search(self, key: bytes) -> Tuple[Optional[Any], int]:
        """(value or None, nodes_visited)."""
        node = self.root
        visited = 0
        while True:
            visited += 1
            index = self._lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index], visited
            if node.leaf:
                return None, visited
            node = node.children[index]

    @staticmethod
    def _lower_bound(keys: List[bytes], key: bytes) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- insert ------------------------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> Tuple[bool, int]:
        """Insert or overwrite; returns (is_new_key, nodes_visited)."""
        visited = 0
        root = self.root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self.root = new_root
            self.height += 1
        node = self.root
        while True:
            visited += 1
            index = self._lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return False, visited
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                self.size += 1
                return True, visited
            child = node.children[index]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, index)
                if key > node.keys[index]:
                    index += 1
                elif key == node.keys[index]:
                    node.values[index] = value
                    return False, visited
            node = node.children[index]

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        mid_key = child.keys[t - 1]
        mid_value = child.values[t - 1]
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[:t - 1]
        child.values = child.values[:t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, mid_key)
        parent.values.insert(index, mid_value)
        parent.children.insert(index + 1, sibling)

    # -- delete (tombstone + rebuild) -------------------------------------------------------

    def delete(self, key: bytes) -> Tuple[bool, int]:
        """Remove a key by overwriting with a tombstone sentinel.

        Returns (was_present, nodes_visited).  Space is reclaimed by
        :meth:`rebuild`, which KVell-style stores run rarely.
        """
        node = self.root
        visited = 0
        while True:
            visited += 1
            index = self._lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if node.values[index] is _TOMBSTONE:
                    return False, visited
                node.values[index] = _TOMBSTONE
                self.size -= 1
                return True, visited
            if node.leaf:
                return False, visited
            node = node.children[index]

    def rebuild(self) -> None:
        """Compact away tombstones by bulk-reloading live entries."""
        pairs = [(k, v) for k, v in self.items()]
        self.root = _Node(leaf=True)
        self.size = 0
        self.height = 1
        for key, value in pairs:
            self.insert(key, value)

    # -- iteration ----------------------------------------------------------------------------

    def items(self):
        """Yield live (key, value) pairs in sorted order."""
        yield from self._walk(self.root)

    def _walk(self, node: _Node):
        if node.leaf:
            for key, value in zip(node.keys, node.values):
                if value is not _TOMBSTONE:
                    yield key, value
            return
        for index, child in enumerate(node.children):
            yield from self._walk(child)
            if index < len(node.keys) and node.values[index] is not _TOMBSTONE:
                yield node.keys[index], node.values[index]

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: bytes) -> bool:
        value, _ = self.search(key)
        return value is not None and value is not _TOMBSTONE

    def get(self, key: bytes, default: Any = None) -> Any:
        value, _ = self.search(key)
        if value is None or value is _TOMBSTONE:
            return default
        return value

    def __repr__(self):
        return "<BTree size=%d height=%d t=%d>" % (self.size, self.height,
                                                   self.t)


class _Tombstone:
    __slots__ = ()

    def __repr__(self):
        return "<tombstone>"


_TOMBSTONE = _Tombstone()
