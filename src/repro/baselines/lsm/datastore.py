"""A leveled LSM-tree store (LevelDB/RocksDB-style), reimplemented.

The design LEED's circular log argues against (§3.2.1): writes land
in a WAL (1 device write) plus an in-memory memtable; a full memtable
flushes to a sorted L0 run; levels compact by **merge-sorting** runs
into the next level — the CPU-hungry sorting phase, charged per
record merged, plus the write amplification of rewriting every level.

Reads check memtable → L0 runs (newest first) → one run per deeper
level, with Bloom filters skipping most tables.

Space is managed as a bump allocator over the store's device region;
compaction garbage is reclaimed by recycling table extents (kept in
a free list of fixed-size slabs for simplicity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.lsm.sstable import DELETED, SSTable, write_sstable
from repro.core.datastore import NOT_FOUND, OK, STORE_FULL, OpResult
from repro.hw.cpu import CYCLE_COSTS, Core
from repro.hw.dram import Dram, OutOfMemoryError
from repro.hw.ssd import NVMeSSD
from repro.sim.core import Simulator

#: CPU cycles to merge one record during compaction (compare + copy +
#: iterator advance) — the "sorting phase" cost of §3.2.1.
MERGE_CYCLES_PER_RECORD = 500

#: CPU cycles to insert into / look up the sorted memtable.
MEMTABLE_OP_CYCLES = 800


@dataclass
class LsmConfig:
    """Geometry for one LSM store."""

    region_bytes: int = 32 << 20
    block_size_hint: Optional[int] = None     # defaults to device block
    #: Memtable flush threshold, bytes of raw records.
    memtable_bytes: int = 256 << 10
    #: L0 runs allowed before compaction into L1.
    l0_limit: int = 4
    #: Per-level size ratio (level i holds ratio^i x L1 budget).
    level_ratio: int = 4
    #: L1 size budget in bytes.
    l1_bytes: int = 1 << 20
    #: Number of levels past L0.
    max_levels: int = 4
    bits_per_key: int = 10


@dataclass
class LsmStats:
    """Cumulative statistics."""

    gets: int = 0
    puts: int = 0
    dels: int = 0
    hits: int = 0
    misses: int = 0
    memtable_hits: int = 0
    flushes: int = 0
    compactions: int = 0
    records_merged: int = 0
    tables_probed: int = 0
    bloom_skips: int = 0
    user_bytes_written: int = 0
    device_bytes_written: int = 0
    ssd_time_us: float = 0.0
    cpu_time_us: float = 0.0
    op_latency_us: Dict[str, float] = field(default_factory=lambda: {
        "get": 0.0, "put": 0.0, "del": 0.0})

    def write_amplification(self) -> float:
        if not self.user_bytes_written:
            return 0.0
        return self.device_bytes_written / self.user_bytes_written


class LsmDataStore:
    """A leveled LSM-tree key-value store on one device region."""

    def __init__(self, sim: Simulator, ssd: NVMeSSD, config: LsmConfig,
                 region_offset: int = 0, dram: Optional[Dram] = None,
                 core: Optional[Core] = None, name: str = "lsm",
                 store_id: int = 0):
        self.sim = sim
        self.ssd = ssd
        self.config = config
        self.name = name
        self.store_id = store_id
        self.core = core
        self.dram = dram
        self.block_size = config.block_size_hint or ssd.block_size
        self.region_offset = region_offset
        # Extent allocator: fixed-size slabs big enough for the largest
        # single table we expect (one level's budget).
        self._next_extent = region_offset
        self._region_end = region_offset + config.region_bytes
        self._free_extents: Dict[int, List[int]] = {}
        #: In-memory write buffer: key -> value (None == tombstone).
        self.memtable: Dict[bytes, Optional[bytes]] = {}
        self.memtable_bytes = 0
        #: WAL tail (sequential appends within a dedicated extent).
        self._wal_base = self._allocate(config.memtable_bytes * 2)
        self._wal_cursor = 0
        #: levels[0] = list of L0 runs (newest first); levels[i>0] =
        #: one sorted run per level (merged).
        self.levels: List[List[SSTable]] = [[] for _ in
                                            range(config.max_levels + 1)]
        self._table_ids = 0
        #: table_id -> allocated extent size (for exact recycling).
        self._extent_sizes: Dict[int, int] = {}
        self.stats = LsmStats()
        #: Rough live-object estimate (exact tracking would need a read
        #: per write once the memtable has flushed; scans give truth).
        self.live_objects = 0
        self._flushing = False

    # -- helpers -----------------------------------------------------------------

    def _charge_cpu(self, cycles: int):
        if self.core is not None:
            yield from self.core.execute(cycles)
        else:
            yield self.sim.timeout(cycles / 3.0e3)

    def _allocate(self, nbytes: int) -> int:
        """Claim a block-aligned extent; raises when the region is full."""
        nbytes = -(-nbytes // self.block_size) * self.block_size
        bucket = self._free_extents.get(nbytes)
        if bucket:
            return bucket.pop()
        if self._next_extent + nbytes > self._region_end:
            raise MemoryError("LSM region exhausted")
        extent = self._next_extent
        self._next_extent += nbytes
        return extent

    def _release(self, offset: int, nbytes: int) -> None:
        nbytes = -(-nbytes // self.block_size) * self.block_size
        self._free_extents.setdefault(nbytes, []).append(offset)

    def _level_budget(self, level: int) -> int:
        return self.config.l1_bytes * (self.config.level_ratio
                                       ** max(level - 1, 0))

    def _account_index(self) -> None:
        if self.dram is None:
            return
        total = sum(t.index_bytes for level in self.levels for t in level)
        total += self.memtable_bytes
        self.dram.resize(self.name + ".index", total)

    # -- commands ---------------------------------------------------------------------

    def put(self, key: bytes, value: bytes):
        """Generator: WAL append + memtable insert; maybe flush."""
        if not value:
            raise ValueError("empty values are reserved as tombstones")
        return (yield from self._write(key, value, "put"))

    def delete(self, key: bytes):
        """Generator: tombstone write."""
        return (yield from self._write(key, None, "del"))

    def _write(self, key: bytes, value: Optional[bytes], op: str):
        start = self.sim.now
        self.stats.puts += op == "put"
        self.stats.dels += op == "del"
        record_bytes = len(key) + (len(value) if value else 0) + 8

        t0 = self.sim.now
        yield from self._charge_cpu(MEMTABLE_OP_CYCLES)
        cpu_us = self.sim.now - t0

        # WAL append: one device write for durability.
        t0 = self.sim.now
        wal_offset = self._wal_base + (self._wal_cursor
                                       % (self.config.memtable_bytes * 2))
        wal_block = (wal_offset // self.block_size) * self.block_size
        yield from self.ssd.write(wal_block, b"\x00" * self.block_size)
        ssd_us = self.sim.now - t0
        self._wal_cursor += record_bytes
        self.stats.device_bytes_written += self.block_size

        existed = key in self.memtable and self.memtable[key] is not None
        self.memtable[key] = value
        self.memtable_bytes += record_bytes
        if value is not None:
            self.stats.user_bytes_written += record_bytes
            if not existed:
                self.live_objects += 1
        elif existed:
            self.live_objects -= 1
        self._account_index()

        if self.memtable_bytes >= self.config.memtable_bytes \
                and not self._flushing:
            try:
                yield from self._flush_memtable()
            except MemoryError:
                result = OpResult(STORE_FULL)
                result.total_us = self.sim.now - start
                self.stats.op_latency_us[op] += result.total_us
                return result

        result = OpResult(OK)
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = 1
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us[op] += result.total_us
        return result

    def get(self, key: bytes):
        """Generator: memtable, then L0 newest-first, then each level."""
        start = self.sim.now
        self.stats.gets += 1
        t0 = self.sim.now
        yield from self._charge_cpu(MEMTABLE_OP_CYCLES)
        cpu_us = self.sim.now - t0
        ssd_us = 0.0
        accesses = 0

        if key in self.memtable:
            self.stats.memtable_hits += 1
            value = self.memtable[key]
            result = OpResult(OK, value=value) if value is not None \
                else OpResult(NOT_FOUND)
        else:
            result = None
            for level_tables in self.levels:
                if result is not None:
                    break
                for table in level_tables:
                    if not table.bloom.might_contain(key):
                        self.stats.bloom_skips += 1
                        continue
                    self.stats.tables_probed += 1
                    t0 = self.sim.now
                    found = yield from table.get(key)
                    ssd_us += self.sim.now - t0
                    accesses += 1
                    if found is DELETED:
                        result = OpResult(NOT_FOUND)
                        break
                    if found is not None:
                        result = OpResult(OK, value=found)
                        break
            if result is None:
                result = OpResult(NOT_FOUND)

        if result.ok:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = accesses
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["get"] += result.total_us
        return result

    # -- flush & compaction --------------------------------------------------------------

    def _flush_memtable(self):
        """Generator: memtable -> new L0 run (sequential write)."""
        self._flushing = True
        try:
            records = sorted(self.memtable.items())
            t0 = self.sim.now
            yield from self._charge_cpu(
                MERGE_CYCLES_PER_RECORD * max(len(records), 1))
            size_estimate = sum(len(k) + (len(v) if v else 0) + 8
                                for k, v in records) * 2 \
                + self.block_size * 4
            extent = self._allocate(size_estimate)
            self._table_ids += 1
            table = yield from write_sstable(
                self.ssd, extent, self.block_size, records,
                table_id=self._table_ids,
                bits_per_key=self.config.bits_per_key)
            if table is not None:
                self._extent_sizes[table.table_id] = size_estimate
                self.levels[0].insert(0, table)
                self.stats.device_bytes_written += table.size_bytes
            self.memtable = {}
            self.memtable_bytes = 0
            self.stats.flushes += 1
            self._account_index()
            if len(self.levels[0]) > self.config.l0_limit:
                yield from self._compact_level(0)
        finally:
            self._flushing = False

    def _compact_level(self, level: int):
        """Generator: merge a level's runs into the next level."""
        if level + 1 >= len(self.levels):
            return
        sources = self.levels[level] + self.levels[level + 1]
        if not sources:
            return
        self.stats.compactions += 1
        # Read every source run (sequential reads), merge in memory.
        merged: Dict[bytes, Optional[bytes]] = {}
        total_records = 0
        # Oldest first so newer runs overwrite older entries.
        for table in reversed(sources):
            records = yield from table.scan_all()
            total_records += len(records)
            for key, value in records:
                merged[key] = value
        yield from self._charge_cpu(
            MERGE_CYCLES_PER_RECORD * max(total_records, 1))
        self.stats.records_merged += total_records
        is_last_level = level + 1 == len(self.levels) - 1
        output: List[Tuple[bytes, Optional[bytes]]] = []
        for key in sorted(merged):
            value = merged[key]
            if value is None and is_last_level:
                continue  # tombstones die at the bottom
            output.append((key, value))
        # Release the old extents, write the merged run.
        for table in sources:
            self._release(table.offset,
                          self._extent_sizes.get(table.table_id,
                                                 table.size_bytes))
        self.levels[level] = []
        self.levels[level + 1] = []
        if output:
            size_estimate = sum(len(k) + (len(v) if v else 0) + 8
                                for k, v in output) * 2 \
                + self.block_size * 4
            extent = self._allocate(size_estimate)
            self._table_ids += 1
            table = yield from write_sstable(
                self.ssd, extent, self.block_size, output,
                table_id=self._table_ids,
                bits_per_key=self.config.bits_per_key)
            self._extent_sizes[table.table_id] = size_estimate
            self.levels[level + 1] = [table]
            self.stats.device_bytes_written += table.size_bytes
        self._account_index()
        # Cascade when the next level exceeds its budget.
        next_size = sum(t.size_bytes for t in self.levels[level + 1])
        if next_size > self._level_budget(level + 1) and not is_last_level:
            yield from self._compact_level(level + 1)

    # -- interface parity with the other stores ------------------------------------------

    def scan(self, predicate=None, batch_size: int = 32, visit=None):
        """Generator: iterate live pairs (memtable + all levels)."""
        view: Dict[bytes, Optional[bytes]] = {}
        for level_tables in reversed(self.levels):
            for table in reversed(level_tables):
                records = yield from table.scan_all()
                for key, value in records:
                    view[key] = value
        view.update(self.memtable)
        pairs = [(k, v) for k, v in sorted(view.items()) if v is not None
                 and (predicate is None or predicate(k))]
        if visit is not None:
            for start in range(0, len(pairs), batch_size):
                yield from visit(pairs[start:start + batch_size])
            return None
        return pairs

    def needs_key_compaction(self) -> bool:
        return len(self.levels[0]) > self.config.l0_limit

    def needs_value_compaction(self) -> bool:
        return False

    def maintenance(self):
        """Generator: compact L0 when over its run limit."""
        if self.needs_key_compaction():
            yield from self._compact_level(0)
            return 1
        return 0

    def __repr__(self):
        shape = "/".join(str(len(level)) for level in self.levels)
        return "<LsmDataStore %s live=%d levels=%s>" % (
            self.name, self.live_objects, shape)
