"""A leveled LSM-tree store — the design §3.2.1 argues against."""

from repro.baselines.lsm.bloom import BloomFilter
from repro.baselines.lsm.datastore import LsmConfig, LsmDataStore, LsmStats
from repro.baselines.lsm.sstable import DELETED, SSTable, write_sstable

__all__ = ["LsmDataStore", "LsmConfig", "LsmStats", "SSTable",
           "write_sstable", "BloomFilter", "DELETED"]
