"""SSTables: immutable sorted runs on the device.

One SSTable is written in a single sequential burst and never
modified: sorted ``(key, value)`` records packed into blocks, plus an
in-memory sparse index (first key of each block) and a Bloom filter.
A point lookup is: bloom check (DRAM) → binary-search the sparse
index (DRAM) → one block read (device) → scan within the block.

Record format: klen u16 | vlen u32 | key | value; vlen 0xFFFFFFFF
marks a tombstone.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.baselines.lsm.bloom import BloomFilter
from repro.hw.ssd import NVMeSSD

RECORD_HEADER = struct.Struct("<HI")
TOMBSTONE = 0xFFFFFFFF

#: Sentinel object distinguishing "deleted" from "absent".
DELETED = object()


def pack_record(key: bytes, value: Optional[bytes]) -> bytes:
    if value is None:
        return RECORD_HEADER.pack(len(key), TOMBSTONE) + key
    return RECORD_HEADER.pack(len(key), len(value)) + key + value


def unpack_record(buffer: bytes, offset: int):
    """(key, value_or_None, wire_size); value None == tombstone."""
    klen, vlen = RECORD_HEADER.unpack_from(buffer, offset)
    start = offset + RECORD_HEADER.size
    key = bytes(buffer[start:start + klen])
    if vlen == TOMBSTONE:
        return key, None, RECORD_HEADER.size + klen
    value = bytes(buffer[start + klen:start + klen + vlen])
    return key, value, RECORD_HEADER.size + klen + vlen


class SSTable:
    """One immutable sorted run.

    Construction happens through :func:`write_sstable`; reading uses
    :meth:`get` (a simulation generator — it performs device reads).
    """

    def __init__(self, ssd: NVMeSSD, offset: int, block_size: int,
                 block_first_keys: List[bytes], block_count: int,
                 bloom: BloomFilter, num_records: int,
                 min_key: bytes, max_key: bytes, table_id: int = 0):
        self.ssd = ssd
        self.offset = offset
        self.block_size = block_size
        self.block_first_keys = block_first_keys
        self.block_count = block_count
        self.bloom = bloom
        self.num_records = num_records
        self.min_key = min_key
        self.max_key = max_key
        self.table_id = table_id

    @property
    def size_bytes(self) -> int:
        return self.block_count * self.block_size

    @property
    def index_bytes(self) -> int:
        """In-DRAM cost: sparse index + bloom filter."""
        return (sum(len(k) + 8 for k in self.block_first_keys)
                + self.bloom.size_bytes)

    def overlaps(self, min_key: bytes, max_key: bytes) -> bool:
        return not (self.max_key < min_key or max_key < self.min_key)

    def _block_for(self, key: bytes) -> int:
        """Binary search the sparse index for the candidate block."""
        lo, hi = 0, len(self.block_first_keys) - 1
        result = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.block_first_keys[mid] <= key:
                result = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return result

    def get(self, key: bytes):
        """Generator: point lookup; returns bytes, DELETED, or None."""
        if key < self.min_key or key > self.max_key:
            return None
        if not self.bloom.might_contain(key):
            return None
        block_index = self._block_for(key)
        block = yield from self.ssd.read(
            self.offset + block_index * self.block_size, self.block_size)
        cursor = 0
        while cursor + RECORD_HEADER.size <= len(block):
            klen, vlen = RECORD_HEADER.unpack_from(block, cursor)
            if klen == 0:
                break  # padding
            record_key, value, size = unpack_record(block, cursor)
            if record_key == key:
                return DELETED if value is None else value
            if record_key > key:
                return None  # sorted: passed the slot
            cursor += size
        return None

    def scan_all(self):
        """Generator: read the whole table; returns [(key, value|None)]."""
        records: List[Tuple[bytes, Optional[bytes]]] = []
        data = yield from self.ssd.read(self.offset, self.size_bytes)
        for block_start in range(0, len(data), self.block_size):
            block = data[block_start:block_start + self.block_size]
            cursor = 0
            while cursor + RECORD_HEADER.size <= len(block):
                klen, _vlen = RECORD_HEADER.unpack_from(block, cursor)
                if klen == 0:
                    break
                key, value, size = unpack_record(block, cursor)
                records.append((key, value))
                cursor += size
        return records

    def __repr__(self):
        return "<SSTable #%d %d records, %d blocks>" % (
            self.table_id, self.num_records, self.block_count)


def write_sstable(ssd: NVMeSSD, offset: int, block_size: int,
                  records: Iterable[Tuple[bytes, Optional[bytes]]],
                  table_id: int = 0, bits_per_key: int = 10):
    """Generator: write sorted records as one SSTable.

    ``records`` must be sorted by key and deduplicated.  Returns the
    :class:`SSTable` handle (or None for an empty input).  The write
    is sequential: blocks are packed and flushed in one pass.
    """
    block_first_keys: List[bytes] = []
    current = bytearray()
    blocks: List[bytes] = []
    items = list(records)
    if not items:
        return None
    bloom = BloomFilter(len(items), bits_per_key)
    for key, value in items:
        record = pack_record(key, value)
        if len(record) > block_size:
            raise ValueError("record of %d bytes exceeds block size"
                             % len(record))
        if len(current) + len(record) > block_size:
            blocks.append(bytes(current)
                          + b"\x00" * (block_size - len(current)))
            current = bytearray()
        if not current:
            block_first_keys.append(key)
        current.extend(record)
        bloom.add(key)
    if current:
        blocks.append(bytes(current) + b"\x00" * (block_size - len(current)))
    payload = b"".join(blocks)
    yield from ssd.write(offset, payload)
    return SSTable(ssd, offset, block_size, block_first_keys, len(blocks),
                   bloom, len(items), items[0][0], items[-1][0], table_id)
