"""A Bloom filter, built from scratch for the LSM baseline.

LSM stores keep one filter per SSTable so a GET can skip tables that
certainly lack the key (LevelDB/RocksDB do exactly this).  Double
hashing (Kirsch-Mitzenmacher) derives the k probe positions from two
independent 64-bit hashes.
"""

from __future__ import annotations

import hashlib
import math


class BloomFilter:
    """A fixed-size Bloom filter over byte-string keys."""

    def __init__(self, expected_items: int, bits_per_key: int = 10):
        if expected_items < 1:
            raise ValueError("expected_items must be >= 1")
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.num_bits = max(expected_items * bits_per_key, 8)
        #: Optimal probe count for the chosen density: k = m/n ln 2.
        self.num_probes = max(int(round(bits_per_key * math.log(2))), 1)
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.items_added = 0

    def _hashes(self, key: bytes):
        digest = hashlib.sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:16], "little") | 1
        for probe in range(self.num_probes):
            yield (h1 + probe * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        for position in self._hashes(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.items_added += 1

    def might_contain(self, key: bytes) -> bool:
        """False means *definitely absent*; True means "probably"."""
        for position in self._hashes(key):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def __contains__(self, key: bytes) -> bool:
        return self.might_contain(key)

    @property
    def size_bytes(self) -> int:
        """In-memory footprint (what the DRAM accountant charges)."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of set bits (a saturation diagnostic)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def __repr__(self):
        return "<BloomFilter bits=%d probes=%d items=%d>" % (
            self.num_bits, self.num_probes, self.items_added)
