"""Baseline cluster nodes: FAWN and KVell behind the LEED protocol.

Both baselines reuse the full node machinery (RPC, chain replication,
membership, heartbeats) with their own stores plugged in through the
:meth:`JBOFNode._make_vnode` hook.  Differences from LEED:

* no token admission control — the engine gets an effectively
  unbounded token pool, so execution is plain FCFS (what §4.5's
  ablation calls "w/o LS" behaviour, and what FAWN/KVell actually do);
* no CRRS and no swapping — run these clusters with client-side
  ``crrs=False`` so reads go to the tail, as in classic chain
  replication (FAWN) or a replicated KVell deployment.

:func:`make_cluster` builds any of the paper's three deployments:

=================  =============================  =====================
Label (§4.3)       Platform                       Store
=================  =============================  =====================
SmartNIC-LEED      Stingray PS1100R JBOFs         LEED data store
Server-KVell       Xeon server JBOFs              KVell
Embedded-FAWN      Raspberry Pi 3B+ nodes         FAWN-KV
FAWN-JBOF (§4.2)   Stingray JBOF                  FAWN-KV
KVell-JBOF (§4.2)  Stingray JBOF                  KVell
=================  =============================  =====================
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.baselines.fawn.datastore import FawnConfig, FawnDataStore
from repro.baselines.kvell.datastore import KVellConfig, KVellDataStore
from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.core.io_engine import PartitionIOEngine
from repro.core.jbof import JBOFNode, LeedOptions, VNodeRuntime
from repro.core.protocol import ReadPolicy
from repro.hw.platforms import RASPBERRY_PI, SERVER_JBOF, STINGRAY, PlatformSpec
from repro.hw.ssd import NVMeSSD
from repro.net.topology import NIC_1G_USB, NIC_100G

#: "Unlimited" token pool: disables admission control for baselines.
UNBOUNDED_TOKENS = 1 << 20


class FawnJBOFNode(JBOFNode):
    """A node whose vnodes run the FAWN-KV store."""

    def _make_vnode(self, vnode_id: str, ssd: NVMeSSD, ssd_index: int,
                    slot: int, store_id: int) -> VNodeRuntime:
        config: FawnConfig = self.store_config
        if config.log_bytes * (slot + 1) > ssd.capacity_bytes:
            raise ValueError("FAWN log exceeds SSD capacity")
        store = FawnDataStore(
            self.sim, ssd, config,
            region_offset=slot * config.log_bytes,
            dram=self.dram,
            core=self.storage_core_for(store_id),
            name=vnode_id, store_id=store_id)
        engine = PartitionIOEngine(
            self.sim, store,
            token_capacity=UNBOUNDED_TOKENS,
            waiting_capacity=self.options.waiting_capacity,
            name=vnode_id + ".engine")
        # The FAWN store cleans its own log; it doubles as "compactor".
        return VNodeRuntime(vnode_id, store, engine, store)


class KVellJBOFNode(JBOFNode):
    """A node whose vnodes run the KVell store."""

    def _make_vnode(self, vnode_id: str, ssd: NVMeSSD, ssd_index: int,
                    slot: int, store_id: int) -> VNodeRuntime:
        config: KVellConfig = self.store_config
        if config.slab_bytes * (slot + 1) > ssd.capacity_bytes:
            raise ValueError("KVell slab exceeds SSD capacity")
        store = KVellDataStore(
            self.sim, ssd, config,
            region_offset=slot * config.slab_bytes,
            dram=self.dram,
            core=self.storage_core_for(store_id),
            name=vnode_id, store_id=store_id)
        engine = PartitionIOEngine(
            self.sim, store,
            token_capacity=UNBOUNDED_TOKENS,
            waiting_capacity=self.options.waiting_capacity,
            name=vnode_id + ".engine")
        return VNodeRuntime(vnode_id, store, engine, None)


SYSTEMS = ("leed", "fawn", "kvell")


def make_cluster(system: str = "leed", platform: str = "auto",
                 num_nodes: Optional[int] = None,
                 ssds_per_node: Optional[int] = None,
                 num_clients: int = 2, replication: int = 3,
                 store_config=None, options: Optional[LeedOptions] = None,
                 seed: int = 0, **cluster_kwargs) -> LeedCluster:
    """Assemble one of the paper's deployments.

    ``platform`` is "stingray", "server", "pi", or "auto" (the
    platform each system was designed for: LEED→Stingray,
    KVell→server JBOF, FAWN→Raspberry Pi).  LEED's intra-/inter-JBOF
    mechanisms stay on only for the LEED system; baselines run without
    flow control or CRRS, matching their original designs.
    """
    system = system.lower()
    if system not in SYSTEMS:
        raise ValueError("unknown system %r (have %s)" % (system, SYSTEMS))
    if platform == "auto":
        platform = {"leed": "stingray", "kvell": "server",
                    "fawn": "pi"}[system]
    spec: PlatformSpec = {
        "stingray": STINGRAY, "server": SERVER_JBOF, "pi": RASPBERRY_PI,
    }[platform]
    nic = NIC_1G_USB if platform == "pi" else NIC_100G

    if num_nodes is None:
        num_nodes = 10 if platform == "pi" else 3
    if ssds_per_node is None:
        ssds_per_node = spec.max_ssds

    node_class = {"leed": JBOFNode, "fawn": FawnJBOFNode,
                  "kvell": KVellJBOFNode}[system]
    if store_config is None:
        store_config = {
            "leed": StoreConfig(), "fawn": FawnConfig(),
            "kvell": KVellConfig(),
        }[system]
    if options is None:
        options = LeedOptions()
        if system != "leed":
            options = replace(options, enable_crrs=False, enable_swap=False)

    # KVell is share-nothing with one worker per core: give each SSD
    # several worker partitions so a beefy server actually uses its
    # cores (the Stingray variant stays at 1 per SSD through
    # ``cluster_kwargs``).
    if "vnodes_per_ssd" not in cluster_kwargs and system == "kvell":
        workers = max((spec.num_cores - 2)
                      // max(min(ssds_per_node, spec.max_ssds), 1), 1)
        cluster_kwargs["vnodes_per_ssd"] = min(workers, 8)
    config = ClusterConfig(
        num_jbofs=num_nodes,
        ssds_per_jbof=min(ssds_per_node, spec.max_ssds),
        num_clients=num_clients,
        replication=replication,
        platform=spec,
        store=store_config,
        options=options,
        flow_control=(system == "leed"),
        crrs=(system == "leed"),
        read_policy={"leed": ReadPolicy.CRRS, "fawn": ReadPolicy.TAIL,
                     "kvell": ReadPolicy.ANY}[system],
        seed=seed,
        nic_profile=nic,
        node_class=node_class,
        **cluster_kwargs)
    return LeedCluster(config)
