"""LEED: a low-power, fast persistent key-value store on SmartNIC JBOFs.

A full-system reproduction of the SIGCOMM 2023 paper on a
discrete-event simulation substrate.  The package layers:

* :mod:`repro.sim` — the discrete-event engine (time unit: µs);
* :mod:`repro.hw` — flash/NVMe/CPU/DRAM models and platform specs;
* :mod:`repro.net` — fabric, RDMA verbs, RPC;
* :mod:`repro.power` — wall-power metering, requests/Joule;
* :mod:`repro.core` — the LEED system itself (data store, compaction,
  token I/O engine, flow control, swapping, CRRS, membership);
* :mod:`repro.baselines` — FAWN-KV and KVell, reimplemented;
* :mod:`repro.workloads` — YCSB mixes and drivers;
* :mod:`repro.bench` — the per-figure/table experiment harness.

Quickstart::

    from repro import LeedCluster
    cluster = LeedCluster(num_jbofs=3, num_clients=1)
    cluster.start()

    def app(client):
        result = yield from client.put(b"hello", b"world")
        result = yield from client.get(b"hello")
        return result.value

    proc = cluster.sim.process(app(cluster.clients[0]))
    print(cluster.sim.run(until=proc))   # b"world"
"""

from repro.baselines import make_cluster
from repro.core.client import ClientResult, FrontEndClient
from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.compaction import CompactionConfig, Compactor
from repro.core.datastore import LeedDataStore, OpResult, StoreConfig
from repro.core.hashring import HashRing, VNode
from repro.core.io_engine import KVCommand, PartitionIOEngine
from repro.core.jbof import JBOFNode, LeedOptions
from repro.core.membership import ControlPlane
from repro.core.protocol import ReadPolicy
from repro.core.recovery import RecoveryReport, recover_store
from repro.obs import LatencyHistogram, MetricsRegistry, Tracer
from repro.telemetry import render as render_telemetry
from repro.telemetry import snapshot as snapshot_telemetry
from repro.hw.platforms import RASPBERRY_PI, SERVER_JBOF, STINGRAY
from repro.sim.core import Simulator
from repro.workloads.ycsb import YCSBWorkload

__version__ = "1.0.0"

__all__ = [
    "LeedCluster",
    "ClusterConfig",
    "LeedDataStore",
    "StoreConfig",
    "OpResult",
    "Compactor",
    "CompactionConfig",
    "PartitionIOEngine",
    "KVCommand",
    "JBOFNode",
    "LeedOptions",
    "ControlPlane",
    "ReadPolicy",
    "Tracer",
    "LatencyHistogram",
    "MetricsRegistry",
    "recover_store",
    "RecoveryReport",
    "snapshot_telemetry",
    "render_telemetry",
    "FrontEndClient",
    "ClientResult",
    "HashRing",
    "VNode",
    "YCSBWorkload",
    "Simulator",
    "make_cluster",
    "STINGRAY",
    "SERVER_JBOF",
    "RASPBERRY_PI",
    "__version__",
]
