"""Reactive autoscaler: add/remove JBOFs on p99/energy signals.

The :class:`Autoscaler` is a background simulator process that wakes
every ``check_interval_us``, computes the p99 over the runtime's
rolling latency window (fed by every :class:`CurveDriver`), and:

* **scales out** (``LeedCluster.add_jbof``) when p99 exceeds
  ``p99_high_us`` and headroom remains,
* **scales in** (``LeedCluster.remove_jbof``) when p99 has fallen
  below ``p99_low_us`` — the extra node is then pure idle energy, the
  exact overprovisioning cost LEED's energy argument targets.

Every decision is recorded with the observed p99 and the cluster's
cumulative energy at that instant, and surfaces in the scenario
record under ``autoscaler.decisions``.
"""

from __future__ import annotations

from typing import List

from repro.scenarios.dsl import AutoscalerConfig


class Autoscaler:
    """One scenario run's scaling loop."""

    def __init__(self, runtime, config: AutoscalerConfig):
        self.rt = runtime
        self.config = config
        self.decisions: List[dict] = []
        #: Indices of JBOFs this autoscaler added (LIFO for scale-in).
        self._added: List[int] = []
        self._last_action_us = -config.cooldown_us

    def run(self):
        """Generator: the scaling loop; exits when the runtime stops."""
        while not self.rt.stopping:
            yield self.rt.sim.timeout(self.config.check_interval_us)
            if self.rt.stopping:
                return
            p99 = self.rt.recent_p99()
            if p99 is None:
                continue
            if self.rt.sim.now - self._last_action_us < self.config.cooldown_us:
                continue
            if (p99 > self.config.p99_high_us
                    and len(self._added) < self.config.max_extra_jbofs):
                node = yield from self.rt.cluster.add_jbof()
                self._added.append(len(self.rt.cluster.jbofs) - 1)
                self._record("scale_out", p99, node.address)
            elif p99 < self.config.p99_low_us and self._added:
                index = self._added.pop()
                yield from self.rt.cluster.remove_jbof(index)
                self._record("scale_in", p99, "jbof%d" % index)

    def _record(self, kind: str, p99: float, address: str) -> None:
        self._last_action_us = self.rt.sim.now
        decision = {
            "t_us": self.rt.sim.now,
            "action": kind,
            "address": address,
            "p99_us": round(p99, 3),
            "energy_joules": round(self.rt.cluster.energy_joules(), 6),
            "num_jbofs": sum(1 for node in self.rt.cluster.jbofs
                             if node.vnodes),
        }
        self.decisions.append(decision)
        self.rt.note("autoscale_%s" % kind, address=address,
                     p99_us=decision["p99_us"])
