"""Command-line entry points for the scenario library.

::

    python -m repro.scenarios list
    python -m repro.scenarios run failure_burst --scale smoke
    python -m repro.scenarios run all --output BENCH_scenarios.json
    python -m repro.scenarios golden --output tests/golden_scenarios.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import List, Optional

from repro.core.replication import protocol_names
from repro.scenarios.dsl import SCALES, build_scenario, scenario_names
from repro.scenarios.runner import (canonical_json, run_scenario,
                                    scenario_max_workers)


def _resolve_names(name: str) -> List[str]:
    if name == "all":
        return list(scenario_names())
    if name not in scenario_names():
        raise SystemExit("unknown scenario %r; have: %s, all"
                         % (name, ", ".join(scenario_names())))
    return [name]


def _print_summary(record: dict) -> None:
    totals = record["totals"]
    invariants = record["invariants"]
    print("%-16s scale=%-6s seed=%-3d proto=%-5s avail=%.4f p99=%8.1fus "
          "lost_acked=%d energy/op=%.2fuJ" % (
              record["scenario"], record["scale"], record["seed"],
              record["protocol"], totals["availability"], totals["p99_us"],
              invariants["lost_acked_writes"], totals["energy_per_op_uj"]))
    for recovery in record["recovery"]["failover"]:
        print("  failover %-10s recovery=%.1fus"
              % (recovery["address"], recovery["recovery_us"]))
    for blackout in record["recovery"]["power"]:
        wal = blackout["report"].get("wal") or {}
        print("  blackout jbof%d outage=%.0fus scan=%.1fus wal_replayed=%s"
              % (blackout["jbof"], blackout["outage_us"],
                 blackout["report"]["scan_duration_us"],
                 wal.get("replayed", 0)))


def cmd_list(_args) -> int:
    for name in scenario_names():
        scenario = build_scenario(name)
        print("%-16s %s" % (name, scenario.description))
        for phase in scenario.phases:
            marks = ", ".join(i.action for i in phase.injections)
            print("    %-20s x%-4g %s" % (phase.name, phase.duration,
                                          ("[%s]" % marks) if marks else ""))
    return 0


def _effective_workers(name: str, workers: int, batch: bool) -> int:
    """Workers to use for one scenario of a ``run`` invocation.

    A batch ('all') sweep clamps each scenario to its own limit and
    says so — records are engine-invariant either way; a single named
    scenario keeps the requested value so the runner's ValueError
    explains the refusal.
    """
    if not workers or not batch:
        return workers
    cap = scenario_max_workers(build_scenario(name))
    if cap is not None and workers > cap:
        print("%-16s clamping workers %d -> %d (injections need more "
              "ownership)" % (name, workers, cap))
        return cap
    return workers


def cmd_run(args) -> int:
    records = []
    names = _resolve_names(args.name)
    for name in names:
        record = run_scenario(
            name, scale=args.scale, seed=args.seed,
            replication_protocol=args.protocol,
            crrs=False if args.no_crrs else None,
            trace_sample_interval=16 if args.trace else 0,
            workers=_effective_workers(name, args.workers, len(names) > 1))
        tracer = record.pop("_tracer", None)
        if args.trace and tracer is not None:
            trace_path = args.trace
            if len(_resolve_names(args.name)) > 1:
                trace_path = "%s.%s.json" % (args.trace.rstrip(".json"), name)
            with open(trace_path, "w") as handle:
                handle.write(tracer.to_json())
            print("wrote %s" % trace_path)
        _print_summary(record)
        records.append(record)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(canonical_json(records))
        print("wrote %s (%d records)" % (args.output, len(records)))
    failed = sum(r["invariants"]["lost_acked_writes"] for r in records)
    if failed:
        print("INVARIANT VIOLATION: %d lost acked writes" % failed,
              file=sys.stderr)
        return 1
    return 0


def cmd_golden(args) -> int:
    """Regenerate the golden digest file the regression suite checks.

    Digests are keyed by python minor version (hash randomization is
    irrelevant — digests derive from sorted-key JSON — but float repr
    and dict iteration guarantees differ across majors, so goldens
    are per-version; the suite skips versions with no entry).
    """
    version = "%d.%d" % sys.version_info[:2]
    try:
        with open(args.output) as handle:
            golden = json.load(handle)
    except (IOError, OSError, ValueError):
        golden = {}
    entry = golden.setdefault(version, {})
    entry["_meta"] = {"scale": args.scale, "seed": args.seed,
                      "implementation": platform.python_implementation()}
    for name in scenario_names():
        record = run_scenario(name, scale=args.scale, seed=args.seed)
        entry[name] = record["digests"]
        _print_summary(record)
    with open(args.output, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s [python %s]" % (args.output, version))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="LEED production-scenario library")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="catalog of scenarios").set_defaults(
        func=cmd_list)

    run_parser = sub.add_parser("run", help="run scenario(s)")
    run_parser.add_argument("name", help="scenario name, or 'all'")
    run_parser.add_argument("--scale", default="smoke",
                            choices=sorted(SCALES))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--protocol", default=None,
                            choices=protocol_names(),
                            help="replication protocol override")
    run_parser.add_argument("--no-crrs", action="store_true",
                            help="disable CRRS request shipping")
    run_parser.add_argument("--output", default=None, metavar="PATH",
                            help="write BENCH_scenarios.json here")
    run_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="write a Chrome trace here")
    run_parser.add_argument("--workers", type=int, default=0,
                            help="partition-parallel engine worker count "
                                 "(0 = serial; scenarios with physical "
                                 "fault injection require 0, membership "
                                 "elasticity allows 1; 'all' clamps per "
                                 "scenario)")
    run_parser.set_defaults(func=cmd_run)

    golden_parser = sub.add_parser(
        "golden", help="regenerate tests/golden_scenarios.json")
    golden_parser.add_argument("--scale", default="smoke",
                               choices=sorted(SCALES))
    golden_parser.add_argument("--seed", type=int, default=0)
    golden_parser.add_argument("--output",
                               default="tests/golden_scenarios.json")
    golden_parser.set_defaults(func=cmd_golden)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
