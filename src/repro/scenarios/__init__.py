"""Production-scenario library: composable stress episodes + goldens.

See ``docs/scenarios.md`` for the DSL reference and catalog, or::

    python -m repro.scenarios list
    python -m repro.scenarios run failure_burst --scale smoke
"""

from repro.scenarios import catalog  # noqa: F401  (registers the catalog)
from repro.scenarios.dsl import (SCALES, AutoscalerConfig, Injection, Phase,
                                 Scenario, ScenarioScale, Segment,
                                 build_scenario, inject, register_scenario,
                                 scenario_names)
from repro.scenarios.load import CurveDriver, PhaseStats, WriteLedger
from repro.scenarios.runner import ScenarioRuntime, run_scenario

__all__ = [
    "AutoscalerConfig",
    "CurveDriver",
    "Injection",
    "Phase",
    "PhaseStats",
    "SCALES",
    "Scenario",
    "ScenarioRuntime",
    "ScenarioScale",
    "Segment",
    "WriteLedger",
    "build_scenario",
    "inject",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
