"""Curve-following load generation and the acked-write ledger.

:class:`CurveDriver` is an open-loop Poisson driver whose rate and
Zipf skew follow a phase's :class:`~repro.scenarios.dsl.Segment`
curve.  Every PUT it issues is routed through a shared
:class:`WriteLedger` that assigns a globally unique value token and,
after the run, adjudicates a read-back sweep: an acked write whose
value cannot be observed (and was not superseded) is a *lost acked
write* — the invariant every scenario asserts to zero.

Single-writer discipline: PUT keys are remapped so each record id is
only ever written by one driver (``rid - rid % writers + index``,
which preserves Zipf hotness buckets).  Within one driver, open-loop
concurrency can still put the same key twice in flight; the ledger
marks such keys *racy* and only requires read-your-issued for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.core import Simulator
from repro.workloads.ycsb import YCSBWorkload, make_key

#: Value-token prefix length: b"w%016x." — unique per ledger sequence
#: number, so equality of the first 18 bytes implies write identity.
TOKEN_LEN = 18

#: Smallest value size the ledger can tag.
MIN_VALUE_SIZE = 32


class _KeyState:
    """Per-key write history inside a :class:`WriteLedger`."""

    __slots__ = ("issued", "acked_seq", "outstanding", "racy")

    def __init__(self):
        #: token bytes -> ledger seq, for every write ever issued.
        self.issued: Dict[bytes, int] = {}
        self.acked_seq: Optional[int] = None
        self.outstanding = 0
        self.racy = False


class WriteLedger:
    """Tracks every scenario PUT and judges the final read-back sweep."""

    def __init__(self, value_size: int):
        if value_size < MIN_VALUE_SIZE:
            raise ValueError("ledger needs value_size >= %d, got %d"
                             % (MIN_VALUE_SIZE, value_size))
        self.value_size = value_size
        self._keys: Dict[bytes, _KeyState] = {}
        self._seq = 0
        self.acked_writes = 0
        self.failed_writes = 0

    def begin(self, key: bytes):
        """Register a write about to be issued; returns (seq, value)."""
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyState()
        if state.outstanding > 0:
            state.racy = True
        state.outstanding += 1
        seq = self._seq
        self._seq += 1
        token = (b"w%016x." % seq)
        state.issued[token] = seq
        value = token + b"x" * (self.value_size - TOKEN_LEN)
        return seq, value

    def finish(self, key: bytes, seq: int, acked: bool) -> None:
        """Record the outcome of a write begun via :meth:`begin`."""
        state = self._keys[key]
        state.outstanding -= 1
        if acked:
            self.acked_writes += 1
            if state.acked_seq is None or seq > state.acked_seq:
                state.acked_seq = seq
        else:
            self.failed_writes += 1

    # -- final sweep -------------------------------------------------------

    def acked_keys(self) -> List[bytes]:
        """Keys with at least one acknowledged write, sorted."""
        return sorted(k for k, s in self._keys.items()
                      if s.acked_seq is not None)

    def judge(self, key: bytes, status: str,
              value: Optional[bytes]) -> str:
        """Adjudicate one sweep read of an acked key.

        Returns ``"ok"``, ``"indeterminate"`` (a write issued after
        the last ack whose outcome the client never learned — allowed
        to have landed), or ``"lost"`` (the acked write is gone: the
        key vanished, holds a pre-scenario value, or regressed to an
        older write).
        """
        state = self._keys[key]
        if status != "ok" or value is None:
            # No deletes in scenario traffic: not_found = lost.
            return "lost"
        seq = state.issued.get(bytes(value[:TOKEN_LEN]))
        if seq is None:
            return "lost"          # pre-scenario bytes over an acked write
        if state.racy:
            return "ok"            # concurrent same-key puts: any issued wins
        if seq == state.acked_seq:
            return "ok"
        if seq > state.acked_seq:
            return "indeterminate"
        return "lost"              # older write resurfaced over the ack

    @property
    def racy_key_count(self) -> int:
        return sum(1 for s in self._keys.values() if s.racy)


class PhaseStats:
    """Aggregated per-phase traffic accounting (all drivers)."""

    __slots__ = ("name", "started_at_us", "finished_at_us", "issued",
                 "ok", "failed", "dropped", "latencies_us")

    def __init__(self, name: str):
        self.name = name
        self.started_at_us = 0.0
        self.finished_at_us = 0.0
        self.issued = 0
        self.ok = 0
        self.failed = 0
        self.dropped = 0
        self.latencies_us: List[float] = []

    def percentile_us(self, quantile: float) -> float:
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        index = min(int(quantile * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def availability(self) -> float:
        denom = self.ok + self.failed + self.dropped
        if denom == 0:
            return 1.0
        return self.ok / denom

    def summary(self) -> Dict[str, object]:
        duration = max(self.finished_at_us - self.started_at_us, 0.0)
        return {
            "name": self.name,
            "start_us": self.started_at_us,
            "duration_us": duration,
            "issued": self.issued,
            "ok": self.ok,
            "failed": self.failed,
            "dropped": self.dropped,
            "availability": round(self.availability(), 6),
            "p50_us": round(self.percentile_us(0.50), 3),
            "p99_us": round(self.percentile_us(0.99), 3),
            "throughput_qps": round(self.ok / (duration * 1e-6), 3)
            if duration > 0 else 0.0,
        }


class CurveDriver:
    """One client's open-loop Poisson traffic through a phase curve.

    Arrivals follow the active :class:`Segment`'s rate (divided evenly
    across drivers); a segment with a ``skew`` override swaps in a
    workload generator with that Zipfian constant.  Latency samples
    are mirrored into ``latency_sink`` (the runner's rolling window)
    so the autoscaler can react to them mid-run.
    """

    def __init__(self, sim: Simulator, client, scale, scenario,
                 segments, duration_us: float, rng, ledger: WriteLedger,
                 writer_index: int, num_writers: int, stats: PhaseStats,
                 latency_sink=None, workload_seed: int = 0):
        self.sim = sim
        self.client = client
        self.scale = scale
        self.scenario = scenario
        self.segments = list(segments)
        self.duration_us = duration_us
        self.rng = rng
        self.ledger = ledger
        self.writer_index = writer_index
        self.num_writers = max(num_writers, 1)
        self.stats = stats
        self.latency_sink = latency_sink
        self.workload_seed = workload_seed
        self._workloads: Dict[float, YCSBWorkload] = {}
        self._inflight = 0

    def _workload(self, skew: float) -> YCSBWorkload:
        """Generator stream for one skew value (cached per driver)."""
        workload = self._workloads.get(skew)
        if workload is None:
            workload = YCSBWorkload(
                self.scenario.workload, self.scale.num_records,
                value_size=self.scale.value_size, skew=skew,
                seed=self.workload_seed)
            self._workloads[skew] = workload
        return workload

    def run(self):
        """Generator: Poisson arrivals across every segment."""
        start = self.sim.now
        pending = []
        skew = self.scenario.skew
        for position, segment in enumerate(self.segments):
            if segment.skew is not None:
                skew = segment.skew
            seg_end = start + self.duration_us * (
                self.segments[position + 1].frac
                if position + 1 < len(self.segments) else 1.0)
            rate = segment.rate * self.scale.base_rate_qps / self.num_writers
            if rate <= 0:
                if seg_end > self.sim.now:
                    yield self.sim.timeout(seg_end - self.sim.now)
                continue
            mean_gap_us = 1e6 / rate
            workload = self._workload(skew)
            while self.sim.now < seg_end:
                gap = self.rng.expovariate(1.0 / mean_gap_us)
                if self.sim.now + gap >= seg_end:
                    yield self.sim.timeout(seg_end - self.sim.now)
                    break
                yield self.sim.timeout(gap)
                self.stats.issued += 1
                if self._inflight >= self.scale.max_inflight:
                    self.stats.dropped += 1
                    continue
                self._inflight += 1
                operation = workload.next_operation()
                pending.append(self.sim.process(
                    self._one(operation), name="scenario.op"))
                pending = [p for p in pending if not p.triggered]
        if pending:
            yield self.sim.all_of(pending)

    def _remap_put_key(self, key: bytes) -> bytes:
        """Single-writer key: keep the Zipf bucket, fix the writer."""
        record_id = int(key[-12:])
        remapped = (record_id - record_id % self.num_writers
                    + self.writer_index)
        if remapped >= self.scale.num_records:
            remapped -= self.num_writers
        return make_key(remapped)

    def _one(self, operation):
        begin = self.sim.now
        if operation.op == "put":
            key = self._remap_put_key(operation.key)
            seq, value = self.ledger.begin(key)
            result = yield from self.client.put(key, value)
            status = getattr(result, "status", "error")
            self.ledger.finish(key, seq, status == "ok")
            ok = status == "ok"
        else:
            result = yield from self.client.get(operation.key)
            status = getattr(result, "status", "error")
            ok = status in ("ok", "not_found")
        latency = self.sim.now - begin
        if ok:
            self.stats.ok += 1
        else:
            self.stats.failed += 1
        self.stats.latencies_us.append(latency)
        if self.latency_sink is not None:
            self.latency_sink.append(latency)
        self._inflight -= 1
