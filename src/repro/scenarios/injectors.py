"""Scenario injection actions: environment events scheduled in phases.

Each action is a generator taking the :class:`ScenarioRuntime` (see
:mod:`repro.scenarios.runner`) plus the injection's kwargs.  Actions
go through the cluster/control-plane scenario hooks — registry-safe
RPC and the serial-engine-guarded physical-injection methods on
:class:`~repro.core.cluster.LeedCluster` — never through direct node
method calls, so they stay within the simlint cross-shard rules.

The registry is keyed by the ``action`` string in
:class:`~repro.scenarios.dsl.Injection`.
"""

from __future__ import annotations

from typing import Callable, Dict

#: Action registry: name -> generator function(runtime, **kwargs).
#: Module-level by design; mutated only at import time.
ACTIONS: Dict[str, Callable] = {}

#: Largest ``workers`` setting each action tolerates.  Physical
#: injections (crash, power loss, in-place upgrade) mutate node
#: objects directly and need the serial engine (0); membership
#: elasticity (add/remove JBOF) goes over control-plane RPC but
#: changes the shard plan, so it works sharded in-process (1) yet
#: never with forked workers whose plans are fixed at the fork.
ACTION_MAX_WORKERS: Dict[str, int] = {}


def register_action(name: str, max_workers: int = 0):
    """Decorator: register an injection action under ``name``."""
    def wrap(fn):
        ACTIONS[name] = fn
        ACTION_MAX_WORKERS[name] = max_workers
        return fn
    return wrap


@register_action("crash")
def crash(rt, index: int):
    """Fail-stop one JBOF; the failure monitor will detect it."""
    address = rt.cluster.crash_jbof(index)
    rt.note("crash", jbof=index, address=address)
    yield rt.sim.timeout(0)


@register_action("recover")
def recover(rt, index: int):
    """Heal a fail-stopped JBOF's network + replay its WAL.

    Does *not* rejoin its vnodes — use ``rejoin`` for the full
    crash-recover-rejoin cycle.
    """
    address = rt.cluster.recover_jbof(index)
    rt.note("recover", jbof=index, address=address)
    yield rt.sim.timeout(0)


@register_action("rejoin")
def rejoin(rt, index: int):
    """Heal a crashed JBOF and join its vnodes back into the ring."""
    address = rt.cluster.recover_jbof(index)
    yield from rt.cluster.rejoin_jbof(index)
    rt.note("rejoin", jbof=index, address=address)


@register_action("power_blackout")
def power_blackout(rt, index: int, outage_us: float):
    """Pull the power, wait ``outage_us``, restore.

    Restoration is LEED's power-loss recovery (§3.2.3): the DRAM
    SegTbl is gone, so every store is rebuilt by scanning its flash
    key log, then the capacitor-backed WAL replays un-acked intents.
    The full report (scan + replay timing) lands in the scenario
    record's ``recovery.power`` list.
    """
    started = rt.sim.now
    rt.cluster.power_fail_jbof(index)
    rt.note("power_fail", jbof=index)
    yield rt.sim.timeout(outage_us)
    report = yield from rt.cluster.power_restore_jbof(index)
    rt.note("power_restore", jbof=index)
    rt.record_power_recovery(index, started, outage_us, report)


@register_action("drain")
def drain(rt, index: int):
    """Gracefully migrate every vnode off one JBOF."""
    yield from rt.cluster.drain_jbof(index)
    rt.note("drain", jbof=index)


@register_action("rejoin_drained")
def rejoin_drained(rt, index: int):
    """Join a drained (but healthy) JBOF's vnodes back."""
    yield from rt.cluster.rejoin_jbof(index)
    rt.note("rejoin_drained", jbof=index)


@register_action("rolling_upgrade")
def rolling_upgrade(rt, version: str = "v2", pause_us: float = 0.0):
    """Drain → replace → rejoin every JBOF in turn, under load."""
    started = rt.sim.now
    yield from rt.cluster.rolling_upgrade(version, pause_us=pause_us)
    rt.note("rolling_upgrade", version=version,
            duration_us=rt.sim.now - started)


@register_action("add_jbof", max_workers=1)
def add_jbof(rt):
    """Provision one extra JBOF and join its vnodes (scale-out)."""
    node = yield from rt.cluster.add_jbof()
    rt.note("add_jbof", address=node.address)


@register_action("remove_jbof", max_workers=1)
def remove_jbof(rt, index: int):
    """Drain and power down one JBOF (scale-in)."""
    yield from rt.cluster.remove_jbof(index)
    rt.note("remove_jbof", jbof=index)
