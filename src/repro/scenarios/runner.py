"""Scenario execution: build a cluster, play the phases, emit a record.

:func:`run_scenario` is the single entry point the CLI, the examples,
and the golden-run tests all share.  It deterministically:

1. builds a :class:`~repro.core.cluster.LeedCluster` from the
   :class:`~repro.scenarios.dsl.ScenarioScale` (serial engine, tight
   scenario heartbeats, schedule digests on),
2. preloads the keyspace,
3. runs every phase — per-client :class:`CurveDriver` traffic plus the
   phase's scheduled injections, with
   :meth:`~repro.obs.metrics.MetricsRegistry.set_phase` tagging the
   metrics stream,
4. settles, then sweeps every acked key through the
   :class:`~repro.scenarios.load.WriteLedger` to count lost acked
   writes (the headline invariant: must be zero),
5. emits one ``BENCH_scenarios.json``-style record with availability,
   p99-under-churn, recovery timings (failover + power-loss WAL
   replay), energy/op, membership-event accounting, and figure /
   schedule digests.

Determinism contract: the same (scenario, scale, seed, protocol)
tuple produces a byte-identical record — asserted by
``tests/test_scenarios.py`` against committed goldens.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Dict, List, Optional, Union

from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.jbof import LeedOptions
from repro.scenarios.autoscaler import Autoscaler
from repro.scenarios.dsl import (SCALES, Scenario, ScenarioScale,
                                 build_scenario)
from repro.scenarios.injectors import ACTION_MAX_WORKERS, ACTIONS
from repro.scenarios.load import CurveDriver, PhaseStats, WriteLedger
from repro.sim.rng import RngRegistry
from repro.workloads.ycsb import YCSBWorkload

#: Sweep reads retry transient failures this many times before the
#: ledger judges the key (the cluster has settled by then; retries
#: only paper over a mid-sweep stray timeout, not real data loss).
SWEEP_RETRIES = 3


def canonical_json(payload) -> str:
    """Stable serialization used for figure digests and artifacts."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ScenarioRuntime:
    """Mutable state shared by drivers, injectors, and the autoscaler
    during one scenario run."""

    def __init__(self, cluster: LeedCluster, scenario: Scenario,
                 scale: ScenarioScale, seed: int):
        self.cluster = cluster
        self.sim = cluster.sim
        self.scenario = scenario
        self.scale = scale
        self.seed = seed
        self.rng = RngRegistry(seed)
        self.ledger = WriteLedger(scale.value_size)
        self.notes: List[dict] = []
        self.power_recoveries: List[dict] = []
        self.phase_stats: List[PhaseStats] = []
        self.latency_window = deque(maxlen=1024)
        self.autoscaler: Optional[Autoscaler] = None
        self.stopping = False
        self.sweep_counts: Dict[str, int] = {}
        self.lost_keys: List[str] = []

    # -- services for injectors / the autoscaler ---------------------------

    def note(self, kind: str, **fields) -> None:
        """Log one scenario event into the record's ``events`` list."""
        entry = {"t_us": self.sim.now, "event": kind}
        entry.update(fields)
        self.notes.append(entry)

    def record_power_recovery(self, index: int, started_us: float,
                              outage_us: float, report: dict) -> None:
        """File a power-blackout recovery report (from the injector)."""
        self.power_recoveries.append({
            "jbof": index,
            "failed_at_us": started_us,
            "outage_us": outage_us,
            "report": report,
        })

    def recent_p99(self) -> Optional[float]:
        """p99 over the rolling latency window (None until warmed)."""
        if len(self.latency_window) < 32:
            return None
        ordered = sorted(self.latency_window)
        return ordered[min(int(0.99 * len(ordered)), len(ordered) - 1)]

    # -- execution ---------------------------------------------------------

    def execute(self) -> dict:
        sim, cluster, scale, scenario = (self.sim, self.cluster,
                                         self.scale, self.scenario)
        metrics = cluster.metrics
        metrics.register_gauge(
            "ring_version", lambda: cluster.control_plane.ring_version)
        # Scale-in retires a node's vnodes but keeps the husk in
        # cluster.jbofs (injector indices stay stable), so "active"
        # means hosting at least one vnode.
        metrics.register_gauge(
            "num_jbofs",
            lambda: sum(1 for node in cluster.jbofs if node.vnodes))
        metrics.register_gauge("energy_joules", cluster.energy_joules)
        cluster.start()

        preload = YCSBWorkload(
            scenario.workload, scale.num_records,
            value_size=scale.value_size, skew=scenario.skew, seed=self.seed)
        done = sim.process(cluster.load(list(preload.load_pairs())),
                           name="scenario.preload")
        sim.run(until=done)

        if scenario.autoscaler is not None:
            self.autoscaler = Autoscaler(self, scenario.autoscaler)
            sim.process(self.autoscaler.run(), name="scenario.autoscaler")

        for phase_index, phase in enumerate(scenario.phases):
            metrics.set_phase(phase.name)
            stats = PhaseStats(phase.name)
            stats.started_at_us = sim.now
            duration = phase.duration * scale.phase_unit_us
            procs = []
            for client_index, client in enumerate(cluster.clients):
                driver = CurveDriver(
                    sim, client, scale, scenario, phase.segments, duration,
                    rng=self.rng.stream("scenario.%s.arrivals.c%d"
                                        % (phase.name, client_index)),
                    ledger=self.ledger, writer_index=client_index,
                    num_writers=len(cluster.clients), stats=stats,
                    latency_sink=self.latency_window,
                    workload_seed=((self.seed + 1) * 10_000
                                   + phase_index * 100 + client_index))
                procs.append(sim.process(
                    driver.run(),
                    name="scenario.%s.c%d" % (phase.name, client_index)))
            for inj_index, injection in enumerate(phase.injections):
                procs.append(sim.process(
                    self._inject(injection, duration),
                    name="scenario.%s.inject%d" % (phase.name, inj_index)))
            sim.run(until=sim.all_of(procs))
            stats.finished_at_us = sim.now
            self.phase_stats.append(stats)
            # Parallel engines: complete the global cut at this clock
            # so the gauges (energy meters on JBOF shards) read the
            # exact state a serial run would sample here.
            cluster.settle_shards()
            metrics.sample_now()
        metrics.set_phase(None)
        # Traffic is over: stop the autoscaler *before* the settle
        # window, or it reacts to its own scale-in churn (leave-COPY
        # latency spikes) with a pointless last-second scale-out.
        self.stopping = True

        if scale.settle_us > 0:
            sim.run(until=sim.now + scale.settle_us)

        sweep = sim.process(self._sweep(), name="scenario.sweep")
        sim.run(until=sweep)
        cluster.settle_shards()

        record = self._assemble_record()
        cluster.shutdown()
        sim.run()   # drain the heap so the digest covers everything
        digests = cluster.shard_digests()
        record["digests"] = {
            "figure": hashlib.sha256(
                canonical_json(record).encode("ascii")).hexdigest(),
            "schedule": digests.get(0),
        }
        cluster.stop_workers()
        return record

    def _inject(self, injection, duration_us: float):
        yield self.sim.timeout(injection.frac * duration_us)
        action = ACTIONS.get(injection.action)
        if action is None:
            raise KeyError("unknown injection action %r (have: %s)"
                           % (injection.action, ", ".join(sorted(ACTIONS))))
        yield from action(self, **injection.kwargs())

    def _sweep(self):
        """Generator: read back every acked key and judge it."""
        client = self.cluster.clients[0]
        counts = {"ok": 0, "indeterminate": 0, "lost": 0}
        for key in self.ledger.acked_keys():
            result = None
            for _ in range(SWEEP_RETRIES):
                result = yield from client.get(key)
                if getattr(result, "status", None) in ("ok", "not_found"):
                    break
            verdict = self.ledger.judge(
                key, getattr(result, "status", "error"),
                getattr(result, "value", None))
            counts[verdict] += 1
            if verdict == "lost":
                self.lost_keys.append(key.decode("ascii"))
        self.sweep_counts = counts

    # -- record assembly ---------------------------------------------------

    def _assemble_record(self) -> dict:
        cluster, scale, scenario = self.cluster, self.scale, self.scenario
        events = list(cluster.control_plane.membership_events)
        event_counts: Dict[str, int] = {}
        for _, kind, _ in events:
            event_counts[kind] = event_counts.get(kind, 0) + 1

        failover = []
        pending: Dict[str, List[float]] = {}
        for t_us, kind, ident in events:
            if kind == "failure":
                pending.setdefault(ident, []).append(t_us)
            elif kind == "recovered" and pending.get(ident):
                started = pending[ident].pop(0)
                failover.append({
                    "address": ident,
                    "detected_at_us": started,
                    "recovered_at_us": t_us,
                    "recovery_us": t_us - started,
                })
        unrecovered = sum(len(v) for v in pending.values())

        latencies: List[float] = []
        totals = PhaseStats("totals")
        for stats in self.phase_stats:
            totals.issued += stats.issued
            totals.ok += stats.ok
            totals.failed += stats.failed
            totals.dropped += stats.dropped
            latencies.extend(stats.latencies_us)
        totals.latencies_us = latencies
        elapsed_us = (self.phase_stats[-1].finished_at_us
                      - self.phase_stats[0].started_at_us
                      if self.phase_stats else 0.0)
        energy = cluster.energy_joules()
        completed = cluster.total_completed_requests()

        record = {
            "scenario": scenario.name,
            "description": scenario.description,
            "scale": scale.name,
            "seed": self.seed,
            "protocol": cluster.config.replication_protocol,
            "workload": scenario.workload,
            "phases": [stats.summary() for stats in self.phase_stats],
            "totals": {
                "issued": totals.issued,
                "ok": totals.ok,
                "failed": totals.failed,
                "dropped": totals.dropped,
                "availability": round(totals.availability(), 6),
                "p50_us": round(totals.percentile_us(0.50), 3),
                "p99_us": round(totals.percentile_us(0.99), 3),
                "elapsed_us": elapsed_us,
                "energy_joules": round(energy, 6),
                "energy_per_op_uj": round(energy / completed * 1e6, 3)
                if completed else 0.0,
                "requests_per_joule": round(completed / energy, 3)
                if energy > 0 else 0.0,
            },
            "invariants": {
                "lost_acked_writes": self.sweep_counts.get("lost", 0),
                "lost_keys": self.lost_keys,
                "acked_keys_checked": sum(self.sweep_counts.values()),
                "indeterminate_reads":
                    self.sweep_counts.get("indeterminate", 0),
                "racy_keys": self.ledger.racy_key_count,
                "acked_writes": self.ledger.acked_writes,
                "membership_balanced":
                    event_counts.get("join_start", 0)
                    == event_counts.get("join_end", 0)
                    and event_counts.get("leave_start", 0)
                    == event_counts.get("leave_end", 0),
                "unrecovered_failures": unrecovered,
                "ring_version": cluster.control_plane.ring_version,
            },
            "recovery": {
                "failover": failover,
                "power": self.power_recoveries,
            },
            "membership_event_counts": event_counts,
            "events": self.notes,
            "metrics": cluster.metrics.bench_records(scenario.name),
        }
        if self.autoscaler is not None:
            record["autoscaler"] = {
                "decisions": self.autoscaler.decisions,
                "final_num_jbofs": sum(
                    1 for node in cluster.jbofs if node.vnodes),
            }
        return record


def scenario_max_workers(scenario: Scenario) -> Optional[int]:
    """Largest ``workers`` the scenario's injections tolerate.

    ``None`` means unlimited (pure-traffic scenarios like ``diurnal``
    or ``hot_key_storm`` run on any engine).  Unknown actions count as
    serial-only — better a loud ValueError up front than a parallel
    run mutating state it does not own.
    """
    cap: Optional[int] = None
    for phase in scenario.phases:
        for injection in phase.injections:
            action_cap = ACTION_MAX_WORKERS.get(injection.action, 0)
            cap = action_cap if cap is None else min(cap, action_cap)
    if scenario.autoscaler is not None:
        # The autoscaler's decisions are add/remove_jbof.
        cap = 1 if cap is None else min(cap, 1)
    return cap


def run_scenario(name: Optional[str] = None, scale: Union[str, ScenarioScale] = "smoke",
                 seed: int = 0, replication_protocol: Optional[str] = None,
                 crrs: Optional[bool] = None,
                 trace_sample_interval: int = 0,
                 scenario: Optional[Scenario] = None,
                 workers: int = 0) -> dict:
    """Run one scenario end to end; returns its BENCH record.

    ``scenario`` lets callers (property tests) pass an ad-hoc
    :class:`Scenario` instead of a catalog name.  ``crrs`` / ``scale``
    / ``replication_protocol`` override the scenario's defaults.

    ``workers`` selects the engine: 0 (serial, the golden-pinned
    schedule), 1 (sharded in-process), or ``N >= 2`` (forked workers).
    Scenarios whose injections need more ownership than the engine
    grants raise (see :func:`scenario_max_workers`).  For scenarios
    with no mid-run cross-shard sampler the record is engine-invariant
    (figure digests match workers=0 exactly; asserted by the test
    suite).  Autoscaler scenarios sample cluster energy *during* a
    run, where parallel shards sit at window granularity rather than
    the sampler's instant, so their energy figures can differ from
    serial in the last decimals — every invariant still holds.
    """
    if scenario is None:
        if name is None:
            raise ValueError("pass a scenario name or a Scenario object")
        scenario = build_scenario(name)
    if isinstance(scale, str):
        if scale not in SCALES:
            raise KeyError("unknown scale %r (have: %s)"
                           % (scale, ", ".join(sorted(SCALES))))
        scale = SCALES[scale]
    protocol = (replication_protocol or scenario.replication_protocol
                or "chain")
    overrides = dict(
        num_jbofs=scale.num_jbofs,
        ssds_per_jbof=scale.ssds_per_jbof,
        vnodes_per_ssd=scale.vnodes_per_ssd,
        num_clients=scale.num_clients,
        replication=min(3, scale.num_jbofs * scale.ssds_per_jbof
                        * scale.vnodes_per_ssd),
        options=LeedOptions(heartbeat_period_us=scale.heartbeat_period_us),
        replication_protocol=protocol,
        seed=seed,
        heartbeat_timeout_us=scale.heartbeat_timeout_us,
        trace_sample_interval=trace_sample_interval,
        workers=workers,
    )
    if crrs is not None:
        overrides["crrs"] = crrs
    overrides.update(dict(scenario.config_overrides))
    config = ClusterConfig.from_overrides(**overrides)
    cap = scenario_max_workers(scenario)
    if cap is not None and config.workers > cap:
        raise ValueError(
            "scenario %r allows at most workers=%d (physical fault "
            "injection mutates node objects the serial engine owns; "
            "membership elasticity additionally needs workers <= 1), "
            "got workers=%d" % (scenario.name, cap, config.workers))
    cluster = LeedCluster(config)
    cluster.enable_schedule_digests()
    for client in cluster.clients:
        client.request_timeout_us = scale.request_timeout_us
    runtime = ScenarioRuntime(cluster, scenario, scale, seed)
    record = runtime.execute()
    if trace_sample_interval:
        record["trace_spans"] = len(cluster.tracer.spans)
        record["_tracer"] = cluster.tracer
    return record
