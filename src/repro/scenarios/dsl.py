"""Scenario DSL: scales, load curves, phases, injections, registry.

A :class:`Scenario` is a declarative description of a production
episode: an ordered tuple of :class:`Phase` objects, each carrying a
piecewise-constant load curve (:class:`Segment`) and a set of
scheduled :class:`Injection` actions (crash, power blackout, rolling
upgrade, ...).  Scenarios are pure data — frozen dataclasses with no
simulator references — so the same definition replays byte-identically
at any :class:`ScenarioScale` and seed.

The catalog registers builders in ``SCENARIO_BUILDERS`` via
:func:`register_scenario`; :func:`build_scenario` validates the result
so a malformed definition fails at build time, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Workload mixes scenarios may use.  D and F are excluded: inserts
#: grow the key space mid-run and RMW issues dependent writes, both of
#: which would complicate the single-writer acked-write ledger
#: (:class:`repro.scenarios.load.WriteLedger`) for no scenario value.
SCENARIO_WORKLOADS = ("A", "B", "C", "WR")


@dataclass(frozen=True)
class ScenarioScale:
    """Cluster geometry and traffic sizing for one scale tier.

    Scenarios are written against abstract time (phase *units*) and
    abstract rate (multipliers on ``base_rate_qps``); the scale maps
    both onto concrete numbers.  ``heartbeat_period_us`` /
    ``heartbeat_timeout_us`` / ``request_timeout_us`` are tightened
    versus the library defaults so failure detection and client
    retries fit inside short smoke runs.
    """

    name: str
    num_jbofs: int
    ssds_per_jbof: int
    vnodes_per_ssd: int
    num_clients: int
    num_records: int
    value_size: int
    base_rate_qps: float
    #: One phase ``duration`` unit, in µs.
    phase_unit_us: float
    #: Quiet tail after the last phase (lets COPY / replay settle).
    settle_us: float
    heartbeat_period_us: float
    heartbeat_timeout_us: float
    request_timeout_us: float
    max_inflight: int


SCALES: Dict[str, ScenarioScale] = {
    "smoke": ScenarioScale(
        name="smoke", num_jbofs=3, ssds_per_jbof=2, vnodes_per_ssd=1,
        num_clients=2, num_records=240, value_size=128,
        base_rate_qps=8_000.0, phase_unit_us=60_000.0, settle_us=30_000.0,
        heartbeat_period_us=5_000.0, heartbeat_timeout_us=15_000.0,
        request_timeout_us=20_000.0, max_inflight=64),
    "small": ScenarioScale(
        name="small", num_jbofs=4, ssds_per_jbof=2, vnodes_per_ssd=1,
        num_clients=4, num_records=1_200, value_size=1_024,
        base_rate_qps=20_000.0, phase_unit_us=200_000.0,
        settle_us=80_000.0,
        heartbeat_period_us=10_000.0, heartbeat_timeout_us=30_000.0,
        request_timeout_us=40_000.0, max_inflight=128),
}


@dataclass(frozen=True)
class Segment:
    """One piece of a phase's load curve, active from ``frac`` on.

    ``rate`` multiplies the scale's ``base_rate_qps``; ``skew``, when
    set, switches the Zipfian constant from this point (a hot-key
    storm is a skew shift, not just a rate spike).
    """

    frac: float
    rate: float
    skew: Optional[float] = None


@dataclass(frozen=True)
class Injection:
    """A scheduled environment action inside a phase.

    ``action`` names an entry in
    :data:`repro.scenarios.injectors.ACTIONS`; ``params`` is a frozen
    kwargs tuple (use :func:`inject`).
    """

    frac: float
    action: str
    params: Tuple[Tuple[str, object], ...] = ()

    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)


def inject(frac: float, action: str, **params) -> Injection:
    """Sugar: ``inject(0.25, "crash", index=1)``."""
    return Injection(frac, action, tuple(sorted(params.items())))


@dataclass(frozen=True)
class Phase:
    """A named stretch of scenario time."""

    name: str
    #: Length in scale ``phase_unit_us`` units.
    duration: float = 1.0
    segments: Tuple[Segment, ...] = (Segment(0.0, 1.0),)
    injections: Tuple[Injection, ...] = ()


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive scaling policy (see :mod:`repro.scenarios.autoscaler`).

    Scale out when the rolling p99 exceeds ``p99_high_us``; scale back
    in when it drops below ``p99_low_us`` *and* energy per op says the
    extra JBOF is idle overhead.
    """

    check_interval_us: float = 10_000.0
    p99_high_us: float = 2_000.0
    p99_low_us: float = 600.0
    max_extra_jbofs: int = 1
    cooldown_us: float = 30_000.0
    #: Rolling latency-sample window the p99 is computed over.
    window: int = 256


@dataclass(frozen=True)
class Scenario:
    """A complete scenario definition."""

    name: str
    description: str
    phases: Tuple[Phase, ...]
    workload: str = "B"
    skew: float = 0.99
    #: None = inherit the runner's --protocol / default.
    replication_protocol: Optional[str] = None
    autoscaler: Optional[AutoscalerConfig] = None
    #: Extra ``ClusterConfig`` overrides, as a frozen kwargs tuple.
    config_overrides: Tuple[Tuple[str, object], ...] = ()


#: Scenario builder registry: name -> zero-arg callable returning a
#: Scenario.  Module-level by design (it *is* the catalog); mutated
#: only at import time via :func:`register_scenario`.
SCENARIO_BUILDERS: Dict[str, Callable[[], Scenario]] = {}


def register_scenario(builder: Callable[[], Scenario]):
    """Decorator: register a scenario builder under its built name."""
    scenario = builder()
    _validate(scenario)
    SCENARIO_BUILDERS[scenario.name] = builder
    return builder


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIO_BUILDERS))


def build_scenario(name: str) -> Scenario:
    """Build + validate one scenario by name."""
    if name not in SCENARIO_BUILDERS:
        raise KeyError("unknown scenario %r (have: %s)"
                       % (name, ", ".join(scenario_names())))
    scenario = SCENARIO_BUILDERS[name]()
    _validate(scenario)
    return scenario


def _validate(scenario: Scenario) -> None:
    if not scenario.phases:
        raise ValueError("scenario %r has no phases" % scenario.name)
    if scenario.workload not in SCENARIO_WORKLOADS:
        raise ValueError(
            "scenario %r: workload %r not in %s (inserts/RMW break the "
            "acked-write ledger)" % (scenario.name, scenario.workload,
                                     SCENARIO_WORKLOADS))
    if not 0.0 <= scenario.skew < 1.0:
        raise ValueError("scenario %r: skew %r outside [0, 1) (YCSB "
                         "Zipfian theta)" % (scenario.name, scenario.skew))
    seen = set()
    for phase in scenario.phases:
        if phase.name in seen:
            raise ValueError("scenario %r: duplicate phase %r"
                             % (scenario.name, phase.name))
        seen.add(phase.name)
        if phase.duration <= 0:
            raise ValueError("phase %r: duration must be positive"
                             % phase.name)
        if not phase.segments:
            raise ValueError("phase %r has no load segments" % phase.name)
        last = -1.0
        for segment in phase.segments:
            if not 0.0 <= segment.frac < 1.0:
                raise ValueError("phase %r: segment frac %r outside [0, 1)"
                                 % (phase.name, segment.frac))
            if segment.frac <= last:
                raise ValueError("phase %r: segment fracs must be strictly "
                                 "increasing" % phase.name)
            last = segment.frac
            if segment.rate < 0:
                raise ValueError("phase %r: negative rate" % phase.name)
            if segment.skew is not None and not 0.0 <= segment.skew < 1.0:
                raise ValueError(
                    "phase %r: segment skew %r outside [0, 1) (YCSB "
                    "Zipfian theta)" % (phase.name, segment.skew))
        if phase.segments[0].frac != 0.0:
            raise ValueError("phase %r: first segment must start at 0.0"
                             % phase.name)
        for injection in phase.injections:
            if not 0.0 <= injection.frac <= 1.0:
                raise ValueError("phase %r: injection frac %r outside [0, 1]"
                                 % (phase.name, injection.frac))
