"""The built-in scenario catalog.

Five production episodes, each exercising a different LEED claim:

* ``diurnal`` — a day of traffic in miniature: night trough, morning
  ramp, a flash crowd at peak, evening decay.  Pure load-shape; the
  baseline for availability/p99 regressions.
* ``hot_key_storm`` — a write-heavy workload whose Zipf skew shifts
  mid-run (0.6 → 0.99): the CRRS dirty-read machinery under a
  celebrity-key pile-on.
* ``failure_burst`` — a fail-stop crash (detected, re-replicated,
  rejoined) followed by a power blackout short enough to dodge the
  failure detector: flash-scan SegTbl rebuild + capacitor-WAL replay
  (§3.2.3), with zero lost acked writes asserted.
* ``rolling_upgrade`` — drain → replace → rejoin every JBOF in turn
  under live load: the zero-downtime upgrade drill.
* ``autoscale`` — a surge that trips the reactive autoscaler into
  adding a JBOF, then a trough that lets it scale back in on the
  p99/energy signal.

Definitions are scale-free: rates are multipliers on the scale's
``base_rate_qps`` and durations are in ``phase_unit_us`` units.
"""

from __future__ import annotations

from repro.scenarios.dsl import (AutoscalerConfig, Phase, Scenario, Segment,
                                 inject, register_scenario)


@register_scenario
def diurnal() -> Scenario:
    return Scenario(
        name="diurnal",
        description="Diurnal load curve with a flash crowd at peak",
        workload="B",
        phases=(
            Phase("night", 0.5, segments=(Segment(0.0, 0.35),)),
            Phase("morning_ramp", 1.0, segments=(
                Segment(0.0, 0.5),
                Segment(0.34, 0.75),
                Segment(0.67, 1.0))),
            Phase("peak_flash_crowd", 1.0, segments=(
                Segment(0.0, 1.0),
                Segment(0.4, 2.2),     # the crowd arrives
                Segment(0.7, 1.1))),   # and disperses
            Phase("evening", 0.5, segments=(Segment(0.0, 0.6),)),
        ))


@register_scenario
def hot_key_storm() -> Scenario:
    return Scenario(
        name="hot_key_storm",
        description="Write-heavy hot-key storm with mid-run skew shifts",
        workload="A",
        skew=0.6,
        phases=(
            Phase("steady", 0.5),
            Phase("storm", 1.0, segments=(
                Segment(0.0, 1.4, skew=0.95),
                Segment(0.5, 1.6, skew=0.99))),  # skew deepens mid-storm
            Phase("cooldown", 0.5, segments=(
                Segment(0.0, 0.8, skew=0.8),)),
        ))


@register_scenario
def failure_burst() -> Scenario:
    # The blackout outage must stay below the scale's
    # heartbeat_timeout_us so recovery exercises the *undetected*
    # power-loss path (flash scan + WAL replay), not failover.
    return Scenario(
        name="failure_burst",
        description="Fail-stop crash + rejoin, then a power blackout "
                    "with WAL-replay recovery",
        workload="A",
        phases=(
            Phase("warm", 0.5),
            Phase("burst", 1.5, injections=(
                inject(0.15, "crash", index=1),
                inject(0.70, "rejoin", index=1))),
            Phase("blackout", 1.0, injections=(
                inject(0.25, "power_blackout", index=2, outage_us=6_000.0),)),
            Phase("steady_state", 0.5),
        ))


@register_scenario
def rolling_upgrade() -> Scenario:
    return Scenario(
        name="rolling_upgrade",
        description="Rolling drain/replace/rejoin of every JBOF under load",
        workload="B",
        phases=(
            Phase("steady", 0.5),
            Phase("upgrade", 1.5, injections=(
                inject(0.10, "rolling_upgrade", version="v2",
                       pause_us=2_000.0),)),
            Phase("verify", 0.5),
        ))


@register_scenario
def autoscale() -> Scenario:
    return Scenario(
        name="autoscale",
        description="Reactive JBOF scale-out on a p99 surge, scale-in "
                    "on the energy trough",
        workload="B",
        # Cooldown must outlast a scale event's own migration churn
        # (COPY + client ring refreshes spike p99 for tens of ms at
        # smoke scale) or the scaler flaps: it reacts to the latency
        # of its *own* scale-in with a pointless scale-out.
        autoscaler=AutoscalerConfig(
            check_interval_us=8_000.0,
            p99_high_us=450.0,
            p99_low_us=320.0,
            max_extra_jbofs=1,
            cooldown_us=80_000.0),
        phases=(
            Phase("calm", 0.5, segments=(Segment(0.0, 0.6),)),
            # ~25x base saturates the smoke cluster (p99 ~600us with
            # client-side drops); the reactive scaler must respond.
            Phase("surge", 1.5, segments=(Segment(0.0, 25.0),)),
            Phase("relax", 1.0, segments=(Segment(0.0, 0.4),)),
        ))
