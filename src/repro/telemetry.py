"""Cluster telemetry: one-call snapshots of every component's stats.

Gathers the counters that the nodes, engines, stores, devices, and
clients already maintain into a structured snapshot plus a rendered
text report — the observability layer an operator of the real system
would read on a dashboard.

Usage::

    from repro.telemetry import snapshot, render
    print(render(snapshot(cluster)))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class DeviceSnapshot:
    name: str
    reads: int
    writes: int
    read_mb: float
    write_mb: float
    mean_read_us: float
    mean_write_us: float
    busy_fraction: float


@dataclass
class VNodeSnapshot:
    vnode_id: str
    state: str
    live_objects: int
    key_log_fill: float
    value_log_fill: float
    engine_tokens: int
    waiting: int
    completed: int
    rejected: int
    reads_served: int
    reads_shipped: int
    writes_forwarded: int
    writes_committed: int
    nacks: int
    dirty_keys: int


@dataclass
class NodeSnapshot:
    address: str
    alive: bool
    mean_core_utilization: float
    watts_now: float
    energy_joules: float
    swap_redirects: int
    requests_completed: int
    devices: List[DeviceSnapshot] = field(default_factory=list)
    vnodes: List[VNodeSnapshot] = field(default_factory=list)


@dataclass
class ClientSnapshot:
    address: str
    operations: int
    ok: int
    not_found: int
    failures: int
    retries: int
    nacks: int
    timeouts: int
    mean_latency_us: float
    p50_latency_us: float
    p95_latency_us: float
    p99_latency_us: float
    p999_latency_us: float


@dataclass
class ClusterSnapshot:
    time_us: float
    ring_version: int
    total_energy_joules: float
    nodes: List[NodeSnapshot] = field(default_factory=list)
    clients: List[ClientSnapshot] = field(default_factory=list)


def snapshot(cluster) -> ClusterSnapshot:
    """Collect a :class:`ClusterSnapshot` from a LeedCluster."""
    sim = cluster.sim
    snap = ClusterSnapshot(
        time_us=sim.now,
        ring_version=cluster.control_plane.ring_version,
        total_energy_joules=cluster.energy_joules())
    for node in cluster.jbofs:
        node_snap = NodeSnapshot(
            address=node.address,
            alive=node.alive,
            mean_core_utilization=node.cpu.mean_utilization(),
            watts_now=node.meter.sample().watts,
            energy_joules=node.meter.energy_joules(),
            swap_redirects=node.swap_redirects,
            requests_completed=node.requests_completed)
        for ssd in node.ssds:
            stats = ssd.stats
            elapsed = max(sim.now, 1e-9)
            node_snap.devices.append(DeviceSnapshot(
                name=ssd.name,
                reads=stats.reads_completed,
                writes=stats.writes_completed,
                read_mb=stats.read_bytes / 1e6,
                write_mb=stats.write_bytes / 1e6,
                mean_read_us=stats.mean_read_latency_us,
                mean_write_us=stats.mean_write_latency_us,
                busy_fraction=min(
                    stats.busy_time_us
                    / max(ssd.profile.channels, 1) / elapsed, 1.0)))
        for vnode_id, runtime in sorted(node.vnodes.items()):
            store = runtime.store
            key_fill = getattr(getattr(store, "key_log", None),
                               "fill_fraction", lambda: 0.0)()
            value_fill = getattr(getattr(store, "value_log", None),
                                 "fill_fraction", lambda: 0.0)()
            if hasattr(store, "log"):  # FAWN single-log store
                key_fill = store.log.fill_fraction()
            node_snap.vnodes.append(VNodeSnapshot(
                vnode_id=vnode_id,
                state=runtime.state,
                live_objects=getattr(store, "live_objects", 0),
                key_log_fill=key_fill,
                value_log_fill=value_fill,
                engine_tokens=runtime.engine.tokens,
                waiting=runtime.engine.waiting_occupancy,
                completed=runtime.engine.stats.completed,
                rejected=runtime.engine.stats.rejected,
                reads_served=runtime.stats.reads_served,
                reads_shipped=runtime.stats.reads_shipped,
                writes_forwarded=runtime.stats.writes_forwarded,
                writes_committed=runtime.stats.writes_committed,
                nacks=runtime.stats.nacks,
                dirty_keys=len(runtime.dirty)))
        snap.nodes.append(node_snap)
    for client in cluster.clients:
        stats = client.stats
        snap.clients.append(ClientSnapshot(
            address=client.address,
            operations=stats.operations,
            ok=stats.ok,
            not_found=stats.not_found,
            failures=stats.failures,
            retries=stats.retries,
            nacks=stats.nacks,
            timeouts=stats.timeouts,
            mean_latency_us=stats.mean_latency_us(),
            p50_latency_us=stats.histogram.p50,
            p95_latency_us=stats.histogram.p95,
            p99_latency_us=stats.histogram.p99,
            p999_latency_us=stats.histogram.p999))
    return snap


def render(snap: ClusterSnapshot) -> str:
    """Render a snapshot as a fixed-width text report."""
    lines = []
    lines.append("cluster @ t=%.1f ms  ring v%d  energy %.2f J"
                 % (snap.time_us / 1e3, snap.ring_version,
                    snap.total_energy_joules))
    for node in snap.nodes:
        lines.append("")
        lines.append("%s  %s  cores %.0f%%  %.1f W  %.2f J  "
                     "swaps %d  served %d"
                     % (node.address,
                        "up" if node.alive else "DOWN",
                        100 * node.mean_core_utilization,
                        node.watts_now, node.energy_joules,
                        node.swap_redirects, node.requests_completed))
        for device in node.devices:
            lines.append("  %-16s rd %6d (%7.2f MB, %5.1f us)  "
                         "wr %6d (%7.2f MB, %5.1f us)  busy %4.1f%%"
                         % (device.name, device.reads, device.read_mb,
                            device.mean_read_us, device.writes,
                            device.write_mb, device.mean_write_us,
                            100 * device.busy_fraction))
        for vnode in node.vnodes:
            lines.append("  %-16s %-8s live %5d  klog %3.0f%% vlog %3.0f%%  "
                         "tok %3d wait %2d  done %6d rej %3d"
                         % (vnode.vnode_id.split("/")[-1], vnode.state,
                            vnode.live_objects,
                            100 * vnode.key_log_fill,
                            100 * vnode.value_log_fill,
                            vnode.engine_tokens, vnode.waiting,
                            vnode.completed, vnode.rejected))
            if (vnode.reads_shipped or vnode.nacks or vnode.dirty_keys
                    or vnode.writes_committed):
                lines.append("  %-16s reads %d (shipped %d)  writes fwd %d "
                             "commit %d  nacks %d  dirty %d"
                             % ("", vnode.reads_served,
                                vnode.reads_shipped,
                                vnode.writes_forwarded,
                                vnode.writes_committed, vnode.nacks,
                                vnode.dirty_keys))
    if snap.clients:
        lines.append("")
        for client in snap.clients:
            lines.append("%-10s ops %6d (ok %d / nf %d / fail %d)  "
                         "retry %d nack %d timeout %d  "
                         "lat %.0f us p50 %.0f p99 %.0f"
                         % (client.address, client.operations, client.ok,
                            client.not_found, client.failures,
                            client.retries, client.nacks, client.timeouts,
                            client.mean_latency_us, client.p50_latency_us,
                            client.p99_latency_us))
    return "\n".join(lines)
