"""simlint: simulation-safety static analysis for the reproduction.

A discrete-event reproduction is only credible if a fixed seed yields
a bit-for-bit identical run.  Three leak classes silently break that:
ad-hoc RNG construction outside the named-stream registry, wall-clock
reads inside simulation-visible code, and iteration over
hash-randomized containers feeding scheduling decisions.  This
package provides an AST rule engine (``repro.lint.engine``), the rule
catalog SIM001-SIM005 (``repro.lint.rules``), a CLI
(``python -m repro.lint``), and a runtime determinism verifier
(``repro.lint.determinism``) that replays a seeded cluster workload
and compares event-schedule digests.

See ``docs/determinism.md`` for the rule catalog and suppression
syntax.
"""

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, LintReport, Rule, run, to_json, to_text

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "run",
    "to_json",
    "to_text",
]
