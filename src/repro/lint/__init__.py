"""simlint: simulation-safety static analysis for the reproduction.

A discrete-event reproduction is only credible if a fixed seed yields
a bit-for-bit identical run.  The per-line rules catch RNG, clock,
ordering, layering, and shared-state leaks; the dataflow rules
(``repro.lint.races``, built on the CFG framework in
``repro.lint.flow``) catch yield-point atomicity races, cross-shard
node references escaping RPC, and hash-order data reaching digests.
This package provides the AST rule engine (``repro.lint.engine``),
the generated rule catalog (``repro.lint.rules`` — run
``python -m repro.lint --list-rules`` for the authoritative list), a
CLI with text/JSON/SARIF output and baseline support, a runtime
determinism verifier (``repro.lint.determinism``), and the dynamic
order-dependence sanitizer (``repro.lint.sanitize``) that permutes
same-timestamp scheduling ties and checks figure digests stay put.

See ``docs/static-analysis.md`` for the rule catalog, suppression
syntax, and the sanitizer's invariance contract.
"""

from repro.lint.config import LintConfig
from repro.lint.engine import (
    Finding,
    LintReport,
    ModuleIndex,
    Rule,
    run,
    to_json,
    to_text,
)
from repro.lint.sarif import to_sarif

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleIndex",
    "Rule",
    "run",
    "to_json",
    "to_sarif",
    "to_text",
]
