"""SARIF 2.1.0 rendering for simlint reports.

SARIF (Static Analysis Results Interchange Format) is what code
hosts and IDEs ingest for inline annotation; emitting it lets the CI
lint jobs publish findings next to the JSON artifact without a
bespoke converter.  Only the minimal, spec-valid subset is produced:
one run, one driver, one result per finding, one rule descriptor per
registered rule.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.lint.engine import LintReport, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(report: LintReport,
             rules: Optional[Iterable[Rule]] = None) -> str:
    """Render ``report`` as a SARIF 2.1.0 log (stable key order)."""
    descriptors = []
    for rule in rules or ():
        descriptors.append({
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {
                "text": (rule.__doc__ or rule.title).strip().split("\n")[0],
            },
        })
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        })
    invocation = {
        "executionSuccessful": not report.errors,
        "exitCode": report.exit_code,
    }
    if report.errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": error}}
            for error in report.errors
        ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "rules": descriptors,
                },
            },
            "invocations": [invocation],
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
