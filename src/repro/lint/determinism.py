"""Runtime determinism verifier.

The static rules catch the leak *patterns*; this harness checks the
property itself: a seeded cluster workload, run twice, must execute
the exact same event schedule.  The schedule is captured as a SHA-256
over ``(time, priority, sequence, event-kind)`` of every event the
simulator pops (:meth:`repro.sim.core.Simulator.enable_schedule_digest`),
alongside the rendered telemetry snapshot.  Identical seeds must give
byte-identical digests and telemetry; distinct seeds must diverge.

Run it directly::

    python -m repro.lint.determinism [--seed N] [--alt-seed M]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import telemetry
from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.datastore import StoreConfig
from repro.workloads.driver import ClosedLoopDriver
from repro.workloads.ycsb import YCSBWorkload


@dataclass(frozen=True)
class ProbeResult:
    """One instrumented cluster run."""

    seed: int
    digest: str
    events: int
    final_time_us: float
    telemetry_report: str


def run_probe(seed: int = 0, workload: str = "A", num_records: int = 120,
              num_ops: int = 240, value_size: int = 128) -> ProbeResult:
    """Build a small LEED cluster, load it, drive it, digest it."""
    cluster = LeedCluster(ClusterConfig(
        num_jbofs=2, ssds_per_jbof=2, num_clients=2, replication=2,
        store=StoreConfig(num_segments=64, key_log_bytes=1 << 20,
                          value_log_bytes=4 << 20),
        seed=seed))
    cluster.sim.enable_schedule_digest()
    mix = YCSBWorkload(workload, num_records, value_size=value_size,
                       seed=seed)
    cluster.start()
    loaded = cluster.sim.process(
        cluster.load(mix.load_pairs(), parallelism=16),
        name="determinism.load")
    cluster.sim.run(until=loaded)
    drivers = [
        ClosedLoopDriver(cluster.sim, client, mix,
                         max(num_ops // len(cluster.clients), 1),
                         concurrency=8)
        for client in cluster.clients
    ]
    procs = [cluster.sim.process(driver.run(), name="determinism.drive")
             for driver in drivers]
    cluster.sim.run(until=cluster.sim.all_of(procs))
    return ProbeResult(
        seed=seed,
        digest=cluster.sim.schedule_digest,
        events=cluster.sim.schedule_digest_events,
        final_time_us=cluster.sim.now,
        telemetry_report=telemetry.render(telemetry.snapshot(cluster)),
    )


@dataclass(frozen=True)
class DeterminismReport:
    """Same-seed replay and cross-seed divergence, in one verdict."""

    first: ProbeResult
    replay: ProbeResult
    alternate: ProbeResult

    @property
    def replay_identical(self) -> bool:
        return (self.first.digest == self.replay.digest
                and self.first.events == self.replay.events
                and self.first.telemetry_report == self.replay.telemetry_report)

    @property
    def seeds_diverge(self) -> bool:
        return self.first.digest != self.alternate.digest

    @property
    def ok(self) -> bool:
        return self.replay_identical and self.seeds_diverge

    def format(self) -> str:
        lines = [
            "determinism probe: seed=%d events=%d t=%.1fus"
            % (self.first.seed, self.first.events, self.first.final_time_us),
            "  run A digest: %s" % self.first.digest,
            "  run B digest: %s" % self.replay.digest,
            "  seed=%d digest: %s" % (self.alternate.seed,
                                      self.alternate.digest),
            "  same-seed replay identical: %s" % self.replay_identical,
            "  distinct seeds diverge:     %s" % self.seeds_diverge,
            "verdict: %s" % ("deterministic" if self.ok
                             else "NONDETERMINISTIC"),
        ]
        return "\n".join(lines)


def verify(seed: int = 0, alt_seed: int = 1,
           **probe_kwargs) -> DeterminismReport:
    """Run the probe twice at ``seed`` and once at ``alt_seed``."""
    if seed == alt_seed:
        raise ValueError("seed and alt_seed must differ")
    return DeterminismReport(
        first=run_probe(seed=seed, **probe_kwargs),
        replay=run_probe(seed=seed, **probe_kwargs),
        alternate=run_probe(seed=alt_seed, **probe_kwargs),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.determinism",
        description="Verify same-seed replay determinism of the "
                    "simulated cluster.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--alt-seed", type=int, default=1)
    parser.add_argument("--ops", type=int, default=240)
    parser.add_argument("--records", type=int, default=120)
    args = parser.parse_args(argv)
    if args.seed == args.alt_seed:
        parser.error("--seed and --alt-seed must differ")
    report = verify(seed=args.seed, alt_seed=args.alt_seed,
                    num_ops=args.ops, num_records=args.records)
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
