"""Dynamic order-dependence sanitizer (the runtime half of SIM007+).

The static rules claim that handlers are atomic between scheduling
points and that no code depends on the *accidental* FIFO order of
same-timestamp ties.  This module checks the claim TSan-style: run
the same seeded YCSB workload several times with
``Simulator(sanitize=True)`` breaking every same-timestamp tie with a
named RNG stream (``sim.sanitize``), and assert that the **figure
digest** — a hash of the run's functional outcome — is byte-identical
across permutations while the *schedule* digests differ (proving the
permutations actually reordered events).

What the figure digest covers, and what it deliberately does not:

* covered — operations completed and failed, and a post-run
  verification sweep: every key the workload ever wrote must read
  back with one of the values actually written to it.  A lost update
  of the CircularLog class (PR 1) or any cross-handler atomicity
  violation shows up here as a mismatch or a digest change.
* excluded — timing aggregates (sim elapsed, latency percentiles).
  The simulated NIC and SSD are stateful FCFS resources, and the SSD
  jitter stream is drawn in dispatch order, so *timing* legitimately
  depends on tie order (measured: YCSB-WR sim-elapsed moves ~24%
  across permutations on the smoke shape) — exactly as two legal
  schedules of a real system finish at different times.  Functional
  results must not.

Usage::

    python -m repro.lint.sanitize                # perf-smoke shape
    python -m repro.lint.sanitize -w WR --permutations 4

Exit codes: 0 invariant, 1 order dependence detected.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: The perf-smoke shape (mirrors ``repro.bench.perf`` --smoke).
SMOKE_SEED = 11
SMOKE_VALUE_SIZE = 256
SMOKE_RECORDS = 300
SMOKE_OPS = 600
SMOKE_CONCURRENCY = 24
SMOKE_JBOFS = 3
SMOKE_CLIENTS = 2


class RecordingWorkload:
    """Wraps a YCSB workload, remembering every value written per key.

    The verification sweep checks membership, not equality: concurrent
    updates to one key may legally land in any order, so the final
    value must be *one of* the written values — any other byte string
    means corruption or a lost/phantom write.  Delete ops drop the
    key (none of the shipped mixes delete, but the wrapper should not
    silently mis-verify one that does).
    """

    def __init__(self, inner):
        self._inner = inner
        self.written: Dict[bytes, Set[bytes]] = {}

    def load_pairs(self):
        for key, value in self._inner.load_pairs():
            self.written.setdefault(key, set()).add(value)
            yield key, value

    def next_operation(self):
        operation = self._inner.next_operation()
        if operation.op == "del":
            self.written.pop(operation.key, None)
        elif operation.value is not None:
            self.written.setdefault(operation.key, set()).add(operation.value)
        return operation

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass
class SanitizeProbe:
    """One sanitized (or FIFO-baseline) run of the workload."""

    workload: str
    sanitize_seed: Optional[int]     #: None = FIFO baseline order
    ops_completed: int
    ops_failed: int
    keys_checked: int
    keys_verified: int
    mismatches: List[str]            #: keys that read back wrong
    figure_digest: str               #: hash of the functional outcome
    schedule_digest: Optional[str]   #: hash of the dispatch order
    #: Informational only — excluded from the figure digest because
    #: FCFS resource timing legitimately depends on tie order.
    sim_elapsed_us: float = 0.0
    events_dispatched: int = 0

    def format(self) -> str:
        label = ("fifo" if self.sanitize_seed is None
                 else "perm[%d]" % self.sanitize_seed)
        return ("%s %-8s ops=%d failed=%d verified=%d/%d "
                "figure=%s schedule=%s elapsed=%.0fus" % (
                    self.workload, label, self.ops_completed,
                    self.ops_failed, self.keys_verified, self.keys_checked,
                    self.figure_digest[:12],
                    (self.schedule_digest or "-")[:12],
                    self.sim_elapsed_us))


@dataclass
class SanitizeReport:
    """Invariance verdict over one workload's probe set."""

    workload: str
    probes: List[SanitizeProbe] = field(default_factory=list)

    @property
    def figure_invariant(self) -> bool:
        return len({probe.figure_digest for probe in self.probes}) == 1

    @property
    def schedules_permuted(self) -> bool:
        """True when every probe saw a distinct dispatch order."""
        digests = [probe.schedule_digest for probe in self.probes]
        return len(set(digests)) == len(digests)

    @property
    def clean(self) -> bool:
        return (bool(self.probes) and self.figure_invariant
                and self.schedules_permuted
                and all(not probe.mismatches for probe in self.probes))

    def format(self) -> str:
        lines = [probe.format() for probe in self.probes]
        if not self.figure_invariant:
            lines.append("%s: ORDER DEPENDENCE: figure digests differ "
                         "across permutations" % self.workload)
        elif not self.schedules_permuted:
            lines.append("%s: sanitizer ineffective: schedule digests "
                         "collide (ties were not actually permuted)"
                         % self.workload)
        else:
            lines.append("%s: functional outcome invariant across %d "
                         "orderings" % (self.workload, len(self.probes)))
        return "\n".join(lines)


def _figure_digest(payload: Dict[str, object]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


def _verification_sweep(cluster, written: Dict[bytes, Set[bytes]]):
    """Generator: read back every written key on client 0."""
    client = cluster.clients[0]
    verified: List[bytes] = []
    mismatches: List[Tuple[bytes, str]] = []
    for key in sorted(written):
        result = yield from client.get(key)
        if not result.ok:
            mismatches.append((key, "status=%s" % result.status))
        elif result.value not in written[key]:
            mismatches.append((key, "value not among %d written values"
                               % len(written[key])))
        else:
            verified.append(key)
    return verified, mismatches


def run_probe(workload_name: str, sanitize_seed: Optional[int],
              records: int = SMOKE_RECORDS, ops: int = SMOKE_OPS,
              concurrency: int = SMOKE_CONCURRENCY,
              num_jbofs: int = SMOKE_JBOFS,
              num_clients: int = SMOKE_CLIENTS,
              value_size: int = SMOKE_VALUE_SIZE,
              seed: int = SMOKE_SEED) -> SanitizeProbe:
    """One seeded run under the given tie order; returns its probe."""
    from repro.bench.harness import (
        build_cluster,
        load_cluster,
        run_closed_loop,
    )
    from repro.workloads.ycsb import YCSBWorkload

    cluster = build_cluster(
        "leed", scale="quick", value_size=value_size, seed=seed,
        num_nodes=num_jbofs, num_clients=num_clients,
        sanitize_seed=sanitize_seed)
    cluster.sim.enable_schedule_digest()
    workload = RecordingWorkload(YCSBWorkload(
        workload_name, num_records=records, seed=seed,
        value_size=value_size))
    load_cluster(cluster, workload, parallelism=16)
    stats = run_closed_loop(cluster, workload, ops, concurrency)
    sweep = cluster.sim.process(
        _verification_sweep(cluster, workload.written), name="sanitize.sweep")
    cluster.sim.run(until=sweep)
    verified, mismatches = sweep.value
    cluster.shutdown()
    cluster.sim.run()
    mismatch_keys = sorted("%s (%s)" % (key.decode("ascii", "replace"),
                                        reason)
                           for key, reason in mismatches)
    figure = {
        "workload": workload_name,
        "records": records,
        "ops_requested": ops,
        "value_size": value_size,
        "seed": seed,
        "ops_completed": stats.completed,
        "ops_failed": stats.failed,
        "keys_checked": len(workload.written),
        "keys_verified": len(verified),
        "mismatches": mismatch_keys,
    }
    return SanitizeProbe(
        workload=workload_name,
        sanitize_seed=sanitize_seed,
        ops_completed=stats.completed,
        ops_failed=stats.failed,
        keys_checked=len(workload.written),
        keys_verified=len(verified),
        mismatches=mismatch_keys,
        figure_digest=_figure_digest(figure),
        schedule_digest=cluster.sim.schedule_digest,
        sim_elapsed_us=stats.elapsed_us,
        events_dispatched=cluster.sim.events_dispatched,
    )


def verify(workload: str = "B", permutations: int = 3,
           include_fifo: bool = True, **shape) -> SanitizeReport:
    """Probe one workload under FIFO plus ``permutations`` tie orders.

    The report is clean when every run produced the same figure
    digest, no verification mismatches, and pairwise-distinct
    schedule digests (the permutation actually happened).
    """
    report = SanitizeReport(workload)
    if include_fifo:
        report.probes.append(run_probe(workload, None, **shape))
    for sanitize_seed in range(1, permutations + 1):
        report.probes.append(run_probe(workload, sanitize_seed, **shape))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.sanitize",
        description="Order-dependence sanitizer: permute same-timestamp "
                    "scheduling ties and check figure digests stay put.")
    parser.add_argument("-w", "--workload", action="append",
                        dest="workloads", metavar="NAME",
                        help="YCSB mix to probe (repeatable; default: B)")
    parser.add_argument("--permutations", type=int, default=3,
                        help="number of sanitized tie orders (default 3)")
    parser.add_argument("--records", type=int, default=SMOKE_RECORDS)
    parser.add_argument("--ops", type=int, default=SMOKE_OPS)
    parser.add_argument("--concurrency", type=int, default=SMOKE_CONCURRENCY)
    parser.add_argument("--jbofs", type=int, default=SMOKE_JBOFS)
    parser.add_argument("--clients", type=int, default=SMOKE_CLIENTS)
    parser.add_argument("--value-size", type=int, default=SMOKE_VALUE_SIZE)
    parser.add_argument("--seed", type=int, default=SMOKE_SEED)
    args = parser.parse_args(argv)

    shape = dict(records=args.records, ops=args.ops,
                 concurrency=args.concurrency, num_jbofs=args.jbofs,
                 num_clients=args.clients, value_size=args.value_size,
                 seed=args.seed)
    failures = 0
    for workload in (args.workloads or ["B"]):
        report = verify(workload, permutations=args.permutations, **shape)
        print(report.format())
        if not report.clean:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
