"""Command-line front end for simlint.

Usage::

    python -m repro.lint [paths...] [--format text|json|sarif]
    repro-lint src                      # console script
    python -m repro.lint --list-rules
    python -m repro.lint src --select SIM007,SIM008,SIM009
    python -m repro.lint src --write-baseline lint-baseline.json
    python -m repro.lint src --baseline lint-baseline.json

Exit codes: 0 clean, 1 findings, 2 parse/read errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.engine import (
    load_baseline,
    run,
    to_json,
    to_text,
    write_baseline,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.lint.rules import catalog_range, default_rules

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulation-safety static analysis (rules %s; see "
                    "docs/static-analysis.md)." % catalog_range())
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(e.g. SIM007,SIM008)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="tolerate findings recorded in this "
                             "baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        dest="write_baseline",
                        help="record current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    config = LintConfig()
    if args.list_rules:
        for rule in default_rules(config):
            print("%s  %s" % (rule.rule_id, rule.title))
        return 0

    select = None
    if args.select:
        select = [rule_id for rule_id in args.select.split(",") if rule_id]
    baseline = load_baseline(args.baseline) if args.baseline else None
    try:
        report = run(args.paths or ["src"], config,
                     select=select, baseline=baseline)
    except ValueError as exc:
        parser.error(str(exc))

    if args.write_baseline:
        Path(args.write_baseline).write_text(
            write_baseline(report) + "\n", encoding="utf-8")
        print("wrote %d finding(s) to baseline %s"
              % (len(report.findings), args.write_baseline))
        return 2 if report.errors else 0

    if args.format == "json":
        rendered = to_json(report)
    elif args.format == "sarif":
        from repro.lint.sarif import to_sarif
        active = default_rules(config)
        if select:
            wanted = {rule_id.strip().upper() for rule_id in select}
            active = [rule for rule in active if rule.rule_id in wanted]
        rendered = to_sarif(report, active)
    else:
        rendered = to_text(report)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
