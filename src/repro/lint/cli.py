"""Command-line front end for simlint.

Usage::

    python -m repro.lint [paths...] [--format text|json]
    repro-lint src                      # console script
    python -m repro.lint --list-rules

Exit codes: 0 clean, 1 findings, 2 parse/read errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.engine import run, to_json, to_text


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulation-safety static analysis (rules "
                    "SIM001-SIM005; see docs/determinism.md).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    config = LintConfig()
    if args.list_rules:
        from repro.lint.rules import default_rules
        for rule in default_rules(config):
            print("%s  %s" % (rule.rule_id, rule.title))
        return 0

    report = run(args.paths or ["src"], config)
    print(to_json(report) if args.format == "json" else to_text(report))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
