"""Control-flow-graph and dataflow scaffolding for the simlint rules.

The per-line rules (SIM001-SIM006) pattern-match single statements.
The race-oriented rules (SIM007-SIM009, :mod:`repro.lint.races`) need
to reason about *paths*: a value read before a ``yield`` and written
after it, a node reference flowing through locals and containers to a
method call, set-order data reaching a digest.  This module provides
the shared machinery:

* :func:`build_cfg` — a statement-level control-flow graph for one
  function body, with branch tests materialised as block elements so
  reads inside ``if``/``while`` conditions are visible to analyses;
* :class:`DataflowAnalysis` — a worklist fixpoint driver over a CFG;
* small AST helpers (:func:`dotted`, :func:`scope_nodes`,
  :func:`nested_functions`, :func:`count_yields`) shared by the rule
  catalog.

Every ``yield`` / ``yield from`` / ``await`` is a *scheduling point*:
under the cooperative run-to-completion model (the SPDK reactor LEED
runs on, mirrored by :mod:`repro.sim.process`) a handler owns the
world between scheduling points and owns nothing across them.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: AST expression nodes that suspend the enclosing handler.
YIELD_NODES = (ast.Yield, ast.YieldFrom, ast.Await)

#: Function-ish scopes that open a new lexical namespace.
SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """All descendants of ``scope`` in the same lexical scope."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, SCOPE_NODES):
            continue
        yield child
        yield from scope_nodes(child)


def nested_functions(scope: ast.AST) -> Iterator[ast.AST]:
    """Function definitions nested directly under ``scope``."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
        elif not isinstance(child, ast.Lambda):
            yield from nested_functions(child)


def count_yields(node: ast.AST) -> int:
    """Scheduling points inside ``node``, ignoring nested functions.

    A ``node`` that is itself a function definition counts as zero:
    from the enclosing scope's view its yields belong to the nested
    generator, not to the caller's control flow.
    """
    if isinstance(node, SCOPE_NODES):
        return 0
    total = 0
    for child in ast.iter_child_nodes(node):
        if isinstance(child, SCOPE_NODES):
            continue
        if isinstance(child, YIELD_NODES):
            total += 1
        total += count_yields(child)
    return total


def has_yield(func: ast.AST) -> bool:
    """True when ``func``'s own body contains a scheduling point."""
    return any(count_yields(stmt) for stmt in getattr(func, "body", []))


class Block:
    """One straight-line run of CFG elements.

    ``elements`` holds statements in execution order; branch tests and
    loop iterables are included as bare expression nodes so dataflow
    transfer functions observe the reads they perform.
    """

    __slots__ = ("index", "elements", "successors")

    def __init__(self, index: int):
        self.index = index
        self.elements: List[ast.AST] = []
        self.successors: List[int] = []

    def link(self, other: "Block") -> None:
        if other.index not in self.successors:
            self.successors.append(other.index)

    def __repr__(self):
        return "<Block %d stmts=%d succ=%r>" % (
            self.index, len(self.elements), self.successors)


class ControlFlowGraph:
    """Statement-level CFG for one function body."""

    def __init__(self):
        self.blocks: List[Block] = []
        self.entry: Optional[Block] = None

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds


class _CfgBuilder:
    """Recursive-descent CFG construction.

    Constructs that do not branch (With, simple statements) extend the
    current block; branching constructs split it.  ``try`` bodies are
    modelled conservatively: every handler is reachable from the start
    of the body, and ``finally`` runs on the fall-through path — precise
    enough for may-analyses, which is all the rules need.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        #: (continue_target, break_target) per enclosing loop.
        self.loop_stack: List[Tuple[Block, Block]] = []
        #: Exit sink for return/raise paths (analysis never reads it).
        self.exit_block = cfg.new_block()

    def build(self, body: List[ast.stmt], entry: Block) -> Block:
        """Lay ``body`` down starting at ``entry``; returns the block
        control falls out of (possibly unreachable)."""
        current = entry
        for stmt in body:
            current = self.statement(stmt, current)
        return current

    def statement(self, stmt: ast.stmt, current: Block) -> Block:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                current.elements.append(item.context_expr)
            return self.build(stmt.body, current)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_stack:
                head, after = self.loop_stack[-1]
                current.link(after if isinstance(stmt, ast.Break) else head)
            return self.cfg.new_block()  # unreachable fall-through
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.elements.append(stmt)
            current.link(self.exit_block)
            return self.cfg.new_block()  # unreachable fall-through
        current.elements.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Block:
        current.elements.append(stmt.test)
        then_entry = self.cfg.new_block()
        current.link(then_entry)
        then_exit = self.build(stmt.body, then_entry)
        after = self.cfg.new_block()
        then_exit.link(after)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            current.link(else_entry)
            self.build(stmt.orelse, else_entry).link(after)
        else:
            current.link(after)
        return after

    def _loop(self, stmt, current: Block) -> Block:
        head = self.cfg.new_block()
        current.link(head)
        if isinstance(stmt, ast.While):
            head.elements.append(stmt.test)
        else:
            head.elements.append(stmt.iter)
        body_entry = self.cfg.new_block()
        after = self.cfg.new_block()
        head.link(body_entry)
        head.link(after)
        if not isinstance(stmt, ast.While):
            # The loop binding executes on entry to each iteration.
            body_entry.elements.append(
                ast.copy_location(
                    ast.Assign(targets=[stmt.target], value=stmt.iter),
                    stmt))
        self.loop_stack.append((head, after))
        body_exit = self.build(stmt.body, body_entry)
        self.loop_stack.pop()
        body_exit.link(head)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            head.link(else_entry)
            self.build(stmt.orelse, else_entry).link(after)
        return after

    def _try(self, stmt: ast.Try, current: Block) -> Block:
        body_entry = self.cfg.new_block()
        current.link(body_entry)
        after = self.cfg.new_block()
        body_exit = self.build(stmt.body, body_entry)
        else_exit = (self.build(stmt.orelse, self.cfg.new_block())
                     if stmt.orelse else None)
        if else_exit is not None:
            body_exit.link(else_exit)  # re-using body_exit -> else chain
        handler_exits = []
        for handler in stmt.handlers:
            handler_entry = self.cfg.new_block()
            # An exception may fire anywhere in the body: model the
            # handler as reachable from the body's entry.
            body_entry.link(handler_entry)
            handler_exits.append(self.build(handler.body, handler_entry))
        tails = [else_exit if else_exit is not None else body_exit]
        tails.extend(handler_exits)
        if stmt.finalbody:
            final_entry = self.cfg.new_block()
            for tail in tails:
                tail.link(final_entry)
            self.build(stmt.finalbody, final_entry).link(after)
        else:
            for tail in tails:
                tail.link(after)
        return after


def build_cfg(func: ast.AST) -> ControlFlowGraph:
    """CFG for one FunctionDef/AsyncFunctionDef body."""
    cfg = ControlFlowGraph()
    builder = _CfgBuilder(cfg)
    entry = cfg.new_block()
    cfg.entry = entry
    tail = builder.build(list(getattr(func, "body", [])), entry)
    tail.link(builder.exit_block)
    return cfg


class DataflowAnalysis:
    """Worklist fixpoint driver over a :class:`ControlFlowGraph`.

    Parameterised by three callables:

    * ``initial()`` — the state at function entry;
    * ``transfer(block, state)`` — returns the state after executing
      ``block`` (must not mutate its argument);
    * ``merge(a, b)`` — join of two path states.

    States must define ``__eq__``; the driver iterates until entry
    states stop changing, with a hard cap proportional to the CFG size
    as a defence against non-monotone transfer bugs.
    """

    def __init__(self, cfg: ControlFlowGraph,
                 initial: Callable[[], object],
                 transfer: Callable[[Block, object], object],
                 merge: Callable[[object, object], object]):
        self.cfg = cfg
        self.initial = initial
        self.transfer = transfer
        self.merge = merge
        #: Entry state per block index, populated by :meth:`run`.
        self.entry_states: Dict[int, object] = {}

    def run(self) -> None:
        cfg = self.cfg
        if cfg.entry is None:
            return
        self.entry_states = {cfg.entry.index: self.initial()}
        worklist = [cfg.entry.index]
        budget = max(len(cfg.blocks), 1) * 8 + 32
        while worklist and budget > 0:
            budget -= 1
            index = worklist.pop()
            state = self.entry_states.get(index)
            if state is None:
                continue
            out = self.transfer(cfg.blocks[index], state)
            for succ in cfg.blocks[index].successors:
                prior = self.entry_states.get(succ)
                joined = out if prior is None else self.merge(prior, out)
                if prior is None or joined != prior:
                    self.entry_states[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)
