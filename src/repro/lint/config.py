"""Configuration for the simlint rules.

Everything path-like is matched against the *posix relative path* of
the checked file (``repro/bench/__main__.py``), by suffix, so the
config works no matter where the tree is checked out or which prefix
the CLI was invoked with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple


def _default_layers() -> Dict[str, FrozenSet[str]]:
    """The import-layering DAG, bottom-up (SIM004).

    Keys and values are two-component layer names (``repro.sim``).
    A module in layer L may import from exactly ``layers[L]``.  The
    substrate (``sim``) sits at the bottom; hardware, network, and
    power models build on it without knowing about the store logic in
    ``core``; workloads know the substrate only; ``bench``,
    ``baselines``, and tooling sit on top.  Between the two top-level
    harnesses, ``bench`` sits *above* ``scenarios``: the design-space
    explorer scores configurations on whole scenario episodes, while
    scenarios never reach into the benchmark harness.
    """
    sim = frozenset({"repro.sim"})
    hw = sim | {"repro.hw"}
    net = sim | {"repro.net"}
    obs = sim | {"repro.obs"}
    power = hw | {"repro.power"}
    core = hw | net | power | obs | {"repro.core", "repro.telemetry"}
    workloads = sim | {"repro.workloads"}
    top = core | workloads | {"repro.baselines"}
    return {
        "repro.sim": sim,
        "repro.hw": hw,
        "repro.net": net,
        "repro.obs": obs,
        "repro.power": power,
        "repro.telemetry": core,
        "repro.core": core,
        "repro.workloads": workloads,
        "repro.baselines": top,
        "repro.bench": top | {"repro.bench", "repro.scenarios"},
        "repro.scenarios": top | {"repro.scenarios"},
        "repro.lint": top | {"repro.bench", "repro.lint"},
    }


@dataclass(frozen=True)
class LintConfig:
    """Tunable scope and allowlists for the rule catalog."""

    #: Files allowed to touch the ``random`` module directly (SIM001).
    #: The named-stream registry itself has to construct the streams.
    rng_allow: Tuple[str, ...] = ("repro/sim/rng.py",)

    #: Files allowed to read the wall clock (SIM002).  The benchmark
    #: CLIs report wall time around whole experiments/trials — outside
    #: the simulated world.
    wall_clock_allow: Tuple[str, ...] = ("repro/bench/__main__.py",
                                         "repro/bench/perf.py",
                                         "repro/bench/explore/fleet.py")

    #: Directories whose set iteration feeds scheduling/ordering
    #: decisions and must be wrapped in ``sorted(...)`` (SIM003).
    ordered_iteration_scopes: Tuple[str, ...] = ("repro/core/", "repro/net/")

    #: Files exempt from the layering DAG (SIM004).  CLI entry points
    #: that compose the full stack — like ``repro.bench.__main__`` does
    #: from the top layer — but live in a low layer for import reasons:
    #: ``repro.obs.trace`` must sit in ``repro.obs`` (so the package is
    #: importable below ``core``) yet builds a whole traced cluster.
    layer_allow: Tuple[str, ...] = ("repro/obs/trace.py",)

    #: Layer -> allowed imported layers (SIM004).
    layers: Dict[str, FrozenSet[str]] = field(default_factory=_default_layers)

    #: Directories where peer-node object references cross shard
    #: boundaries under the partition-parallel engine (SIM006).
    #: Scenario injectors reach node objects through the cluster's
    #: registry, so they are held to the same rule (the serial-engine
    #: guard in ``LeedCluster._injection_target`` is what makes the
    #: suppressed sites safe).
    cross_shard_scopes: Tuple[str, ...] = ("repro/core/",
                                           "repro/scenarios/")

    #: Attribute names holding registries of peer JBOF node objects
    #: (SIM006): objects fetched from these may live in another worker
    #: process and must be reached over the simulated network.
    cross_shard_registries: Tuple[str, ...] = ("jbofs", "_jbofs")

    #: Node methods exempt from SIM006: bootstrap-time delivery that
    #: runs before any worker process exists (the control plane hands
    #: every node its initial ring synchronously during ``start()``).
    cross_shard_allow_methods: Tuple[str, ...] = ("apply_membership",)

    #: Call names treated as digest/record sinks by SIM009: values
    #: derived from set-iteration or ``id()`` must not reach them.
    #: Matched against the last component of the dotted call name; any
    #: component containing "digest" is a sink regardless of this list
    #: (covers ``self._digest.update(...)``-style folds).
    digest_sink_calls: Tuple[str, ...] = (
        "observe", "record", "figure_digest", "schedule_digest", "fold",
    )

    def allows(self, allow: Tuple[str, ...], relpath: str) -> bool:
        """True when ``relpath`` matches an allowlist entry (by suffix)."""
        return any(relpath.endswith(entry) for entry in allow)

    def in_scope(self, scopes: Tuple[str, ...], relpath: str) -> bool:
        """True when ``relpath`` lies under one of ``scopes``."""
        return any(scope in relpath for scope in scopes)
