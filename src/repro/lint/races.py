"""Dataflow race rules (SIM007-SIM009).

These rules reason about paths rather than single statements, using
the CFG/dataflow machinery in :mod:`repro.lint.flow`:

* SIM007 — atomicity across yields: an attribute of ``self`` (or of a
  shared object passed in as a parameter) read before a scheduling
  point and written after it from the stale value, without an
  intervening re-read.  This is the static signature of the
  CircularLog concurrent-flush lost update fixed in PR 1.
* SIM008 — shard safety, dataflow edition: SIM006 flags method calls
  on names *directly* bound from a peer-node registry; SIM008 chases
  the reference through local rebinding, container stores, argument
  passing, and returns, and also flags attribute *mutations* and
  deep-chain calls (``node.vnodes.items()``) that reach live peer
  state without going over RPC.
* SIM009 — digest stability: values derived from ``set``-order
  iteration or ``id()`` must not reach schedule/figure digests,
  histograms, or BENCH records; hash and identity order vary across
  processes and would make "identical digest" checks vacuous.

All three are deliberately *may*-analyses: a finding means "there is a
path on which this goes wrong under a legal reordering", and known
imprecision is resolved by triage (``# simlint: ignore[SIMxxx]`` with
a justification), not by weakening the rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource, Rule
from repro.lint.flow import (
    SCOPE_NODES,
    YIELD_NODES,
    Block,
    DataflowAnalysis,
    dotted,
    has_yield,
    nested_functions,
    scope_nodes,
)

# ---------------------------------------------------------------------------
# SIM007: atomicity across scheduling points
# ---------------------------------------------------------------------------

#: Per-(local, chain) taint: (read_in_current_era, line_of_read).
_Taint = Dict[str, Dict[str, Tuple[bool, int]]]


@dataclass(frozen=True)
class _ExprInfo:
    """What evaluating one expression does, in evaluation order."""

    reads: Tuple[Tuple[str, int], ...]   #: direct (chain, line) attr reads
    locals_used: Tuple[str, ...]         #: Name loads
    yields: int                          #: scheduling points inside


def _collect_expr(node: ast.AST, roots: FrozenSet[str]) -> _ExprInfo:
    """Direct attribute reads, local uses, and yields in ``node``.

    Nested function bodies do not execute here and are skipped;
    comprehensions do execute and are walked.
    """
    reads: List[Tuple[str, int]] = []
    locals_used: List[str] = []
    yields = 0

    def visit(current: ast.AST) -> None:
        nonlocal yields
        if isinstance(current, SCOPE_NODES):
            return
        if isinstance(current, YIELD_NODES):
            yields += 1
        if isinstance(current, ast.Attribute) and \
                isinstance(current.ctx, ast.Load):
            chain = dotted(current)
            if chain is not None and chain.split(".", 1)[0] in roots:
                line = getattr(current, "lineno", 0)
                parts = chain.split(".")
                # ``self.a.b`` also reads ``self.a``: record every
                # prefix so a later write to any of them counts as
                # derived from this read.
                for end in range(2, len(parts) + 1):
                    reads.append((".".join(parts[:end]), line))
                return  # children of the chain are covered
        if isinstance(current, ast.Name) and isinstance(current.ctx, ast.Load):
            locals_used.append(current.id)
        for child in ast.iter_child_nodes(current):
            visit(child)

    visit(node)
    return _ExprInfo(tuple(reads), tuple(locals_used), yields)


class _AtomicityState:
    """Dataflow state: local taints plus chains re-read this era."""

    __slots__ = ("taint", "revalidated")

    def __init__(self, taint: Optional[_Taint] = None,
                 revalidated: Optional[FrozenSet[str]] = None):
        self.taint: _Taint = taint if taint is not None else {}
        self.revalidated: FrozenSet[str] = revalidated or frozenset()

    def copy(self) -> "_AtomicityState":
        return _AtomicityState(
            {name: dict(chains) for name, chains in self.taint.items()},
            self.revalidated)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _AtomicityState)
                and self.taint == other.taint
                and self.revalidated == other.revalidated)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)


def _merge_atomicity(a: _AtomicityState, b: _AtomicityState) -> _AtomicityState:
    taint: _Taint = {}
    for name in set(a.taint) | set(b.taint):
        chains: Dict[str, Tuple[bool, int]] = {}
        for chain in set(a.taint.get(name, ())) | set(b.taint.get(name, ())):
            ta = a.taint.get(name, {}).get(chain)
            tb = b.taint.get(name, {}).get(chain)
            if ta is None:
                chains[chain] = tb  # type: ignore[assignment]
            elif tb is None:
                chains[chain] = ta
            else:
                # Stale on any path wins; keep the stale side's line.
                if not ta[0]:
                    chains[chain] = ta
                elif not tb[0]:
                    chains[chain] = tb
                else:
                    chains[chain] = (True, min(ta[1], tb[1]))
        taint[name] = chains
    return _AtomicityState(taint, a.revalidated & b.revalidated)


class AtomicityAcrossYield(Rule):
    """SIM007: read-modify-write interleaved across a yield.

    Between two scheduling points a handler owns all shared state; a
    value cached *before* a yield and written back *after* it races
    with every handler that ran in between — the CircularLog
    concurrent-flush lost update (PR 1).  Safe shapes never fire:
    completing the RMW before yielding, ``+=`` (re-reads the target),
    and re-reading or re-checking the attribute after resuming.
    """

    rule_id = "SIM007"
    title = "stale read-modify-write across a scheduling point"

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        index = source.index
        for func in index.functions():
            if has_yield(func):
                yield from self._check_function(source, func)

    def _check_function(self, source: ModuleSource,
                        func: ast.AST) -> Iterator[Finding]:
        roots = frozenset(self._param_names(func))
        if not roots:
            return
        cfg = source.index.cfg(func)
        reported: Set[Tuple[int, int, str]] = set()
        findings: List[Finding] = []

        def transfer(block: Block, state: _AtomicityState) -> _AtomicityState:
            out = state.copy()
            for element in block.elements:
                self._process(source, element, out, roots, reported, findings)
            return out

        analysis = DataflowAnalysis(
            cfg, _AtomicityState, transfer, _merge_atomicity)
        analysis.run()
        seen: Set[Tuple[int, int, str]] = set()
        for finding in sorted(findings, key=lambda f: (f.line, f.col)):
            key = (finding.line, finding.col, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding

    @staticmethod
    def _param_names(func: ast.AST) -> List[str]:
        args = func.args
        names = [a.arg for a in getattr(args, "posonlyargs", [])]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def _process(self, source: ModuleSource, element: ast.AST,
                 state: _AtomicityState, roots: FrozenSet[str],
                 reported: Set[Tuple[int, int, str]],
                 findings: List[Finding]) -> None:
        if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Import, ast.ImportFrom,
                                ast.Global, ast.Nonlocal, ast.Pass)):
            return
        if isinstance(element, ast.Assign):
            info = _collect_expr(element.value, roots)
            self._apply_expr(info, state)
            for target in element.targets:
                self._assign_target(source, element, target, element.value,
                                    info, state, roots, reported, findings)
            return
        if isinstance(element, ast.AnnAssign) and element.value is not None:
            info = _collect_expr(element.value, roots)
            self._apply_expr(info, state)
            self._assign_target(source, element, element.target,
                                element.value, info, state, roots,
                                reported, findings)
            return
        if isinstance(element, ast.AugAssign):
            # ``self.x += v`` re-reads the target in place: the write
            # is derived from the current value by construction.
            info = _collect_expr(element.value, roots)
            self._apply_expr(info, state)
            chain = dotted(element.target)
            if chain is not None and chain.split(".", 1)[0] in roots:
                state.revalidated = state.revalidated | {chain}
            return
        # Everything else (Expr, Return, Raise, Assert, branch tests,
        # loop iterables, with-items) just evaluates expressions.
        info = _collect_expr(element, roots)
        self._apply_expr(info, state)

    @staticmethod
    def _apply_expr(info: _ExprInfo, state: _AtomicityState) -> None:
        """Account for the reads and yields of one evaluated expression."""
        if info.yields:
            # The reads happened before the suspension: they do not
            # revalidate anything for code after it, and every taint
            # held in a local goes stale.
            for chains in state.taint.values():
                for chain, (_, line) in list(chains.items()):
                    chains[chain] = (False, line)
            state.revalidated = frozenset()
        else:
            state.revalidated = state.revalidated | \
                {chain for chain, _ in info.reads}

    def _expr_taint(self, info: _ExprInfo,
                    state: _AtomicityState) -> Dict[str, Tuple[bool, int]]:
        """Chains feeding an expression, with freshness at the time the
        expression *finishes* evaluating."""
        result: Dict[str, Tuple[bool, int]] = {}
        fresh = info.yields == 0
        for chain, line in info.reads:
            prior = result.get(chain)
            if prior is None or (prior[0] and not fresh):
                result[chain] = (fresh, line)
        for name in info.locals_used:
            for chain, (was_fresh, line) in state.taint.get(name, {}).items():
                carried = (was_fresh and fresh, line)
                prior = result.get(chain)
                if prior is None or (prior[0] and not carried[0]):
                    result[chain] = carried
        return result

    def _assign_target(self, source: ModuleSource, stmt: ast.AST,
                       target: ast.AST, value: ast.AST, info: _ExprInfo,
                       state: _AtomicityState, roots: FrozenSet[str],
                       reported: Set[Tuple[int, int, str]],
                       findings: List[Finding]) -> None:
        if isinstance(target, ast.Tuple):
            elts = getattr(value, "elts", None)
            if isinstance(value, (ast.Tuple, ast.List)) and elts is not None \
                    and len(elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, elts):
                    sub_info = _collect_expr(sub_value, roots)
                    self._assign_target(source, stmt, sub_target, sub_value,
                                        sub_info, state, roots, reported,
                                        findings)
            else:
                for sub_target in target.elts:
                    self._assign_target(source, stmt, sub_target, value,
                                        info, state, roots, reported,
                                        findings)
            return
        taint = self._expr_taint(info, state)
        if isinstance(target, ast.Name):
            state.taint[target.id] = taint
            return
        if isinstance(target, ast.Attribute):
            chain = dotted(target)
            if chain is None or chain.split(".", 1)[0] not in roots:
                return
            stale = taint.get(chain)
            if stale is not None and not stale[0] and \
                    chain not in state.revalidated:
                key = (getattr(stmt, "lineno", 0),
                       getattr(stmt, "col_offset", 0), chain)
                if key not in reported:
                    reported.add(key)
                    findings.append(self.finding(
                        source, stmt,
                        "writes %s from a value read before a yield on "
                        "line %d; other handlers ran in between, so this "
                        "read-modify-write can lose their update — "
                        "complete the RMW before yielding or re-read "
                        "after resuming" % (chain, stale[1])))
            # Our own write establishes the current-era value.
            state.revalidated = state.revalidated | {chain}


# ---------------------------------------------------------------------------
# SIM008: shard safety through dataflow
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _NodeOrigin:
    """How an expression came to hold a peer-node reference."""

    line: int
    via: str
    direct: bool  #: True when SIM006's syntactic rule already covers it


@dataclass
class _FunctionSummary:
    """Cross-function taint summary for one def."""

    node: ast.AST
    returns_node: bool = False
    tainted_params: Optional[Set[str]] = None
    tainted_container_params: Optional[Set[str]] = None

    def __post_init__(self):
        if self.tainted_params is None:
            self.tainted_params = set()
        if self.tainted_container_params is None:
            self.tainted_container_params = set()


class ShardSafetyFlow(Rule):
    """SIM008: trace node references to non-RPC touches.

    SIM006 is syntactic: it sees ``for node in self.jbofs`` and flags
    ``node.stop()``.  This rule follows the reference wherever the
    dataflow carries it — alias rebinding, list/dict stores, argument
    passing, function returns — and flags method calls *and attribute
    mutations* on anything that may hold a peer node, plus deep-chain
    calls (``node.vnodes.items()``) that read live peer state.
    Locations SIM006 already reports are skipped, so each violation
    surfaces exactly once.
    """

    rule_id = "SIM008"
    title = "cross-shard node reference escapes to a non-RPC touch"

    #: Container methods that store their argument.
    _STORES = ("append", "add", "insert", "appendleft", "setdefault")
    #: Container accessors whose result is an element.
    _ELEMENT_CALLS = ("pop", "popleft", "get", "setdefault")

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        if not self.config.in_scope(self.config.cross_shard_scopes,
                                    source.relpath):
            return
        from repro.lint.rules import CrossShardNodeCall
        base = CrossShardNodeCall(self.config)
        covered = {(f.line, f.col) for f in base.check(source)}
        summaries = self._summaries(source)
        for _ in range(8):
            if not self._propagate(source, base, summaries):
                break
        findings: List[Finding] = []
        self._scan(source, source.tree, base, summaries, findings)
        seen: Set[Tuple[int, int]] = set()
        for finding in sorted(findings, key=lambda f: (f.line, f.col)):
            if (finding.line, finding.col) in covered:
                continue
            if (finding.line, finding.col) in seen:
                continue
            seen.add((finding.line, finding.col))
            yield finding

    # -- function summaries ----------------------------------------------------------

    def _summaries(self, source: ModuleSource) -> Dict[str, _FunctionSummary]:
        summaries: Dict[str, _FunctionSummary] = {}
        for func in source.index.functions():
            # Last definition wins on name collisions across classes;
            # summaries are merged conservatively by _propagate anyway.
            summaries.setdefault(func.name, _FunctionSummary(func))
        return summaries

    def _propagate(self, source: ModuleSource, base,
                   summaries: Dict[str, _FunctionSummary]) -> bool:
        """One round of summary propagation; True when anything changed."""
        changed = False
        for summary in summaries.values():
            names, containers = self._function_taint(
                source, summary.node, base, summaries)
            for node in scope_nodes(summary.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    if self._node_origin(node.value, base, names,
                                         containers, summaries) is not None:
                        if not summary.returns_node:
                            summary.returns_node = True
                            changed = True
                elif isinstance(node, ast.Call):
                    callee = self._callee_name(node.func)
                    target = summaries.get(callee) if callee else None
                    if target is None:
                        continue
                    params = self._param_list(target.node)
                    for position, arg in enumerate(node.args):
                        if position >= len(params):
                            break
                        origin = self._node_origin(arg, base, names,
                                                   containers, summaries)
                        if origin is not None and \
                                params[position] not in target.tainted_params:
                            target.tainted_params.add(params[position])
                            changed = True
                        elif isinstance(arg, ast.Name) \
                                and arg.id in containers and \
                                params[position] not in \
                                target.tainted_container_params:
                            target.tainted_container_params.add(
                                params[position])
                            changed = True
        return changed

    @staticmethod
    def _callee_name(func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in ("self", "cls"):
            return func.attr
        return None

    @staticmethod
    def _param_list(func: ast.AST) -> List[str]:
        args = func.args
        names = [a.arg for a in getattr(args, "posonlyargs", [])]
        names += [a.arg for a in args.args]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    # -- per-function taint ----------------------------------------------------------

    def _function_taint(self, source: ModuleSource, scope: ast.AST, base,
                        summaries: Dict[str, _FunctionSummary]
                        ) -> Tuple[Dict[str, _NodeOrigin],
                                   Dict[str, _NodeOrigin]]:
        """Names/containers that may hold node references in ``scope``."""
        names: Dict[str, _NodeOrigin] = {}
        containers: Dict[str, _NodeOrigin] = {}
        summary = summaries.get(getattr(scope, "name", ""))
        if summary is not None and summary.node is scope:
            line = getattr(scope, "lineno", 0)
            for param in summary.tainted_params:
                names[param] = _NodeOrigin(
                    line, "argument %r" % param, direct=False)
            for param in summary.tainted_container_params:
                containers[param] = _NodeOrigin(
                    line, "argument %r" % param, direct=False)
        # SIM006's syntactic bindings seed the direct set.
        for direct in base._node_names(list(scope_nodes(scope))):
            names.setdefault(
                direct,
                _NodeOrigin(getattr(scope, "lineno", 0),
                            "registry binding %r" % direct, direct=True))
        for _ in range(4):
            if not self._taint_pass(scope, base, names, containers,
                                    summaries):
                break
        return names, containers

    def _taint_pass(self, scope: ast.AST, base,
                    names: Dict[str, _NodeOrigin],
                    containers: Dict[str, _NodeOrigin],
                    summaries: Dict[str, _FunctionSummary]) -> bool:
        changed = False

        def taint_name(name: str, origin: _NodeOrigin) -> None:
            nonlocal changed
            if name not in names:
                names[name] = origin
                changed = True

        def taint_container(name: str, origin: _NodeOrigin) -> None:
            nonlocal changed
            if name not in containers:
                containers[name] = origin
                changed = True

        for node in scope_nodes(scope):
            if isinstance(node, ast.Assign):
                origin = self._node_origin(node.value, base, names,
                                           containers, summaries)
                container_origin = self._container_origin(
                    node.value, base, names, containers)
                for target in node.targets:
                    bound = target
                    if isinstance(bound, ast.Tuple) and bound.elts:
                        bound = bound.elts[-1]
                    if not isinstance(bound, ast.Name):
                        continue
                    if origin is not None:
                        taint_name(bound.id, self._derived(origin, bound.id))
                    if container_origin is not None:
                        taint_container(bound.id, container_origin)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                origin = self._iteration_origin(node.iter, base, containers)
                if origin is not None:
                    bound = node.target
                    if isinstance(bound, ast.Tuple) and bound.elts:
                        bound = bound.elts[-1]
                    if isinstance(bound, ast.Name):
                        taint_name(bound.id, origin)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    origin = self._iteration_origin(gen.iter, base, containers)
                    if origin is not None:
                        bound = gen.target
                        if isinstance(bound, ast.Tuple) and bound.elts:
                            bound = bound.elts[-1]
                        if isinstance(bound, ast.Name):
                            taint_name(bound.id, origin)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._STORES and node.args:
                receiver = node.func.value
                stored = self._node_origin(node.args[-1], base, names,
                                           containers, summaries)
                if stored is not None and isinstance(receiver, ast.Name):
                    taint_container(receiver.id, self._derived(
                        stored, receiver.id))
        return changed

    @staticmethod
    def _derived(origin: _NodeOrigin, via: str) -> _NodeOrigin:
        return _NodeOrigin(origin.line, "%s -> %r" % (origin.via, via),
                           direct=False)

    def _node_origin(self, expr: ast.AST, base,
                     names: Dict[str, _NodeOrigin],
                     containers: Dict[str, _NodeOrigin],
                     summaries: Dict[str, _FunctionSummary]
                     ) -> Optional[_NodeOrigin]:
        """Origin when ``expr`` may evaluate to a peer-node object."""
        line = getattr(expr, "lineno", 0)
        if isinstance(expr, ast.Name):
            return names.get(expr.id)
        if base._is_node_expr(expr, set()):
            return _NodeOrigin(line, "registry access", direct=True)
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.value, ast.Name) and \
                    expr.value.id in containers:
                return self._derived(containers[expr.value.id],
                                     "%s[...]" % expr.value.id)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in self._ELEMENT_CALLS and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id in containers:
                return self._derived(containers[func.value.id],
                                     "%s.%s()" % (func.value.id, func.attr))
            callee = self._callee_name(func)
            summary = summaries.get(callee) if callee else None
            if summary is not None and summary.returns_node:
                return _NodeOrigin(line, "%s() returns a node" % callee,
                                   direct=False)
        return None

    def _container_origin(self, expr: ast.AST, base,
                          names: Dict[str, _NodeOrigin],
                          containers: Dict[str, _NodeOrigin]
                          ) -> Optional[_NodeOrigin]:
        """Origin when ``expr`` builds a container of node references."""
        line = getattr(expr, "lineno", 0)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for item in expr.elts:
                if isinstance(item, ast.Name) and item.id in names:
                    return self._derived(names[item.id], "container literal")
                if base._is_node_expr(item, set()):
                    return _NodeOrigin(line, "container literal",
                                       direct=False)
            return None
        if isinstance(expr, ast.Dict):
            for item in expr.values:
                if item is not None and isinstance(item, ast.Name) and \
                        item.id in names:
                    return self._derived(names[item.id], "dict literal")
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp)):
            element = expr.elt
            if isinstance(element, ast.Name):
                for gen in expr.generators:
                    if self._iteration_origin(gen.iter, base, containers) \
                            is not None and \
                            isinstance(gen.target, ast.Name) and \
                            gen.target.id == element.id:
                        return _NodeOrigin(line, "comprehension over nodes",
                                           direct=False)
            return None
        if isinstance(expr, ast.Call):
            name = dotted(expr.func)
            if name in ("list", "sorted", "tuple") and expr.args:
                if self._iteration_origin(expr.args[0], base, containers) \
                        is not None:
                    return _NodeOrigin(line, "%s(nodes)" % name,
                                       direct=False)
            return None
        if isinstance(expr, ast.Name) and expr.id in containers:
            return containers[expr.id]
        return None

    def _iteration_origin(self, expr: ast.AST, base,
                          containers: Dict[str, _NodeOrigin]
                          ) -> Optional[_NodeOrigin]:
        """Origin when iterating ``expr`` yields node references."""
        line = getattr(expr, "lineno", 0)
        if base._yields_nodes(expr):
            return _NodeOrigin(line, "registry iteration", direct=True)
        if isinstance(expr, ast.Name) and expr.id in containers:
            return self._derived(containers[expr.id],
                                 "iterating %r" % expr.id)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("values", "items") and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id in containers:
                return self._derived(containers[func.value.id],
                                     "%s.%s()" % (func.value.id, func.attr))
            if dotted(func) in ("sorted", "list", "tuple", "reversed",
                                "enumerate") and expr.args:
                return self._iteration_origin(expr.args[0], base, containers)
        return None

    # -- violation scan --------------------------------------------------------------

    def _scan(self, source: ModuleSource, scope: ast.AST, base,
              summaries: Dict[str, _FunctionSummary],
              findings: List[Finding]) -> None:
        names, containers = self._function_taint(source, scope, base,
                                                 summaries)
        for node in scope_nodes(scope):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr in self.config.cross_shard_allow_methods:
                    continue
                receiver = node.func.value
                origin = self._node_origin(receiver, base, names,
                                           containers, summaries)
                if origin is not None and not origin.direct:
                    findings.append(self.finding(
                        source, node,
                        "calls .%s() on a JBOF node reference (%s, line "
                        "%d); under partition-parallel execution the node "
                        "may live in another worker — use rpc.call/"
                        "rpc.notify" % (node.func.attr, origin.via,
                                        origin.line)))
                    continue
                deep = self._deep_chain_root(receiver)
                if deep is not None and deep in names:
                    findings.append(self.finding(
                        source, node,
                        "calls .%s() through %s on a JBOF node object; "
                        "this reads live peer state that may be a stale "
                        "fork-time copy under partition-parallel "
                        "execution — fetch it over RPC"
                        % (node.func.attr,
                           dotted(receiver) or ("%s..." % deep))))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    root = self._attribute_root(target)
                    if root is not None and root in names:
                        findings.append(self.finding(
                            source, node,
                            "mutates attribute %s on a JBOF node object "
                            "(%s, line %d); the write lands on a stale "
                            "copy under partition-parallel execution — "
                            "mutate over RPC"
                            % (dotted(target) or root,
                               names[root].via, names[root].line)))
        for nested in nested_functions(scope):
            self._scan(source, nested, base, summaries, findings)

    @staticmethod
    def _deep_chain_root(expr: ast.AST) -> Optional[str]:
        """Root name of an Attribute chain with depth >= 2, else None."""
        depth = 0
        while isinstance(expr, ast.Attribute):
            depth += 1
            expr = expr.value
        if depth >= 1 and isinstance(expr, ast.Name):
            return expr.id
        return None

    @staticmethod
    def _attribute_root(target: ast.AST) -> Optional[str]:
        """Root name when ``target`` stores into ``name.attr...``."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return None
        while isinstance(target, ast.Attribute):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id
        return None


# ---------------------------------------------------------------------------
# SIM009: digest stability
# ---------------------------------------------------------------------------

class DigestOrderTaint(Rule):
    """SIM009: hash/identity order must not reach digests.

    Schedule digests, figure digests, latency histograms, and BENCH
    records are the reproducibility contract: byte-identical across
    runs, machines, and worker counts.  A value derived from iterating
    a ``set`` (hash order, randomized per process) or from ``id()``
    (allocation order) that flows into one of those sinks silently
    breaks the contract.  Sort the iterable or key by stable fields.
    """

    rule_id = "SIM009"
    title = "hash-order or identity value reaches a digest"

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        from repro.lint.rules import UnsortedSetIteration
        helper = UnsortedSetIteration(self.config)
        attr_sets = helper._collect_names(
            source.index.nodes(ast.Assign, ast.AnnAssign), attributes=True)
        yield from self._check_scope(source, source.tree, helper, attr_sets)

    def _check_scope(self, source: ModuleSource, scope: ast.AST, helper,
                     attr_sets: Set[str]) -> Iterator[Finding]:
        nodes = list(scope_nodes(scope))
        set_names = helper._collect_names(nodes, attributes=False) | attr_sets
        tainted = self._tainted_names(nodes, helper, set_names)
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_name(node.func)
            if sink is None:
                continue
            arguments = list(node.args) + \
                [kw.value for kw in node.keywords if kw.value is not None]
            for arg in arguments:
                described = self._order_taint(arg, helper, set_names, tainted)
                if described is not None:
                    yield self.finding(
                        source, node,
                        "passes a value derived from %s into %s(); hash/"
                        "identity order varies across processes and would "
                        "corrupt digest comparisons — sort the iterable "
                        "or key by stable fields" % (described, sink))
                    break
        for nested in nested_functions(scope):
            yield from self._check_scope(source, nested, helper, attr_sets)

    def _sink_name(self, func: ast.AST) -> Optional[str]:
        name = dotted(func)
        if name is None:
            if isinstance(func, ast.Attribute):
                name = func.attr
            else:
                return None
        parts = name.split(".")
        if parts[-1] in self.config.digest_sink_calls:
            return name
        if any("digest" in part.lower() for part in parts):
            return name
        return None

    def _tainted_names(self, nodes: List[ast.AST], helper,
                       set_names: Set[str]) -> Dict[str, str]:
        """Names carrying hash-order/identity-derived values in scope."""
        tainted: Dict[str, str] = {}

        def bind(target: ast.AST, description: str) -> None:
            if isinstance(target, ast.Tuple) and target.elts:
                for element in target.elts:
                    bind(element, description)
                return
            if isinstance(target, ast.Name) and target.id not in tainted:
                tainted[target.id] = description

        for _ in range(4):
            before = len(tainted)
            for node in nodes:
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    described = self._iter_taint(node.iter, helper,
                                                 set_names, tainted)
                    if described is not None:
                        bind(node.target, described)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    for gen in node.generators:
                        described = self._iter_taint(gen.iter, helper,
                                                     set_names, tainted)
                        if described is not None:
                            bind(gen.target, described)
                elif isinstance(node, ast.Assign):
                    described = self._order_taint(node.value, helper,
                                                  set_names, tainted)
                    if described is not None:
                        for target in node.targets:
                            bind(target, described)
            if len(tainted) == before:
                break
        return tainted

    def _iter_taint(self, iterable: ast.AST, helper, set_names: Set[str],
                    tainted: Dict[str, str]) -> Optional[str]:
        """Taint carried by a loop/comprehension iterable.

        Covers both the set-shaped case (hash iteration order) and
        order-sensitive expressions such as ``sorted(xs, key=id)``.
        """
        described = helper._describe_set(iterable, set_names)
        if described is not None:
            return "iteration over %s" % described
        return self._order_taint(iterable, helper, set_names, tainted)

    def _order_taint(self, expr: ast.AST, helper, set_names: Set[str],
                     tainted: Dict[str, str]) -> Optional[str]:
        """Description when ``expr`` carries order-sensitive data."""
        for node in ast.walk(expr):
            if isinstance(node, SCOPE_NODES):
                continue
            if isinstance(node, ast.Call):
                name = dotted(node.func)
                if name == "id" and node.args:
                    return "id(...)"
                if name == "sorted":
                    # sorted(...) launders iteration order; do not
                    # descend into its arguments.
                    return self._scan_sorted_key(node, tainted)
                if name in ("list", "tuple") and node.args:
                    described = helper._describe_set(node.args[0], set_names)
                    if described is not None:
                        return "%s(%s)" % (name, described)
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and node.id in tainted:
                return tainted[node.id]
        return None

    @staticmethod
    def _scan_sorted_key(node: ast.Call,
                         tainted: Dict[str, str]) -> Optional[str]:
        """``sorted(xs, key=lambda x: id(x))`` is still unstable."""
        for keyword in node.keywords:
            if keyword.arg == "key" and keyword.value is not None:
                for sub in ast.walk(keyword.value):
                    if isinstance(sub, ast.Call) and \
                            dotted(sub.func) == "id":
                        return "an id(...)-keyed sort"
        return None


def flow_rules(config: LintConfig) -> List[Rule]:
    """The dataflow rule family, in rule-id order."""
    return [
        AtomicityAcrossYield(config),
        ShardSafetyFlow(config),
        DigestOrderTaint(config),
    ]
