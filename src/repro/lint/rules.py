"""The simlint rule catalog.

Each rule targets one class of reproducibility leak a discrete-event
simulation cannot tolerate.  ``docs/static-analysis.md`` documents
the catalog and the rationale in prose.  The registered rules are
appended to this docstring at import time (see :func:`catalog_lines`)
so the header can never drift from the code again.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource, Rule
from repro.lint.flow import dotted as _dotted
from repro.lint.flow import nested_functions as _nested_functions
from repro.lint.flow import scope_nodes as _scope_nodes

#: Module-level names matching this are treated as intentional
#: constants (registry tables such as ``WORKLOADS``) by SIM005.
CONSTANT_NAME_RE = re.compile(r"^_{0,2}[A-Z][A-Z0-9_]*$")

#: Wall-clock entry points (SIM002).
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
}
WALL_CLOCK_SUFFIXES = (
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)
WALL_CLOCK_FROM_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
}

#: Constructors of mutable containers (SIM005).
MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
}


class DirectRandomUse(Rule):
    """SIM001: the ``random`` module is off limits outside the registry.

    ``random.Random(seed)`` instances scattered through the tree make
    every component's stream depend on every other's draw order.  All
    randomness must come from ``RngRegistry.stream(name)`` or
    ``derive_stream(seed, name)`` in :mod:`repro.sim.rng`.
    """

    rule_id = "SIM001"
    title = "direct random-module use"

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        if self.config.allows(self.config.rng_allow, source.relpath):
            return
        for node in source.index.nodes(ast.Import, ast.ImportFrom,
                                       ast.Attribute):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.finding(
                            source, node,
                            "imports the random module directly; use "
                            "RngRegistry.stream(name) or derive_stream "
                            "from repro.sim.rng")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        source, node,
                        "imports from the random module directly; use "
                        "named streams from repro.sim.rng")
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and \
                        node.value.id == "random":
                    yield self.finding(
                        source, node,
                        "uses random.%s directly; draw from a named "
                        "RngRegistry stream instead" % node.attr)


class WallClockUse(Rule):
    """SIM002: no wall-clock reads in simulation-visible code.

    Simulated time is ``sim.now``; a ``time.time()`` anywhere in the
    model couples results to the host machine.  The benchmark CLI's
    wall-time reporting is allowlisted via config.
    """

    rule_id = "SIM002"
    title = "wall-clock read"

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        if self.config.allows(self.config.wall_clock_allow, source.relpath):
            return
        for node in source.index.nodes(ast.Call, ast.ImportFrom):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name and (name in WALL_CLOCK_CALLS
                             or name.endswith(WALL_CLOCK_SUFFIXES)):
                    yield self.finding(
                        source, node,
                        "calls %s(); simulation code must use sim.now, "
                        "not the wall clock" % name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_FROM_TIME:
                            yield self.finding(
                                source, node,
                                "imports %s from the time module; "
                                "simulation code must use sim.now"
                                % alias.name)


class UnsortedSetIteration(Rule):
    """SIM003: set iteration feeding order decisions must be sorted.

    In the scoped directories (``core/``, ``net/``) the order in which
    replicas, vnodes, or peers are visited reaches the event schedule;
    iterating a ``set`` there is hash-order — randomized per process.
    Wrap the iterable in ``sorted(...)``.
    """

    rule_id = "SIM003"
    title = "unsorted set iteration"

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        if not self.config.in_scope(self.config.ordered_iteration_scopes,
                                    source.relpath):
            return
        # Attributes (``self._failed``) are assigned in one method and
        # iterated in another, so they are tracked module-wide; bare
        # names are tracked per function scope.  A name also assigned
        # a non-set value anywhere in its scope (``gainers =
        # sorted(set(gainers))``) is ambiguous and never flagged.
        attr_names = self._collect_names(
            source.index.nodes(ast.Assign, ast.AnnAssign), attributes=True)
        yield from self._check_scope(source, source.tree, attr_names)

    def _check_scope(self, source: ModuleSource, scope: ast.AST,
                     attr_names: Set[str]) -> Iterator[Finding]:
        nodes = list(_scope_nodes(scope))
        known = self._collect_names(nodes, attributes=False) | attr_names
        for node in nodes:
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in ("list", "tuple", "enumerate") and node.args:
                    iters.append(node.args[0])
            for candidate in iters:
                described = self._describe_set(candidate, known)
                if described is not None:
                    yield self.finding(
                        source, candidate,
                        "iterates over %s in hash order; wrap it in "
                        "sorted(...) so scheduling decisions are "
                        "reproducible" % described)
        for nested in _nested_functions(scope):
            yield from self._check_scope(source, nested, attr_names)

    @staticmethod
    def _value_is_set(value: Optional[ast.AST]) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            return _dotted(value.func) in ("set", "frozenset")
        return False

    @staticmethod
    def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        return _dotted(base) in ("set", "frozenset", "Set", "FrozenSet",
                                 "MutableSet", "typing.Set",
                                 "typing.FrozenSet", "typing.MutableSet")

    @classmethod
    def _collect_names(cls, nodes, attributes: bool) -> Set[str]:
        """Names bound to sets, minus names with conflicting bindings.

        ``attributes`` selects whether Attribute targets (``self.x``)
        or bare Name targets are collected.
        """
        set_names: Set[str] = set()
        other_names: Set[str] = set()

        def record(target: ast.AST, value: Optional[ast.AST],
                   annotation: Optional[ast.AST] = None) -> None:
            if attributes != isinstance(target, ast.Attribute):
                return
            dotted = _dotted(target)
            if dotted is None:
                return
            if cls._value_is_set(value) or cls._annotation_is_set(annotation):
                set_names.add(dotted)
            elif value is not None:
                other_names.add(dotted)

        for node in nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(target, node.value)
            elif isinstance(node, ast.AnnAssign):
                record(node.target, node.value, node.annotation)
        return set_names - other_names

    def _describe_set(self, node: ast.AST,
                      set_names: Set[str]) -> Optional[str]:
        """A description of ``node`` when it is set-valued, else None."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("set", "frozenset"):
                return "%s(...)" % name
            return None
        dotted = _dotted(node)
        if dotted is not None and dotted in set_names:
            return "the set %r" % dotted
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                     ast.Sub, ast.BitXor)):
            left = self._describe_set(node.left, set_names)
            right = self._describe_set(node.right, set_names)
            if left is not None or right is not None:
                return "a set expression"
        return None


class ImportLayering(Rule):
    """SIM004: the layering DAG is law.

    The substrate (``sim``) must stay ignorant of everything above it,
    and the device/network models (``hw``, ``net``) must never reach
    into store logic (``core``).  The allowed-import map lives in
    :class:`LintConfig`.
    """

    rule_id = "SIM004"
    title = "import layering violation"

    @staticmethod
    def _layer(module: str) -> str:
        return ".".join(module.split(".")[:2])

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        if source.module is None:
            return
        if self.config.allows(self.config.layer_allow, source.relpath):
            return
        layer = self._layer(source.module)
        allowed = self.config.layers.get(layer)
        if allowed is None:
            return
        for node in source.index.nodes(ast.Import, ast.ImportFrom):
            imported: List[str] = []
            if isinstance(node, ast.Import):
                imported = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                if node.module == "repro":
                    # ``from repro import telemetry`` pulls in the
                    # submodule, so resolve the layer per alias.
                    imported = ["repro." + alias.name
                                for alias in node.names]
                else:
                    imported = [node.module]
            for target in imported:
                if target != "repro" and not target.startswith("repro."):
                    continue
                target_layer = self._layer(target)
                if target_layer not in allowed:
                    yield self.finding(
                        source, node,
                        "%s (layer %s) must not import %s; allowed "
                        "layers: %s" % (source.module, layer, target,
                                        ", ".join(sorted(allowed))))


class MutableSharedState(Rule):
    """SIM005: no mutable defaults, no module-level mutable state.

    A mutable default argument or a writable module-level container is
    shared across every simulation instance in the process — state
    leaks from one run into the next and the second run diverges.
    Uppercase module-level names are treated as intentional constants.
    """

    rule_id = "SIM005"
    title = "shared mutable state"

    @staticmethod
    def _mutable_value(node: Optional[ast.AST]) -> Optional[str]:
        if isinstance(node, ast.List):
            return "a list literal"
        if isinstance(node, ast.Dict):
            return "a dict literal"
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return "a comprehension"
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in MUTABLE_FACTORIES:
                return "%s(...)" % name
        return None

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        for node in source.index.functions():
            defaults = list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                described = self._mutable_value(default)
                if described is not None:
                    yield self.finding(
                        source, default,
                        "mutable default argument (%s) in %s(); "
                        "default to None and construct inside the "
                        "function" % (described, node.name))
        for stmt in getattr(source.tree, "body", []):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            described = self._mutable_value(value)
            if described is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if CONSTANT_NAME_RE.match(target.id):
                    continue
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue  # __all__ and friends are interpreter protocol
                yield self.finding(
                    source, stmt,
                    "module-level mutable state %r (%s) is shared "
                    "across simulation runs; move it into an instance "
                    "or rename it as a constant" % (target.id, described))


class CrossShardNodeCall(Rule):
    """SIM006: peer JBOF nodes are reached over the network only.

    Under the partition-parallel engine (:mod:`repro.sim.parallel`)
    each JBOF's live state may be owned by another worker process.  A
    method call on a node object pulled out of a peer registry
    (``self.jbofs`` / ``self._jbofs``) silently operates on a stale
    fork-time copy — results diverge from serial runs with no error.
    Cross-shard interaction must ride ``rpc.call``/``rpc.notify``.

    Reading construction-time attributes (``node.address``,
    ``node.meter``) is fine — the rule flags only *method calls* on
    node objects.  Bootstrap-time delivery methods that run before any
    worker exists are allowlisted in :class:`LintConfig`.
    """

    rule_id = "SIM006"
    title = "direct cross-shard node call"

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        if not self.config.in_scope(self.config.cross_shard_scopes,
                                    source.relpath):
            return
        yield from self._check_scope(source, source.tree)

    def _check_scope(self, source: ModuleSource,
                     scope: ast.AST) -> Iterator[Finding]:
        nodes = list(_scope_nodes(scope))
        names = self._node_names(nodes)
        for node in nodes:
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr in self.config.cross_shard_allow_methods:
                continue
            if self._is_node_expr(node.func.value, names):
                yield self.finding(
                    source, node,
                    "calls .%s() on a JBOF node object; under "
                    "partition-parallel execution the node may live in "
                    "another worker process — reach it over the network "
                    "with rpc.call/rpc.notify" % node.func.attr)
        for nested in _nested_functions(scope):
            yield from self._check_scope(source, nested)

    def _is_registry(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self.config.cross_shard_registries
        if isinstance(node, ast.Name):
            return node.id in self.config.cross_shard_registries
        return False

    def _yields_nodes(self, node: ast.AST) -> bool:
        """True when iterating ``node`` produces registry node objects."""
        if self._is_registry(node):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "values":
                return self._is_registry(func.value)
            if _dotted(func) in ("sorted", "list", "tuple", "reversed",
                                 "enumerate") and node.args:
                return self._yields_nodes(node.args[0])
        return False

    def _is_node_expr(self, node: ast.AST, names: Set[str]) -> bool:
        """True when ``node`` evaluates to a registry node object."""
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Subscript):
            return self._is_registry(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            return (isinstance(func, ast.Attribute)
                    and func.attr in ("get", "pop")
                    and self._is_registry(func.value))
        return False

    def _node_names(self, nodes: List[ast.AST]) -> Set[str]:
        """Names bound to node objects within one lexical scope."""
        names: Set[str] = set()

        def bind(target: ast.AST) -> None:
            # ``for index, node in enumerate(...)`` binds the last
            # tuple element to the node.
            if isinstance(target, ast.Tuple) and target.elts:
                target = target.elts[-1]
            if isinstance(target, ast.Name):
                names.add(target.id)

        for node in nodes:
            if isinstance(node, ast.For) and self._yields_nodes(node.iter):
                bind(node.target)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if self._yields_nodes(gen.iter):
                        bind(gen.target)
            elif isinstance(node, ast.Assign) and \
                    self._is_node_expr(node.value, set()):
                for target in node.targets:
                    bind(target)
        return names


def default_rules(config: LintConfig) -> List[Rule]:
    """The shipped rule catalog, in rule-id order."""
    from repro.lint.races import flow_rules

    return [
        DirectRandomUse(config),
        WallClockUse(config),
        UnsortedSetIteration(config),
        ImportLayering(config),
        MutableSharedState(config),
        CrossShardNodeCall(config),
    ] + flow_rules(config)


def catalog_lines() -> List[str]:
    """``SIMxxx  title`` for every registered rule, in id order."""
    return ["%s  %s" % (rule.rule_id, rule.title)
            for rule in default_rules(LintConfig())]


def catalog_range() -> str:
    """The inclusive rule-id span, e.g. ``SIM001-SIM009``."""
    rules = default_rules(LintConfig())
    return "%s-%s" % (rules[0].rule_id, rules[-1].rule_id)


# The catalog header is generated, not hand-maintained: appending it
# here keeps the module docstring in lockstep with the registered
# rule list (the old hand-written header drifted the moment SIM006
# landed without a docstring update).
__doc__ = (__doc__ or "") + "\nRegistered rules:\n\n" + \
    "\n".join("* " + line for line in catalog_lines()) + "\n"
