"""The simlint rule engine.

A :class:`Rule` inspects one parsed module and yields
:class:`Finding` records.  The engine walks the requested paths,
parses each Python file once, runs every rule over it, filters
per-line suppressions (``# simlint: ignore[SIM001]``), and renders
the surviving findings as text or JSON.

Exit codes: 0 clean, 1 findings, 2 files that failed to parse.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.config import LintConfig

#: ``# simlint: ignore`` suppresses every rule on the line;
#: ``# simlint: ignore[SIM001, SIM003]`` only the listed rules.
SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule, self.message)


@dataclass
class ModuleSource:
    """A parsed module plus the metadata rules key off."""

    path: str                 #: path as given on the command line
    relpath: str              #: posix-style path for allowlist matching
    module: Optional[str]     #: dotted name under ``repro``, or None
    text: str
    lines: List[str]
    tree: ast.AST


class Rule:
    """Base class for simlint rules."""

    rule_id = "SIM000"
    title = ""

    def __init__(self, config: LintConfig):
        self.config = config

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.rule_id, source.path,
                       getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1, message)


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package root."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_module(path: Path, display: Optional[str] = None) -> ModuleSource:
    """Parse one file into a :class:`ModuleSource`."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return ModuleSource(
        path=display or str(path),
        relpath=str(PurePosixPath(*path.parts)),
        module=module_name_for(path),
        text=text,
        lines=text.splitlines(),
        tree=tree,
    )


def suppressed(source: ModuleSource, finding: Finding) -> bool:
    """True when the finding's line carries a matching suppression."""
    if not 1 <= finding.line <= len(source.lines):
        return False
    match = SUPPRESS_RE.search(source.lines[finding.line - 1])
    if match is None:
        return False
    listed = match.group("rules")
    if listed is None:
        return True
    return finding.rule in {r.strip().upper() for r in listed.split(",")}


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    errors: List[str]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of .py files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                yield candidate
        else:
            yield path


def run(paths: Sequence[str], config: Optional[LintConfig] = None,
        rules: Optional[Iterable[Rule]] = None) -> LintReport:
    """Lint ``paths`` and return the report."""
    from repro.lint.rules import default_rules

    config = config or LintConfig()
    active = list(rules) if rules is not None else default_rules(config)
    findings: List[Finding] = []
    errors: List[str] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        try:
            source = load_module(path)
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            errors.append("%s: %s" % (path, exc))
            continue
        for rule in active:
            for finding in rule.check(source):
                if not suppressed(source, finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings, files_checked, errors)


def to_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in report.findings]
    for error in report.errors:
        lines.append("error: %s" % error)
    lines.append("%d file%s checked, %d finding%s" % (
        report.files_checked, "" if report.files_checked == 1 else "s",
        len(report.findings), "" if len(report.findings) == 1 else "s"))
    return "\n".join(lines)


def to_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps({
        "files_checked": report.files_checked,
        "findings": [asdict(finding) for finding in report.findings],
        "errors": list(report.errors),
        "exit_code": report.exit_code,
    }, indent=2, sort_keys=True)
