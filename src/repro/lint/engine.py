"""The simlint rule engine.

A :class:`Rule` inspects one parsed module and yields
:class:`Finding` records.  The engine walks the requested paths,
parses each Python file exactly once into a :class:`ModuleSource`
carrying a shared :class:`ModuleIndex` — a one-pass node index plus a
per-function CFG cache every rule draws from instead of re-walking
the tree — runs every (selected) rule over it, filters per-line
suppressions (``# simlint: ignore[SIM001]``) and baseline entries,
and renders the surviving findings as text, JSON, or SARIF.

Exit codes: 0 clean, 1 findings, 2 files that failed to parse.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path, PurePosixPath
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.config import LintConfig
from repro.lint.flow import ControlFlowGraph, build_cfg

#: ``# simlint: ignore`` suppresses every rule on the line;
#: ``# simlint: ignore[SIM001, SIM003]`` only the listed rules.
SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule, self.message)


class ModuleIndex:
    """A single-pass node index over one parsed module.

    Built once per file and shared by every rule: ``nodes(T, ...)``
    replaces per-rule ``ast.walk`` sweeps, ``functions()`` lists all
    defs, and ``cfg(func)`` memoizes control-flow graphs so the
    dataflow rules (SIM007+) pay CFG construction once per function
    regardless of how many analyses run over it.
    """

    def __init__(self, tree: ast.AST):
        self._by_type: Dict[type, List[ast.AST]] = {}
        for node in ast.walk(tree):
            self._by_type.setdefault(type(node), []).append(node)
        self._cfgs: Dict[int, ControlFlowGraph] = {}

    def nodes(self, *types: type) -> List[ast.AST]:
        """All nodes of the exact AST classes given, in walk order."""
        if len(types) == 1:
            return self._by_type.get(types[0], [])
        result: List[ast.AST] = []
        for node_type in types:
            result.extend(self._by_type.get(node_type, []))
        return result

    def functions(self) -> List[ast.AST]:
        """Every def in the module, including nested ones."""
        return self.nodes(ast.FunctionDef, ast.AsyncFunctionDef)

    def cfg(self, func: ast.AST) -> ControlFlowGraph:
        """The (cached) control-flow graph of one function body."""
        key = id(func)
        cached = self._cfgs.get(key)
        if cached is None:
            cached = build_cfg(func)
            self._cfgs[key] = cached
        return cached


@dataclass
class ModuleSource:
    """A parsed module plus the metadata rules key off."""

    path: str                 #: path as given on the command line
    relpath: str              #: posix-style path for allowlist matching
    module: Optional[str]     #: dotted name under ``repro``, or None
    text: str
    lines: List[str]
    tree: ast.AST
    index: ModuleIndex = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.index is None:
            self.index = ModuleIndex(self.tree)


class Rule:
    """Base class for simlint rules."""

    rule_id = "SIM000"
    title = ""

    def __init__(self, config: LintConfig):
        self.config = config

    def check(self, source: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.rule_id, source.path,
                       getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1, message)


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package root."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_module(path: Path, display: Optional[str] = None) -> ModuleSource:
    """Parse one file into a :class:`ModuleSource`."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return ModuleSource(
        path=display or str(path),
        relpath=str(PurePosixPath(*path.parts)),
        module=module_name_for(path),
        text=text,
        lines=text.splitlines(),
        tree=tree,
    )


def suppressed(source: ModuleSource, finding: Finding) -> bool:
    """True when the finding's line carries a matching suppression."""
    if not 1 <= finding.line <= len(source.lines):
        return False
    match = SUPPRESS_RE.search(source.lines[finding.line - 1])
    if match is None:
        return False
    listed = match.group("rules")
    if listed is None:
        return True
    return finding.rule in {r.strip().upper() for r in listed.split(",")}


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    errors: List[str]
    baselined: int = 0        #: findings swallowed by the baseline file

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of .py files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                yield candidate
        else:
            yield path


def baseline_key(finding: Finding) -> str:
    """Line-number-independent identity of a finding.

    Baselines survive unrelated edits to the same file by keying on
    (rule, path, message) rather than exact position; duplicates are
    matched by multiplicity.
    """
    return "%s::%s::%s" % (finding.rule, finding.path, finding.message)


def load_baseline(path: str) -> Dict[str, int]:
    """Parse a baseline file into key -> allowed count."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    counts: Dict[str, int] = {}
    for key in data.get("findings", []):
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(report: "LintReport") -> str:
    """Serialize the report's findings as a baseline file."""
    return json.dumps({
        "comment": "simlint baseline: findings listed here are "
                   "tolerated until paid down; regenerate with "
                   "--write-baseline",
        "findings": sorted(baseline_key(f) for f in report.findings),
    }, indent=2)


def apply_baseline(findings: List[Finding],
                   baseline: Dict[str, int]) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined_count)."""
    remaining = dict(baseline)
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def run(paths: Sequence[str], config: Optional[LintConfig] = None,
        rules: Optional[Iterable[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        baseline: Optional[Dict[str, int]] = None) -> LintReport:
    """Lint ``paths`` and return the report.

    ``select`` restricts the run to the given rule ids; ``baseline``
    (from :func:`load_baseline`) filters out tolerated findings,
    recording how many matched in ``report.baselined``.
    """
    from repro.lint.rules import default_rules

    config = config or LintConfig()
    active = list(rules) if rules is not None else default_rules(config)
    if select is not None:
        wanted: Set[str] = {rule_id.strip().upper() for rule_id in select}
        unknown = wanted - {rule.rule_id for rule in active}
        if unknown:
            raise ValueError("unknown rule id(s): %s"
                             % ", ".join(sorted(unknown)))
        active = [rule for rule in active if rule.rule_id in wanted]
    findings: List[Finding] = []
    errors: List[str] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        try:
            source = load_module(path)
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            errors.append("%s: %s" % (path, exc))
            continue
        for rule in active:
            for finding in rule.check(source):
                if not suppressed(source, finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    baselined = 0
    if baseline:
        findings, baselined = apply_baseline(findings, baseline)
    return LintReport(findings, files_checked, errors, baselined)


def to_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in report.findings]
    for error in report.errors:
        lines.append("error: %s" % error)
    summary = "%d file%s checked, %d finding%s" % (
        report.files_checked, "" if report.files_checked == 1 else "s",
        len(report.findings), "" if len(report.findings) == 1 else "s")
    if report.baselined:
        summary += " (%d baselined)" % report.baselined
    lines.append(summary)
    return "\n".join(lines)


def to_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps({
        "files_checked": report.files_checked,
        "findings": [asdict(finding) for finding in report.findings],
        "errors": list(report.errors),
        "baselined": report.baselined,
        "exit_code": report.exit_code,
    }, indent=2, sort_keys=True)
