"""The discrete-event simulator.

The simulator maintains a heap of (time, priority, sequence, event)
entries and advances simulated time by popping the earliest entry and
running its callbacks.  Time is a float; throughout this project the
unit is **microseconds**, matching the scale at which NVMe and RDMA
operations complete.
"""

from __future__ import annotations

import hashlib
import heapq
import struct
from typing import Any, Callable, Generator, Optional

from repro.sim.errors import StopSimulation
from repro.sim.events import Event, Timeout, all_of, any_of
from repro.sim.process import Process

#: Default priority for scheduled events.  Interrupts use 0 (urgent).
NORMAL_PRIORITY = 1


class Simulator:
    """A discrete-event simulation kernel.

    Usage::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._digest = None
        self._digest_events = 0

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Number of events still on the schedule heap."""
        return len(self._heap)

    def enable_schedule_digest(self) -> None:
        """Start hashing the event schedule (determinism verifier).

        Every popped heap entry folds its
        ``(time, priority, sequence, event-kind)`` into a running
        SHA-256.  Two runs of the same seeded model must produce the
        same digest; any divergence pinpoints nondeterminism in the
        schedule itself rather than in derived metrics.
        """
        self._digest = hashlib.sha256()
        self._digest_events = 0

    @property
    def schedule_digest(self) -> Optional[str]:
        """Hex digest of the schedule so far, or None when disabled."""
        return self._digest.hexdigest() if self._digest is not None else None

    @property
    def schedule_digest_events(self) -> int:
        """Number of events folded into the schedule digest."""
        return self._digest_events

    # -- event construction ---------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Composite event firing once all ``events`` fire."""
        return all_of(self, events)

    def any_of(self, events):
        """Composite event firing once any of ``events`` fires."""
        return any_of(self, events)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run a plain callable ``delay`` time units from now."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _evt: callback())
        return event

    # -- engine ---------------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0,
                        priority: int = NORMAL_PRIORITY) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty."""
        when, priority, sequence, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise RuntimeError("time went backwards: %r < %r" % (when, self._now))
        self._now = when
        if self._digest is not None:
            self._digest.update(struct.pack("<dqq", when, priority, sequence))
            self._digest.update(type(event).__name__.encode("ascii"))
            self._digest_events += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until simulated time reaches it;
        * an :class:`Event` — run until that event triggers, returning
          its value (re-raising its exception when it failed).
        """
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_on_event)
            elif stop_event.triggered:
                return self._event_outcome(stop_event)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError("cannot run until %r, now is %r" % (deadline, self._now))

        try:
            while self._heap:
                if self.peek() > deadline:
                    self._now = deadline
                    return None
                self.step()
        except StopSimulation as stop:
            if stop_event is not None and stop_event.triggered:
                return self._event_outcome(stop_event)
            return stop.value
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "run() until an event, but the simulation ran out of events "
                "before %r triggered" % stop_event
            )
        if stop_event is not None:
            return self._event_outcome(stop_event)
        if deadline != float("inf"):
            self._now = deadline
        return None

    @staticmethod
    def _event_outcome(event: Event) -> Any:
        if event._ok:
            return event._value
        event._defused = True
        raise event._value

    def _stop_on_event(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
        raise StopSimulation(event._value if event._ok else None)

    def __repr__(self):
        return "<Simulator t=%.3f pending=%d>" % (self._now, len(self._heap))
