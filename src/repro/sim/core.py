"""The discrete-event simulator.

The simulator maintains a heap of (time, priority, sequence, event)
entries and advances simulated time by popping the earliest entry and
running its callbacks.  Time is a float; throughout this project the
unit is **microseconds**, matching the scale at which NVMe and RDMA
operations complete.

Fast paths (see docs/performance.md):

* zero-delay, normal-priority events — the bulk of the schedule:
  process wakeups, ``Event.succeed``, immediate resumes — bypass the
  heap through a FIFO ``deque``.  Dispatch order (and therefore the
  schedule digest) is byte-identical to the pure-heap engine: every
  entry still consumes a sequence number, entries already on the heap
  for the current timestep always carry lower (priority, sequence)
  keys, and interrupts (priority 0) still preempt the queue.
* :meth:`Simulator.run_batch` drains same-timestamp events in an
  inlined inner loop without re-entering the dispatch preamble
  (deadline checks, heap access) between events.
* dispatched :class:`Timeout` objects that provably have no remaining
  references are recycled through a small pool (CPython only).
"""

from __future__ import annotations

import hashlib
import heapq
import struct
import sys
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.sim.errors import StopSimulation
from repro.sim.events import Delivery, Event, Timeout, all_of, any_of
from repro.sim.process import Process

#: Default priority for scheduled events.  Interrupts use 0 (urgent).
NORMAL_PRIORITY = 1

#: Priority for network delivery drains (:class:`repro.net.topology.
#: DeliveryPump`).  Strictly after normal events at the same timestamp,
#: so handlers scheduled *at* t observe a stable world before new
#: cross-NIC traffic lands — and so the drain order is a function of the
#: pump inbox alone, which is what makes per-shard schedule digests
#: comparable across worker counts.
DELIVERY_PRIORITY = 2

#: Timeout recycling proves "no one else holds this object" via the
#: CPython reference count; other interpreters skip the pool.
_REFCOUNT_POOLING = sys.implementation.name == "cpython"

#: Upper bound on pooled Timeout objects per simulator.
_TIMEOUT_POOL_MAX = 256


class Simulator:
    """A discrete-event simulation kernel.

    Usage::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0, sanitize: bool = False,
                 sanitize_seed: int = 0):
        self._now = float(start_time)
        self._heap: list = []
        #: FIFO of (sequence, event) for zero-delay normal-priority
        #: entries at the current timestep.
        self._imm: deque = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._digest = None
        self._digest_events = 0
        self._events_dispatched = 0
        self._timeout_pool: list = []
        #: Order-dependence sanitizer (TSan-style runtime oracle): when
        #: enabled, same-timestamp normal-priority ties are broken by a
        #: named RNG stream instead of FIFO order.  Every such order is
        #: a legal cooperative schedule, so *functional* outcomes must
        #: not change; code whose results move under the permutation
        #: has a hidden order dependence (see docs/static-analysis.md).
        self._sanitize_rng = None
        if sanitize:
            from repro.sim.rng import derive_stream
            self._sanitize_rng = derive_stream(sanitize_seed, "sim.sanitize")

    @property
    def sanitizing(self) -> bool:
        """True when tie-permutation sanitize mode is active."""
        return self._sanitize_rng is not None

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Number of events still on the schedule (heap + immediate queue)."""
        return len(self._heap) + len(self._imm)

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched over this simulator's lifetime."""
        return self._events_dispatched

    def enable_schedule_digest(self) -> None:
        """Start hashing the event schedule (determinism verifier).

        Every popped schedule entry folds its
        ``(time, priority, sequence, event-kind)`` into a running
        SHA-256.  Two runs of the same seeded model must produce the
        same digest; any divergence pinpoints nondeterminism in the
        schedule itself rather than in derived metrics.
        """
        self._digest = hashlib.sha256()
        self._digest_events = 0

    @property
    def schedule_digest(self) -> Optional[str]:
        """Hex digest of the schedule so far, or None when disabled."""
        return self._digest.hexdigest() if self._digest is not None else None

    @property
    def schedule_digest_events(self) -> int:
        """Number of events folded into the schedule digest."""
        return self._digest_events

    # -- event construction ---------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now.

        Reuses a pooled, already-dispatched Timeout when one is
        available — identical semantics, no allocation.
        """
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout.callbacks = []
            timeout._ok = True
            timeout._value = value
            timeout._defused = False
            self._schedule_event(timeout, delay=delay)
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Composite event firing once all ``events`` fire."""
        return all_of(self, events)

    def any_of(self, events):
        """Composite event firing once any of ``events`` fires."""
        return any_of(self, events)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run a plain callable ``delay`` time units from now."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _evt: callback())
        return event

    def schedule_delivery(self, delay: float,
                          callback: Callable[[], None]) -> Event:
        """Run ``callback`` at ``now + delay``, after all same-time
        normal-priority events (:data:`DELIVERY_PRIORITY`)."""
        if delay < 0:
            raise ValueError("negative delivery delay %r" % delay)
        event = Delivery(self)
        event.callbacks.append(lambda _evt: callback())
        self._schedule_event(event, delay=delay, priority=DELIVERY_PRIORITY)
        return event

    # -- engine ---------------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0,
                        priority: int = NORMAL_PRIORITY) -> None:
        self._sequence += 1
        if delay == 0.0 and priority == NORMAL_PRIORITY:
            self._imm.append((self._sequence, event))
        else:
            heapq.heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        if self._imm:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def _pop_next(self):
        """Remove and return the next ``(when, priority, sequence, event)``.

        Heap entries for the current timestep dispatch before immediate
        entries whenever their (priority, sequence) key is lower —
        exactly the order the pure-heap engine would have produced.
        """
        imm = self._imm
        heap = self._heap
        if imm:
            now = self._now
            if self._sanitize_rng is not None:
                # Sanitize mode: interrupts still preempt, but the
                # FIFO tie among same-timestep normal events is broken
                # at random — any pick is a legal schedule.
                if heap:
                    head = heap[0]
                    if head[0] == now and head[1] < NORMAL_PRIORITY:
                        return heapq.heappop(heap)
                pick = self._sanitize_rng.randrange(len(imm))
                sequence, event = imm[pick]
                del imm[pick]
                return (now, NORMAL_PRIORITY, sequence, event)
            if heap:
                head = heap[0]
                if head[0] == now and (
                        head[1] < NORMAL_PRIORITY
                        or (head[1] == NORMAL_PRIORITY and head[2] < imm[0][0])):
                    return heapq.heappop(heap)
            sequence, event = imm.popleft()
            return (now, NORMAL_PRIORITY, sequence, event)
        return heapq.heappop(heap)

    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty.

        This is the reference dispatcher; :meth:`run_batch` inlines the
        same logic.  Keeping both lets the determinism tests replay a
        run event-by-event and compare schedule digests.
        """
        when, priority, sequence, event = self._pop_next()
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise RuntimeError("time went backwards: %r < %r" % (when, self._now))
        self._now = when
        self._events_dispatched += 1
        if self._digest is not None:
            self._digest.update(struct.pack("<dqq", when, priority, sequence))
            self._digest.update(type(event).__name__.encode("ascii"))
            self._digest_events += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until simulated time reaches it;
        * an :class:`Event` — run until that event triggers, returning
          its value (re-raising its exception when it failed).
        """
        return self.run_batch(until)

    def run_batch(self, until: Any = None) -> Any:
        """Run with the batched dispatch loop (same semantics as ``run``).

        Drains same-timestamp immediate events back-to-back without
        re-entering the dispatch preamble (deadline check, heap pop)
        between them.  Dispatch order matches :meth:`step` exactly.
        In sanitize mode the inlined FIFO fast path is bypassed and
        every event goes through :meth:`step`, which applies the
        permuted tie-breaking.
        """
        if self._sanitize_rng is not None:
            return self._run_sanitized(until)
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_on_event)
            elif stop_event.triggered:
                return self._event_outcome(stop_event)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError("cannot run until %r, now is %r" % (deadline, self._now))

        heap = self._heap
        imm = self._imm
        pool = self._timeout_pool
        recycle = _REFCOUNT_POOLING
        getrefcount = sys.getrefcount
        heappop = heapq.heappop
        pack = struct.pack
        dispatched = 0
        try:
            while heap or imm:
                if imm:
                    # Inner fast path: stay at the current timestep.
                    when = self._now
                    if heap:
                        head = heap[0]
                        if head[0] == when and (
                                head[1] < NORMAL_PRIORITY
                                or (head[1] == NORMAL_PRIORITY
                                    and head[2] < imm[0][0])):
                            when, priority, sequence, event = heappop(heap)
                        else:
                            sequence, event = imm.popleft()
                            priority = NORMAL_PRIORITY
                    else:
                        sequence, event = imm.popleft()
                        priority = NORMAL_PRIORITY
                else:
                    # Dispatch preamble: advance time via the heap.
                    when = heap[0][0]
                    if when > deadline:
                        self._now = deadline
                        return None
                    when, priority, sequence, event = heappop(heap)
                    self._now = when
                dispatched += 1
                if self._digest is not None:
                    self._digest.update(pack("<dqq", when, priority, sequence))
                    self._digest.update(type(event).__name__.encode("ascii"))
                    self._digest_events += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if (recycle and type(event) is Timeout
                        and getrefcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX):
                    pool.append(event)
        except StopSimulation as stop:
            if stop_event is not None and stop_event.triggered:
                return self._event_outcome(stop_event)
            return stop.value
        finally:
            self._events_dispatched += dispatched
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "run() until an event, but the simulation ran out of events "
                "before %r triggered" % stop_event
            )
        if stop_event is not None:
            return self._event_outcome(stop_event)
        if deadline != float("inf"):
            self._now = deadline
        return None

    def _run_sanitized(self, until: Any = None) -> Any:
        """Sanitize-mode dispatch loop: :meth:`step` per event.

        Semantics match :meth:`run_batch`; only the tie order differs.
        Timeout pooling is skipped — the sanitizer optimizes for
        schedule coverage, not throughput.
        """
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_on_event)
            elif stop_event.triggered:
                return self._event_outcome(stop_event)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError("cannot run until %r, now is %r"
                                 % (deadline, self._now))
        try:
            while self._heap or self._imm:
                if not self._imm and self._heap[0][0] > deadline:
                    self._now = deadline
                    return None
                self.step()
        except StopSimulation as stop:
            if stop_event is not None and stop_event.triggered:
                return self._event_outcome(stop_event)
            return stop.value
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "run() until an event, but the simulation ran out of events "
                "before %r triggered" % stop_event
            )
        if stop_event is not None:
            return self._event_outcome(stop_event)
        if deadline != float("inf"):
            self._now = deadline
        return None

    def run_window(self, end: float,
                   inclusive: bool = False) -> Optional[StopSimulation]:
        """Dispatch every event scheduled before ``end``; keep the rest.

        The windowed dispatcher for the conservative parallel engine
        (:mod:`repro.sim.parallel`): events with ``when < end`` (or
        ``when <= end`` when ``inclusive``) run exactly as
        :meth:`run_batch` would run them; later events stay queued, and
        — unlike ``run(until=end)`` — the clock is left at the last
        dispatched event, so consecutive windows tile without skewing
        timestamps.  Returns the :class:`StopSimulation` that escaped a
        callback (``run(until=event)`` support), or ``None``.
        """
        if self._sanitize_rng is not None:
            raise RuntimeError(
                "sanitize mode is serial-only: the windowed parallel "
                "dispatcher relies on FIFO tie order for its cross-shard "
                "digest contract")
        end = float(end)
        heap = self._heap
        imm = self._imm
        pool = self._timeout_pool
        recycle = _REFCOUNT_POOLING
        getrefcount = sys.getrefcount
        heappop = heapq.heappop
        pack = struct.pack
        dispatched = 0
        try:
            while heap or imm:
                if imm:
                    when = self._now
                    if when > end or (when == end and not inclusive):
                        break  # pragma: no cover - window protocol guard
                    if heap:
                        head = heap[0]
                        if head[0] == when and (
                                head[1] < NORMAL_PRIORITY
                                or (head[1] == NORMAL_PRIORITY
                                    and head[2] < imm[0][0])):
                            when, priority, sequence, event = heappop(heap)
                        else:
                            sequence, event = imm.popleft()
                            priority = NORMAL_PRIORITY
                    else:
                        sequence, event = imm.popleft()
                        priority = NORMAL_PRIORITY
                else:
                    when = heap[0][0]
                    if when > end or (when == end and not inclusive):
                        break
                    when, priority, sequence, event = heappop(heap)
                    self._now = when
                dispatched += 1
                if self._digest is not None:
                    self._digest.update(pack("<dqq", when, priority, sequence))
                    self._digest.update(type(event).__name__.encode("ascii"))
                    self._digest_events += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if (recycle and type(event) is Timeout
                        and getrefcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX):
                    pool.append(event)
        except StopSimulation as stop:
            return stop
        finally:
            self._events_dispatched += dispatched
        return None

    def sync_now(self, when: float) -> None:
        """Advance the idle clock to ``when`` without dispatching.

        Used by the parallel engine to mirror ``run(until=number)``,
        which leaves the clock at the deadline even when no event sits
        exactly there.  Never moves time backwards.
        """
        if when > self._now:
            self._now = float(when)

    @staticmethod
    def _event_outcome(event: Event) -> Any:
        if event._ok:
            return event._value
        event._defused = True
        raise event._value

    def _stop_on_event(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
        raise StopSimulation(event._value if event._ok else None)

    def __repr__(self):
        return "<Simulator t=%.3f pending=%d>" % (self._now, self.pending_events)
