"""Deterministic, named random-number streams.

Every stochastic component (SSD service-time jitter, workload key
choice, inter-arrival sampling) draws from its own named stream so
that enabling/disabling one mechanism does not perturb the random
sequence seen by another — a standard variance-reduction practice in
simulation studies, and essential for clean A/B ablations such as
CRRS on/off (Fig. 7) or data swapping on/off (Fig. 10).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for reproducible per-purpose :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use.

        The sub-seed is derived by hashing (master seed, name) so the
        mapping is stable across runs and insensitive to creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                ("%d/%s" % (self.seed, name)).encode("utf-8")
            ).digest()
            sub_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(sub_seed)
        return self._streams[name]

    def fork(self, label: str) -> "RngRegistry":
        """A child registry with an independent but derived master seed."""
        digest = hashlib.sha256(
            ("fork/%d/%s" % (self.seed, label)).encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self):
        return "<RngRegistry seed=%d streams=%d>" % (self.seed, len(self._streams))
