"""Deterministic, named random-number streams.

Every stochastic component (SSD service-time jitter, workload key
choice, inter-arrival sampling) draws from its own named stream so
that enabling/disabling one mechanism does not perturb the random
sequence seen by another — a standard variance-reduction practice in
simulation studies, and essential for clean A/B ablations such as
CRRS on/off (Fig. 7) or data swapping on/off (Fig. 10).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

#: The stream type handed out by this module.  Components type their
#: parameters against this alias instead of importing :mod:`random`
#: themselves — the simlint SIM001 rule keeps direct ``random`` use
#: confined to this module.
RandomStream = random.Random


def derive_stream(seed: int, name: str) -> RandomStream:
    """One deterministic stream for ``(seed, name)``.

    The standalone form of :meth:`RngRegistry.stream`, for components
    that need a single named stream without carrying a registry.  The
    same (seed, name) pair always yields the same sequence, and
    distinct names yield statistically independent sequences.
    """
    digest = hashlib.sha256(
        ("%d/%s" % (int(seed), name)).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RngRegistry:
    """Factory for reproducible per-purpose :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """The stream for ``name``, created on first use.

        The sub-seed is derived by hashing (master seed, name) so the
        mapping is stable across runs and insensitive to creation order.
        """
        if name not in self._streams:
            self._streams[name] = derive_stream(self.seed, name)
        return self._streams[name]

    def fork(self, label: str) -> "RngRegistry":
        """A child registry with an independent but derived master seed."""
        digest = hashlib.sha256(
            ("fork/%d/%s" % (self.seed, label)).encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self):
        return "<RngRegistry seed=%d streams=%d>" % (self.seed, len(self._streams))
