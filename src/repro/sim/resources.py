"""Shared resources with bounded capacity.

:class:`Resource` models a pool of interchangeable slots (e.g. NVMe
submission-queue entries, CPU cores).  Processes request a slot, hold
it across simulated time, and release it; waiters queue FCFS — the
queueing discipline LEED uses throughout (§3.4).

:class:`TokenBucket` models the paper's token accounting: a counted
pool that can be granted/consumed without a strict acquire/release
pairing, used by the intra-JBOF I/O engine and the inter-JBOF flow
controller.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.events import Event


class ResourceRequest(Event):
    """Pending acquisition of ``amount`` resource slots."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.amount = amount

    def cancel(self) -> None:
        """Withdraw the request if it has not been granted yet."""
        if not self.triggered:
            try:
                self.resource._waiters.remove(self)
            except ValueError:
                pass


class Resource:
    """A counted resource with FCFS waiters."""

    def __init__(self, sim, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % capacity)
        self.sim = sim
        self.name = name
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[ResourceRequest] = deque()
        # Utilisation accounting: integral of in_use over time.
        self._busy_area = 0.0
        self._last_change = sim.now

    # -- inspection ---------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Slots free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending (ungranted) requests."""
        return len(self._waiters)

    def utilization(self) -> float:
        """Mean fraction of capacity held since creation."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    # -- acquire / release ----------------------------------------------------

    def acquire(self, amount: int = 1) -> ResourceRequest:
        """Request ``amount`` slots; returns an event granting them."""
        if amount < 1 or amount > self.capacity:
            raise ValueError(
                "cannot acquire %r slots from %r with capacity %r"
                % (amount, self.name, self.capacity)
            )
        request = ResourceRequest(self, amount)
        self._waiters.append(request)
        self._grant()
        return request

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` previously-acquired slots."""
        if amount > self._in_use:
            raise ValueError(
                "release(%r) exceeds in_use=%r on %r" % (amount, self._in_use, self.name)
            )
        self._account()
        self._in_use -= amount
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            request = self._waiters[0]
            if request.triggered:
                self._waiters.popleft()
                continue
            if request.amount > self.capacity - self._in_use:
                break
            self._waiters.popleft()
            self._account()
            self._in_use += request.amount
            request.succeed(self)

    def __repr__(self):
        return "<Resource %s %d/%d queued=%d>" % (
            self.name, self._in_use, self.capacity, len(self._waiters))


class TokenBucket:
    """A replenishable token pool with waiting consumers.

    Unlike :class:`Resource`, tokens are granted by an external
    authority (``grant``) rather than released by holders — matching
    how a back-end SSD allocates tokens to tenants and piggybacks them
    on responses (§3.5).
    """

    def __init__(self, sim, tokens: int = 0, capacity: Optional[int] = None,
                 name: str = "tokens"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._tokens = int(tokens)
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def tokens(self) -> int:
        """Tokens currently available."""
        return self._tokens

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def grant(self, amount: int) -> None:
        """Add ``amount`` tokens (clamped to capacity when set)."""
        if amount < 0:
            raise ValueError("cannot grant negative tokens")
        self._tokens += amount
        if self.capacity is not None:
            self._tokens = min(self._tokens, self.capacity)
        self._wake()

    def set_level(self, amount: int) -> None:
        """Overwrite the token level (used when a response reports it)."""
        if amount < 0:
            raise ValueError("token level cannot be negative")
        self._tokens = amount
        if self.capacity is not None:
            self._tokens = min(self._tokens, self.capacity)
        self._wake()

    def try_consume(self, amount: int = 1) -> bool:
        """Consume immediately when possible; never waits."""
        if amount <= self._tokens:
            self._tokens -= amount
            return True
        return False

    def consume(self, amount: int = 1) -> ResourceRequest:
        """Event that fires once ``amount`` tokens have been consumed."""
        request = ResourceRequest(self, amount)  # type: ignore[arg-type]
        self._waiters.append(request)
        self._wake()
        return request

    def _wake(self) -> None:
        while self._waiters:
            request = self._waiters[0]
            if request.triggered:
                self._waiters.popleft()
                continue
            if request.amount > self._tokens:
                break
            self._waiters.popleft()
            self._tokens -= request.amount
            request.succeed(self)

    def __repr__(self):
        return "<TokenBucket %s tokens=%d queued=%d>" % (
            self.name, self._tokens, len(self._waiters))
