"""Core event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence at a point in simulated
time.  Processes (see :mod:`repro.sim.process`) yield events to wait on
them; the simulator resumes the process once the event triggers.

Events follow the familiar simpy-style life cycle:

``untriggered -> triggered (ok | failed) -> processed``

Once triggered, an event is placed on the simulator's queue and its
callbacks run when the simulator reaches it.  Triggering twice raises
:class:`~repro.sim.errors.EventAlreadyTriggered`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.errors import EventAlreadyTriggered

PENDING = object()
"""Sentinel for the value of an event that has not been triggered."""


class Event:
    """A one-shot occurrence that processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim):
        self.sim = sim
        #: Callables invoked (with this event) when the event fires.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (ok or failed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._value is PENDING:
            raise AttributeError("value of event %r is not yet available" % self)
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered("%r already triggered" % self)
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception, got %r" % (exception,))
        if self._value is not PENDING:
            raise EventAlreadyTriggered("%r already triggered" % self)
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return "<%s %s at t=%s>" % (type(self).__name__, state, getattr(self.sim, "now", "?"))


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay %r" % delay)
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise EventAlreadyTriggered("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise EventAlreadyTriggered("Timeout events trigger themselves")


class Delivery(Event):
    """A pre-succeeded event carrying a network delivery drain.

    Scheduled directly by :meth:`Simulator.schedule_delivery` at
    ``DELIVERY_PRIORITY`` so a drain at time ``t`` runs after every
    normal-priority event at ``t``.  Like :class:`Timeout` it triggers
    itself; unlike Timeout it is never pooled (the pump holds no
    reference once dispatched, and keeping the type distinct keeps the
    schedule digest self-describing).
    """

    __slots__ = ()

    def __init__(self, sim):
        super().__init__(sim)
        self._ok = True
        self._value = None

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise EventAlreadyTriggered("Delivery events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise EventAlreadyTriggered("Delivery events trigger themselves")


class ConditionValue(dict):
    """Mapping of event -> value for the events that fired in a condition."""


class Condition(Event):
    """Composite event over several sub-events (all-of / any-of)."""

    __slots__ = ("events", "_evaluate", "_remaining")

    def __init__(self, sim, evaluate: Callable[[int, int], bool], events):
        super().__init__(sim)
        self.events = list(events)
        self._evaluate = evaluate
        self._remaining = 0
        if not self.events:
            self.succeed(ConditionValue())
            return
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        for event in self.events:
            # An event counts as already-fired only once processed
            # (Timeout pre-sets its value at construction, so checking
            # ``triggered`` here would fire conditions early).
            if event.callbacks is None:
                self._on_sub_event(event)
            else:
                event.callbacks.append(self._on_sub_event)

    def _on_sub_event(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining += 1
        total = len(self.events)
        if self._evaluate(self._remaining, total):
            value = ConditionValue()
            for sub in self.events:
                # Only sub-events that actually fired (processed), not
                # pending Timeouts whose value is pre-set.
                if sub.callbacks is None and sub._ok:
                    value[sub] = sub._value
            self.succeed(value)


def all_of(sim, events) -> Condition:
    """Condition that fires once every event in ``events`` has fired."""
    return Condition(sim, lambda done, total: done == total, events)


def any_of(sim, events) -> Condition:
    """Condition that fires once at least one event in ``events`` fires."""
    return Condition(sim, lambda done, total: done >= 1, events)
