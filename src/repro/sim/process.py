"""Generator-driven simulation processes.

A process wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` instances; each yield suspends the
process until the yielded event triggers, at which point the event's
value is sent back into the generator (or its exception thrown in).

This mirrors the execution model of the SPDK reactor that LEED is
built on: a handler runs to completion between explicit yield points,
so there is no preemption inside a code block.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.errors import Interrupt
from repro.sim.events import Event


class Process(Event):
    """A running process.  Also an event that fires when it finishes.

    The process event succeeds with the generator's return value, or
    fails with the exception that escaped the generator.
    """

    __slots__ = ("generator", "name", "_target", "_interrupts")

    def __init__(self, sim, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError("Process requires a generator, got %r" % (generator,))
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None while running).
        self._target: Optional[Event] = None
        self._interrupts: list = []
        # Kick off the process via an immediately-scheduled initialization
        # event so creation order does not matter within a timestep.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        sim._schedule_event(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a finished process is an error; interrupting a
        process from itself is also an error.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt finished process %r" % self)
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule_event(interrupt_event, priority=0)

    # -- engine plumbing ----------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self.triggered:
            return
        # Detach from the event we were waiting on (relevant for interrupts,
        # where the original target is still pending).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        self.sim._active_process = self
        try:
            if event._ok:
                next_event = self.generator.send(event._value)
            else:
                # The event failed; throw its exception into the generator.
                event._defused = True
                next_event = self.generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._schedule_event(self)
            return
        self.sim._active_process = None

        if not isinstance(next_event, Event):
            raise TypeError(
                "process %r yielded %r, expected an Event" % (self.name, next_event)
            )
        if next_event.sim is not self.sim:
            raise ValueError("process yielded an event from another simulator")
        if next_event.callbacks is None:
            # Already processed -> resume immediately at the current time.
            immediate = Event(self.sim)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
                immediate._defused = True
            immediate.callbacks.append(self._resume)
            self.sim._schedule_event(immediate)
            self._target = immediate
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event

    def __repr__(self):
        return "<Process %s %s>" % (self.name, "done" if self.triggered else "alive")
