"""FIFO message channels between simulation processes.

:class:`Store` is the lockless concurrent queue of the paper's
intra-JBOF engine (§3.4): producers ``put`` items, consumers ``get``
them, both sides may block (bounded capacity on the producer side,
emptiness on the consumer side).  Discipline is strictly FCFS.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Event


class StorePut(Event):
    """Pending put of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    """Pending get from a store."""

    __slots__ = ()

    def cancel(self, store: "Store") -> None:
        if not self.triggered:
            try:
                store._getters.remove(self)
            except ValueError:
                pass


class Store:
    """A bounded FIFO channel."""

    def __init__(self, sim, capacity: float = float("inf"), name: str = "store"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def pending_puts(self) -> int:
        return len(self._putters)

    @property
    def pending_gets(self) -> int:
        return len(self._getters)

    def peek(self) -> Any:
        """Head item without removing it (raises IndexError when empty)."""
        return self.items[0]

    # -- operations -------------------------------------------------------------

    def put(self, item: Any) -> StorePut:
        """Event that fires once ``item`` has been enqueued."""
        put_event = StorePut(self, item)
        self._putters.append(put_event)
        self._dispatch()
        return put_event

    def try_put(self, item: Any) -> bool:
        """Enqueue immediately when space allows; never waits."""
        if len(self.items) < self.capacity:
            self.items.append(item)
            self._dispatch()
            return True
        return False

    def get(self) -> StoreGet:
        """Event that fires with the next item."""
        get_event = StoreGet(self.sim)
        self._getters.append(get_event)
        self._dispatch()
        return get_event

    def try_get(self) -> Optional[Any]:
        """Dequeue immediately, or None when empty."""
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move waiting puts into the buffer while space remains.
            while self._putters and len(self.items) < self.capacity:
                put_event = self._putters.popleft()
                if put_event.triggered:
                    continue
                self.items.append(put_event.item)
                put_event.succeed()
                progressed = True
            # Serve waiting gets from the buffer.
            while self._getters and self.items:
                get_event = self._getters.popleft()
                if get_event.triggered:
                    continue
                get_event.succeed(self.items.popleft())
                progressed = True

    def __repr__(self):
        return "<Store %s len=%d cap=%s>" % (self.name, len(self.items), self.capacity)


class PriorityStore(Store):
    """A store that serves the smallest item first.

    Items must be orderable; wrap payloads in ``(priority, seq, item)``
    tuples when needed.
    """

    def __init__(self, sim, capacity: float = float("inf"), name: str = "pstore"):
        super().__init__(sim, capacity=capacity, name=name)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put_event = self._putters.popleft()
                if put_event.triggered:
                    continue
                self._insort(put_event.item)
                put_event.succeed()
                progressed = True
            while self._getters and self.items:
                get_event = self._getters.popleft()
                if get_event.triggered:
                    continue
                get_event.succeed(self.items.popleft())
                progressed = True

    def try_put(self, item: Any) -> bool:
        if len(self.items) < self.capacity:
            self._insort(item)
            self._dispatch()
            return True
        return False

    def _insort(self, item: Any) -> None:
        # deque has no bisect support; linear insert keeps this simple and
        # the queues in this project are shallow by design (§3.4).
        for index, existing in enumerate(self.items):
            if item < existing:
                self.items.insert(index, item)
                return
        self.items.append(item)
