"""Exception types raised by the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-engine errors."""


class StopSimulation(SimulationError):
    """Raised internally to terminate :meth:`Simulator.run` early."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(SimulationError):
    """Thrown into a process that another process interrupted.

    The interrupted process may catch the interrupt and continue; the
    ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""
