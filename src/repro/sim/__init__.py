"""A from-scratch discrete-event simulation engine.

Provides the execution substrate for the LEED reproduction: generator
processes, one-shot events, timeouts, counted resources, token
buckets, and FIFO stores.  Time is measured in **microseconds**.
"""

from repro.sim.core import Simulator
from repro.sim.errors import EventAlreadyTriggered, Interrupt, SimulationError
from repro.sim.events import Condition, Event, Timeout, all_of, any_of
from repro.sim.process import Process
from repro.sim.queues import PriorityStore, Store
from repro.sim.resources import Resource, TokenBucket
from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Condition",
    "Process",
    "Resource",
    "TokenBucket",
    "Store",
    "PriorityStore",
    "RngRegistry",
    "Interrupt",
    "SimulationError",
    "EventAlreadyTriggered",
    "all_of",
    "any_of",
]
