"""Partition-parallel simulation: conservative windowed execution.

A sharded cluster splits its components across several
:class:`~repro.sim.core.Simulator` instances — clients and the control
plane on the coordinator shard 0, each JBOF on its own shard — and
steps them in per-shard *windows* bounded by conservative lookahead
(the classic Chandy-Misra-Bryant discipline):

1. Compute every shard's *next time*: its earliest pending event or
   undelivered cross-shard record.
2. Size each shard's window from the per-shard-pair lookahead matrix
   ``L`` (:meth:`Network.cross_shard_lookahead`): shard ``d`` may run
   to ``min over incoming pairs (s, d)`` of ``next[s] + L[(s, d)]``.
   A message sent by ``s`` at ``u >= next[s]`` is delivered no earlier
   than ``u + L[(s, d)]``, so nothing can land inside the window ``d``
   is executing — shards are independent and may run concurrently.
   Pairs that rarely talk (JBOF↔JBOF on slow NICs) no longer clamp
   every shard to the single tightest client↔JBOF delay.
3. *Barrier elision*: a shard whose next time lies at or beyond its
   window end — and which has no records awaiting injection — cannot
   dispatch anything, so it (and any worker process none of whose
   shards are active) skips the window entirely.  No pipe round-trip
   is paid for idle shards; the null-message information is the
   next-time table the coordinator already holds.
4. At the barrier, cross-shard records captured on
   :attr:`Network.boundary` are exchanged: records between two shards
   owned by the *same* worker never leave that worker, and bulk
   payloads between workers travel through a double-buffered
   ``multiprocessing.shared_memory`` slab — one pickle per
   (producer, destination shard) per window — while the coordinator
   routes only small header tuples, sorted by the canonical
   ``(deliver_at, dst, src, seq)`` key.

Determinism: window ends and active sets are computed centrally from
values (peeks, pending heads) that do not depend on process placement,
and each shard's schedule is a pure function of its initial state and
the sorted record sequences injected at barriers.  ``workers=1`` (all
shards stepped in-process) and ``workers=N`` (shards spread over
forked workers) therefore produce byte-identical per-shard schedule
digests and figure metrics.

Worker processes are created lazily with ``fork`` at the first
:meth:`ParallelEngine.run`, so they inherit the fully constructed and
bootstrapped object graph; afterwards each process only ever *steps*
its own shards.  Pipe traffic is framed: exactly one
``pickle.dumps``/``send_bytes`` per message per window.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.sim.core import Simulator
from repro.sim.events import Event

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - python < 3.8
    _shared_memory = None

#: Timeout (seconds of wall time) for a worker to finish one window.
_WINDOW_TIMEOUT_S = 600.0

#: Default bytes reserved per producer per buffer half in the shared
#: payload slab.  A window's payload blob for one destination shard
#: that does not fit falls back to inline pipe transport.
SLAB_REGION_BYTES = 1 << 20
_SLAB_REGION_BYTES = SLAB_REGION_BYTES


@dataclass(frozen=True)
class EngineTuning:
    """Wall-clock tuning knobs for the windowed engine.

    Every knob trades barrier/exchange overhead against memory or
    round-trip count; none of them can change what is simulated —
    window ends stay bounded by the conservative lookahead, elision
    only ever skips windows that would dispatch nothing, and figure
    metrics are byte-identical across all settings.  The defaults are
    the tuned values pinned by the ``repro.bench.explore`` engine
    sweep (docs/explore.md): elide every idle shard-window
    (threshold 0) and run windows to their full lookahead bound
    (uncapped).
    """

    #: Minimum idle gap (µs of simulated time between a shard's next
    #: event and its window end) required to elide the shard's window.
    #: 0 elides every idle shard-window (most aggressive, the tuned
    #: default); a large value effectively disables elision — idle
    #: shards then pay their pipe round-trip every round.
    elision_threshold_us: float = 0.0
    #: Cap on window length, measured from the global horizon (the
    #: earliest next event across shards).  0 = uncapped: windows run
    #: to the full earliest-input-time bound (the tuned default).
    #: Positive caps force more, shorter rounds — more barriers, but
    #: smaller per-round exchange blobs.
    window_cap_us: float = 0.0
    #: Bytes per producer per buffer half in the shared payload slab;
    #: blobs that do not fit fall back to inline pipe pickles.
    slab_region_bytes: int = SLAB_REGION_BYTES

    def __post_init__(self):
        if self.elision_threshold_us < 0.0:
            raise ValueError("elision_threshold_us must be >= 0, got %r"
                             % (self.elision_threshold_us,))
        if self.window_cap_us < 0.0:
            raise ValueError("window_cap_us must be >= 0, got %r"
                             % (self.window_cap_us,))
        if self.slab_region_bytes < 4096:
            raise ValueError("slab_region_bytes must be >= 4096, got %r"
                             % (self.slab_region_bytes,))


def _send_frame(conn, message: Any) -> int:
    """One framed pipe send: a single pickle, length-prefixed by
    ``send_bytes``.  Returns the frame size for accounting."""
    blob = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(blob)
    return len(blob)


def _recv_frame(conn) -> Any:
    return pickle.loads(conn.recv_bytes())


class _BlobRef:
    """Payload placeholder for a record whose real payload travels in a
    shared-memory blob: ``key`` names the (producer slot, destination
    shard) blob, ``index`` the position in its unpickled payload list.
    Private to the engine, so it can never collide with a user payload.
    """

    __slots__ = ("key", "index")

    def __init__(self, key: Tuple[int, int], index: int):
        self.key = key
        self.index = index

    def __getstate__(self):
        return (self.key, self.index)

    def __setstate__(self, state):
        self.key, self.index = state


class _PayloadSlab:
    """Double-buffered shared-memory regions for bulk record payloads.

    Each producer (forked worker) owns two ``region_bytes`` halves and
    bump-allocates blobs into the half selected by the window round's
    parity.  A blob written in window ``k`` is read during record
    injection in window ``k+1`` (pending records always force their
    destination shard active, so injection is never deferred), and the
    producer's next write to the same half happens in window ``k+2`` —
    strictly after every window-``k`` reply has been collected.
    """

    def __init__(self, producers: int, region_bytes: int):
        self.region_bytes = region_bytes
        self._shm = _shared_memory.SharedMemory(
            create=True, size=max(1, producers * 2 * region_bytes))

    def base(self, slot: int, parity: int) -> int:
        return (slot * 2 + parity) * self.region_bytes

    def write(self, offset: int, blob: bytes) -> None:
        self._shm.buf[offset:offset + len(blob)] = blob

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self._shm.buf[offset:offset + length])

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering view guard
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@dataclass
class ExchangeStats:
    """Barrier / exchange accounting for one engine lifetime.

    ``windows`` counts barrier rounds; ``shard_windows`` counts shard
    executions within them, with ``elided_shard_windows`` the idle
    shard-windows skipped by barrier elision and
    ``elided_child_messages`` the worker pipe round-trips saved.
    Record counters split cross-shard traffic by transport: kept
    worker-local, shared-memory blob, or inline pipe pickle.
    """

    windows: int = 0
    shard_windows: int = 0
    elided_shard_windows: int = 0
    child_messages: int = 0
    elided_child_messages: int = 0
    records_exchanged: int = 0
    records_child_local: int = 0
    records_via_shm: int = 0
    records_inline: int = 0
    shm_blob_bytes: int = 0
    frame_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "windows": self.windows,
            "shard_windows": self.shard_windows,
            "elided_shard_windows": self.elided_shard_windows,
            "child_messages": self.child_messages,
            "elided_child_messages": self.elided_child_messages,
            "records_exchanged": self.records_exchanged,
            "records_child_local": self.records_child_local,
            "records_via_shm": self.records_via_shm,
            "records_inline": self.records_inline,
            "shm_blob_bytes": self.shm_blob_bytes,
            "frame_bytes": self.frame_bytes,
        }


@dataclass
class ShardPlan:
    """Assignment of component addresses to shard ids.

    Shard 0 is the coordinator shard (clients + control plane); each
    JBOF gets its own shard.  The plan is what
    :meth:`Network.configure_shards` consumes.
    """

    shard_of: Dict[str, int] = field(default_factory=dict)
    num_shards: int = 1

    @classmethod
    def for_cluster(cls, control_plane_address: str,
                    client_addresses: List[str],
                    jbof_addresses: List[str]) -> "ShardPlan":
        shard_of = {control_plane_address: 0}
        for address in client_addresses:
            shard_of[address] = 0
        for index, address in enumerate(jbof_addresses):
            shard_of[address] = index + 1
        return cls(shard_of=shard_of, num_shards=len(jbof_addresses) + 1)


class CoordinatorSimulator(Simulator):
    """Shard 0's simulator: ``run()`` drives the whole sharded cluster.

    Components on shard 0 use it exactly like a plain
    :class:`Simulator`; once :meth:`bind_engine` attaches a
    :class:`ParallelEngine`, ``run()`` delegates to the engine's
    windowed loop so existing harness code (``cluster.sim.run(...)``)
    works unchanged.
    """

    def __init__(self, start_time: float = 0.0):
        super().__init__(start_time)
        self._engine: Optional["ParallelEngine"] = None

    def bind_engine(self, engine: "ParallelEngine") -> None:
        self._engine = engine

    def run(self, until: Any = None) -> Any:
        if self._engine is None:
            return super().run(until)
        return self._engine.run(until)


class ParallelEngine:
    """Conservative windowed executor over a set of shard simulators.

    ``workers`` counts OS processes including the coordinator: 1 steps
    every shard in-process (same schedule, no concurrency), ``N >= 2``
    forks ``N - 1`` workers and deals the non-coordinator shards to
    them round-robin.  Shard 0 always stays in the coordinator.
    """

    def __init__(self, network, sims: Dict[int, Simulator], workers: int,
                 probes: Optional[Dict[int, Callable[[], dict]]] = None,
                 slab_region_bytes: Optional[int] = None,
                 tuning: Optional[EngineTuning] = None):
        if 0 not in sims:
            raise ValueError("shard 0 (coordinator) simulator is required")
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % workers)
        self.tuning = tuning or EngineTuning()
        if slab_region_bytes is not None:
            self.tuning = EngineTuning(
                elision_threshold_us=self.tuning.elision_threshold_us,
                window_cap_us=self.tuning.window_cap_us,
                slab_region_bytes=slab_region_bytes)
        self.network = network
        self.sims = dict(sims)
        self.workers = min(workers, len(self.sims))
        #: Per-shard report extras (e.g. node energy), run on whichever
        #: process owns the shard.  Closures survive ``fork``.
        self.probes = dict(probes or {})
        self._shard_order: List[int] = sorted(self.sims)
        #: Lookahead matrix and its separable (tx, rx) halves, cached
        #: against the network's topology version so membership changes
        #: (``add_jbof`` attaching a NIC) refresh the bound.
        self._matrix: Dict[Tuple[int, int], float] = {}
        self._tx_part: Dict[int, float] = {}
        self._rx_part: Dict[int, float] = {}
        self._matrix_version: Optional[int] = None
        self._min_lookahead: Optional[float] = None
        self._forked = False
        #: (process, pipe connection, shard ids) per forked worker.
        self._children: list = []
        self._parent_shards: List[int] = list(self._shard_order)
        #: Last reported next-event time (including worker-local kept
        #: records) and clock per remotely-owned shard.
        self._child_nexts: Dict[int, float] = {}
        self._child_nows: Dict[int, float] = {}
        #: Remotely-owned shards currently holding worker-local kept
        #: records; they must be activated next window exactly like
        #: shards with coordinator-side pending records.
        self._child_kept: Set[int] = set()
        #: Records awaiting injection, per destination shard, already
        #: in canonical order.
        self._pending: Dict[int, List[tuple]] = {sid: [] for sid in self.sims}
        #: Shared-memory blob directory: key -> (offset, length) for
        #: blobs written last window and consumed next window.
        self._blob_tables: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._slab: Optional[_PayloadSlab] = None
        self._slab_region_bytes = self.tuning.slab_region_bytes
        self._round = 0
        self.stats = ExchangeStats()
        self._stopped = False
        self._final_reports: Optional[Dict[int, dict]] = None

    # -- introspection -------------------------------------------------------

    @property
    def forked(self) -> bool:
        """True once worker processes exist (state has diverged)."""
        return self._forked

    @property
    def lookahead_us(self) -> Optional[float]:
        """Smallest lookahead matrix entry, known after the first run."""
        return self._min_lookahead

    @property
    def lookahead_matrix(self) -> Dict[Tuple[int, int], float]:
        """The (src shard, dst shard) lookahead matrix currently in use."""
        return dict(self._matrix)

    def enable_schedule_digests(self) -> None:
        """Turn on schedule digests for every shard (pre-fork only)."""
        if self._forked:
            raise RuntimeError(
                "digests must be enabled before the first run() forks "
                "worker processes")
        for sim in self.sims.values():
            sim.enable_schedule_digest()

    # -- the windowed loop ---------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Windowed equivalent of :meth:`Simulator.run` for the cluster."""
        if self._stopped:
            raise RuntimeError("parallel engine already stopped")
        if self.workers >= 2 and not self._forked:
            self._fork()
        sim0 = self.sims[0]
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(sim0._stop_on_event)
            elif stop_event.triggered:
                return sim0._event_outcome(stop_event)
        else:
            deadline = float(until)
            if deadline < sim0.now:
                raise ValueError("cannot run until %r, now is %r"
                                 % (deadline, sim0.now))
        # User code running between run() calls (cluster.shutdown(),
        # test drivers poking shard-0 components) may have transmitted
        # cross-shard messages; fold them in before sizing the first
        # window or the horizon would miss them.
        self._absorb_boundary()

        while True:
            self._refresh_lookahead()
            nexts = self._shard_nexts()
            horizon = min(nexts.values())
            if horizon == float("inf"):
                if stop_event is not None:
                    raise RuntimeError(
                        "run() until an event, but the simulation ran out "
                        "of events before %r triggered" % stop_event)
                if deadline == float("inf"):
                    # Drained dry: align every shard clock to the global
                    # last-event time, as the single-simulator engine's
                    # shared clock would read (time-integrated reports
                    # like energy depend on it).
                    self._sync_all(self._max_now())
                break
            if horizon > deadline:
                break
            ends = self._window_ends(nexts, deadline)
            stop = self._run_window(nexts, ends,
                                    stop_check=stop_event is not None)
            if stop is not None:
                if stop_event is not None and stop_event.triggered:
                    return sim0._event_outcome(stop_event)
                return stop.value
        if deadline != float("inf"):
            self._sync_all(deadline)
        return None

    def settle(self, until: float) -> None:
        """Run every shard's events strictly before ``until`` and align
        all shard clocks to it.

        After ``run(until=event)`` returns, non-coordinator shards may
        still hold undispatched events earlier than the coordinator's
        clock.  Mid-run samplers (scenario gauges, energy meters) need
        the same global cut a single-simulator run would present:
        everything before ``until`` executed, events at exactly
        ``until`` still pending.  Exclusive at ``until`` on purpose —
        a serial ``run(until=event)`` leaves same-timestamp events
        scheduled after the stop for the next run, and so does this.
        """
        if self._stopped:
            raise RuntimeError("parallel engine already stopped")
        if self.workers >= 2 and not self._forked:
            self._fork()
        self._absorb_boundary()
        while True:
            self._refresh_lookahead()
            nexts = self._shard_nexts()
            if min(nexts.values()) >= until:
                break
            ends = self._window_ends(nexts, until, inclusive_deadline=False)
            # A stop escaping here belongs to an already-returned run();
            # nothing is waiting on it during a settle.
            self._run_window(nexts, ends)
        self._sync_all(until)

    def _refresh_lookahead(self) -> None:
        """Adopt the network's lookahead matrix if topology changed.

        Cached against :attr:`Network.topology_version`: a NIC attached
        by a mid-run membership change (``add_jbof``) can tighten a
        pair's bound, and using the stale larger value would break the
        conservative window guarantee.
        """
        version = self.network.topology_version
        if version == self._matrix_version:
            return
        matrix = self.network.cross_shard_lookahead()
        for (src, dst), delay in matrix.items():
            if delay <= 0.0:
                raise RuntimeError(
                    "non-positive cross-shard lookahead %r for shard pair "
                    "%r -> %r; conservative windows cannot make progress"
                    % (delay, src, dst))
        tx, rx = self.network.cross_shard_lookahead_parts()
        self._matrix = matrix
        self._tx_part = tx
        self._rx_part = rx
        self._min_lookahead = min(matrix.values()) if matrix else float("inf")
        self._matrix_version = version

    def _shard_nexts(self) -> Dict[int, float]:
        """Earliest pending event or undelivered record, per shard."""
        nexts = {}
        for sid in self._parent_shards:
            nexts[sid] = self.sims[sid].peek()
        nexts.update(self._child_nexts)
        for sid, records in self._pending.items():
            if records and records[0][0] < nexts[sid]:
                nexts[sid] = records[0][0]
        return nexts

    def _window_ends(self, nexts: Dict[int, float], deadline: float,
                     inclusive_deadline: bool = True
                     ) -> Dict[int, Tuple[float, bool]]:
        """Per-shard window end (end, inclusive) for one round.

        Shard ``d``'s end is its *earliest input time*: a lower bound
        on when any cross-shard record could still arrive.  A peer's
        next-event time alone is not a safe send bound — an idle peer
        can be woken by a relayed message (including one of ``d``'s
        own sends) and reply inside ``d``'s window.  The chain-safe
        bound is the fixed point of the Bellman relaxation over the
        lookahead graph; with the separable matrix
        ``L[(s, d)] = tx[s] + rx[d]`` it closes in one pass:

        * ``M   = min over r of nexts[r] + tx[r]`` — the earliest any
          cross-shard message could be *sent*, anywhere;
        * ``A_s = min(nexts[s], M + rx[s])`` — the earliest shard
          ``s`` could execute anything (own event, or the first
          deliverable relay);
        * ``EIT_d = min over s != d of (A_s + tx[s]) + rx[d]`` —
          last hop into ``d``.  Any longer chain only adds
          nonnegative ``tx + rx`` terms, so this is conservative for
          every relay depth.
        """
        inf = float("inf")
        tx = self._tx_part
        rx = self._rx_part
        earliest_send = inf
        for sid, nxt in nexts.items():
            t = nxt + tx.get(sid, inf)
            if t < earliest_send:
                earliest_send = t
        # Top-2 minima of g_s = A_s + tx[s], for self-exclusion on the
        # final hop (the last sender is never the destination).
        best = second = inf
        best_sid = None
        for sid, nxt in nexts.items():
            t_s = tx.get(sid, inf)
            a = earliest_send + rx.get(sid, inf)
            if nxt < a:
                a = nxt
            g = a + t_s
            if g < best:
                second = best
                best, best_sid = g, sid
            elif g < second:
                second = g
        # Window-sizing knob: cap every end at horizon + cap.  The cap
        # only ever shrinks a window below its lookahead bound, so the
        # conservative guarantee is untouched; progress holds because
        # the horizon shard's end stays strictly past its next event.
        cap = self.tuning.window_cap_us
        cap_end = min(nexts.values()) + cap if cap > 0.0 else inf
        ends = {}
        for sid in self._shard_order:
            g_min = second if sid == best_sid else best
            eit = g_min + rx.get(sid, inf)
            if eit > cap_end:
                eit = cap_end
            if eit > deadline:
                # Mirror Simulator.run(until=number): events at exactly
                # the deadline are dispatched (settle passes exclusive).
                ends[sid] = (deadline, inclusive_deadline)
            else:
                ends[sid] = (eit, False)
        return ends

    def _max_now(self) -> float:
        """Latest shard clock (the serial engine's notion of "now")."""
        latest = max(self.sims[sid].now for sid in self._parent_shards)
        for now in self._child_nows.values():
            if now > latest:
                latest = now
        return latest

    def _absorb_boundary(self) -> None:
        """Move stray boundary records into the pending queues."""
        records = self.network.take_boundary()
        if not records:
            return
        shard_of = self.network.shard_of
        touched = set()
        for record in sorted(records, key=lambda record: record[:4]):
            sid = shard_of(record[1])
            self._pending[sid].append(record)
            touched.add(sid)
        for sid in touched:
            self._pending[sid].sort(key=lambda record: record[:4])

    def _active_shards(self, nexts: Dict[int, float],
                       ends: Dict[int, Tuple[float, bool]]) -> Set[int]:
        """Shards that can dispatch something this window.

        Pending/kept records force activation (they are injected next
        window unconditionally, which both matches the serial engine's
        injection timing and bounds shared-memory blob lifetime to one
        round); otherwise a shard is active only when its next time
        falls inside its window.

        The elision-threshold knob relaxes that: an idle shard is only
        elided when the gap between its next event and its window end
        is at least ``tuning.elision_threshold_us``.  A shard kept
        active this way dispatches nothing (its next event still lies
        past the end), so schedules are byte-identical at every
        threshold — the knob trades pipe round-trips only.
        """
        threshold = self.tuning.elision_threshold_us
        inf = float("inf")
        active = set()
        for sid in self._shard_order:
            end, inclusive = ends[sid]
            nxt = nexts[sid]
            if (self._pending[sid] or sid in self._child_kept
                    or nxt < end or (inclusive and nxt <= end)):
                active.add(sid)
            elif threshold > 0.0 and nxt != inf and nxt - end < threshold:
                active.add(sid)
        return active

    def _run_window(self, nexts: Dict[int, float],
                    ends: Dict[int, Tuple[float, bool]],
                    stop_check: bool = False):
        """One window on the active shards; exchange at the barrier.

        Returns the :class:`~repro.sim.errors.StopSimulation` escaping
        a coordinator-shard callback, or ``None``.

        With ``stop_check`` (a ``run(until=event)`` is in flight) the
        coordinator shard runs *first*: window order within a round is
        free — every end was computed from the same pre-round state —
        and if the stop fires at ``T`` the remaining shards' windows
        are capped at ``T`` (exclusive).  No shard then overshoots the
        stop time, so a sampler reading cross-shard state right after
        ``run()`` (energy gauges between scenario phases) sees the
        same cut a serial ``run(until=event)`` leaves.  Shards holding
        pending or kept records stay active even when capped: their
        injection must happen this round to keep shared-memory blob
        lifetime at one window.
        """
        stats = self.stats
        stats.windows += 1
        parity = self._round & 1
        self._round += 1
        stop = None
        coordinator_ran = False
        if stop_check and 0 in self._parent_shards:
            end0, inclusive0 = ends[0]
            if (self._pending[0] or nexts[0] < end0
                    or (inclusive0 and nexts[0] <= end0)):
                coordinator_ran = True
                records = self._pending[0]
                if records:
                    self._pending[0] = []
                    self._inject(records, self._blob_tables)
                stop = self.sims[0].run_window(end0, inclusive0)
                if stop is not None:
                    stopped_at = self.sims[0].now
                    for sid in self._shard_order:
                        if sid != 0 and stopped_at < ends[sid][0]:
                            ends[sid] = (stopped_at, False)
        active = self._active_shards(nexts, ends)
        stats.shard_windows += len(active)
        stats.elided_shard_windows += len(self.sims) - len(active)
        blob_tables = self._blob_tables
        self._blob_tables = {}
        messaged = []
        for proc, conn, shard_ids, slot in self._children:
            child_active = [sid for sid in shard_ids if sid in active]
            if not child_active:
                stats.elided_child_messages += 1
                continue
            routed = {}
            table = {}
            for sid in child_active:
                records = self._pending[sid]
                if records:
                    self._pending[sid] = []
                    routed[sid] = records
                    for record in records:
                        ref = record[5]
                        if type(ref) is _BlobRef:
                            table[ref.key] = blob_tables[ref.key]
            child_ends = {sid: ends[sid] for sid in child_active}
            stats.child_messages += 1
            stats.frame_bytes += _send_frame(
                conn, ("run", parity, child_ends, routed, table))
            messaged.append(conn)
        for sid in self._parent_shards:
            if sid not in active or (sid == 0 and coordinator_ran):
                continue
            records = self._pending[sid]
            if records:
                self._pending[sid] = []
                self._inject(records, blob_tables)
            end, inclusive = ends[sid]
            outcome = self.sims[sid].run_window(end, inclusive)
            if outcome is not None:
                stop = outcome
        boundary = self.network.take_boundary()
        for conn in messaged:
            reply = self._recv(conn)
            _, shipped, table, child_nexts, child_nows, kept_sids, counts \
                = reply
            boundary.extend(shipped)
            self._blob_tables.update(table)
            self._child_nexts.update(child_nexts)
            self._child_nows.update(child_nows)
            self._child_kept.difference_update(child_nexts)
            self._child_kept.update(kept_sids)
            stats.records_child_local += counts[0]
            stats.records_via_shm += counts[1]
            stats.records_inline += counts[2]
            stats.shm_blob_bytes += counts[3]
        self._distribute(boundary, ends)
        return stop

    def _inject(self, records: List[tuple],
                blob_tables: Dict[Tuple[int, int], Tuple[int, int]]) -> None:
        """Inject routed records, resolving shared-memory payloads."""
        inject = self.network.inject
        cache: Dict[Tuple[int, int], list] = {}
        for record in records:
            payload = record[5]
            if type(payload) is _BlobRef:
                payloads = cache.get(payload.key)
                if payloads is None:
                    offset, length = blob_tables[payload.key]
                    payloads = pickle.loads(self._slab.read(offset, length))
                    cache[payload.key] = payloads
                record = record[:5] + (payloads[payload.index],)
            inject(record)

    def _distribute(self, boundary: List[tuple],
                    ends: Dict[int, Tuple[float, bool]]) -> None:
        """Canonical merge: identical record sets must reach each pump
        in identical order regardless of which process produced them
        (pump insertion order shapes drain-event sequence numbers and
        therefore the shard's schedule digest)."""
        if not boundary:
            return
        boundary.sort(key=lambda record: record[:4])
        self.stats.records_exchanged += len(boundary)
        shard_of = self.network.shard_of
        for record in boundary:
            sid = shard_of(record[1])
            if __debug__:
                end = ends[sid][0]
                assert record[0] >= end - 1e-9, (
                    "cross-shard record at %r violates shard %d's window "
                    "end %r (lookahead bound broken)" % (record[0], sid, end))
            self._pending[sid].append(record)

    def _sync_all(self, when: float) -> None:
        """Mirror ``run(until=number)``'s final clock advance everywhere."""
        for proc, conn, shard_ids, slot in self._children:
            _send_frame(conn, ("sync", when))
        for sid in self._parent_shards:
            self.sims[sid].sync_now(when)
        for proc, conn, shard_ids, slot in self._children:
            self._recv(conn)
        for sid, now in self._child_nows.items():
            if now < when:
                self._child_nows[sid] = when

    # -- worker processes ----------------------------------------------------

    def _fork(self) -> None:
        """Spread non-coordinator shards over forked worker processes."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self.workers = 1
            return
        remote = [sid for sid in self._shard_order if sid != 0]
        child_count = min(self.workers - 1, len(remote))
        if child_count < 1:
            self.workers = 1
            return
        assignment: List[List[int]] = [[] for _ in range(child_count)]
        for index, sid in enumerate(remote):
            assignment[index % child_count].append(sid)
        if _shared_memory is not None:
            # Created before fork so every worker inherits the mapping.
            self._slab = _PayloadSlab(child_count, self._slab_region_bytes)
        for slot, shard_ids in enumerate(assignment):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=self._child_main, args=(child_conn, shard_ids, slot),
                daemon=True)
            process.start()
            child_conn.close()
            self._children.append((process, parent_conn, shard_ids, slot))
        owned = {sid for shard_ids in assignment for sid in shard_ids}
        self._parent_shards = [sid for sid in self._shard_order
                               if sid not in owned]
        for sid in owned:
            self._child_nexts[sid] = self.sims[sid].peek()
            self._child_nows[sid] = self.sims[sid].now
        self._forked = True

    def _child_main(self, conn, shard_ids: List[int], slot: int) -> None:
        """Worker loop: step owned shards window by window."""
        import traceback
        sims = {sid: self.sims[sid] for sid in shard_ids}
        network = self.network
        shard_of = network.shard_of
        owned = set(shard_ids)
        slab = self._slab
        #: Cross-shard records between two shards this worker owns:
        #: retained locally, never crossing the pipe.
        kept: Dict[int, List[tuple]] = {sid: [] for sid in shard_ids}
        sort_key = lambda record: record[:4]  # noqa: E731
        while True:
            message = _recv_frame(conn)
            kind = message[0]
            try:
                if kind == "run":
                    _, parity, ends, routed, table = message
                    cache: Dict[Tuple[int, int], list] = {}
                    for sid in sorted(ends):
                        records = routed.get(sid, [])
                        local = kept[sid]
                        if local:
                            kept[sid] = []
                            records = records + local
                            records.sort(key=sort_key)
                        for record in records:
                            payload = record[5]
                            if type(payload) is _BlobRef:
                                payloads = cache.get(payload.key)
                                if payloads is None:
                                    offset, length = table[payload.key]
                                    payloads = pickle.loads(
                                        slab.read(offset, length))
                                    cache[payload.key] = payloads
                                record = record[:5] + (
                                    payloads[payload.index],)
                            network.inject(record)
                        end, inclusive = ends[sid]
                        sims[sid].run_window(end, inclusive)
                    shipped: List[tuple] = []
                    by_dst: Dict[int, List[tuple]] = {}
                    n_kept = 0
                    for record in network.take_boundary():
                        dst_sid = shard_of(record[1])
                        if dst_sid in owned:
                            kept[dst_sid].append(record)
                            n_kept += 1
                        else:
                            by_dst.setdefault(dst_sid, []).append(record)
                    for sid in owned:
                        if kept[sid]:
                            kept[sid].sort(key=sort_key)
                    table_out = {}
                    n_shm = n_inline = blob_bytes = 0
                    if slab is not None:
                        cursor = slab.base(slot, parity)
                        limit = cursor + slab.region_bytes
                    for dst_sid in sorted(by_dst):
                        records = by_dst[dst_sid]
                        if slab is None:
                            shipped.extend(records)
                            n_inline += len(records)
                            continue
                        blob = pickle.dumps(
                            [record[5] for record in records],
                            pickle.HIGHEST_PROTOCOL)
                        if cursor + len(blob) > limit:
                            # Slab half full: fall back to inline pipe
                            # payloads for this destination.
                            shipped.extend(records)
                            n_inline += len(records)
                            continue
                        slab.write(cursor, blob)
                        key = (slot, dst_sid)
                        table_out[key] = (cursor, len(blob))
                        cursor += len(blob)
                        blob_bytes += len(blob)
                        n_shm += len(records)
                        for index, record in enumerate(records):
                            shipped.append(
                                record[:5] + (_BlobRef(key, index),))
                    nexts = {}
                    for sid in shard_ids:
                        nxt = sims[sid].peek()
                        local = kept[sid]
                        if local and local[0][0] < nxt:
                            nxt = local[0][0]
                        nexts[sid] = nxt
                    nows = {sid: sims[sid].now for sid in shard_ids}
                    kept_sids = [sid for sid in shard_ids if kept[sid]]
                    _send_frame(conn, ("ok", shipped, table_out, nexts,
                                       nows, kept_sids,
                                       (n_kept, n_shm, n_inline,
                                        blob_bytes)))
                elif kind == "sync":
                    for sid in shard_ids:
                        sims[sid].sync_now(message[1])
                    _send_frame(conn, ("ok",))
                elif kind == "collect":
                    _send_frame(conn, {sid: self._shard_report(sid)
                                       for sid in shard_ids})
                elif kind == "exit":
                    _send_frame(conn, ("ok",))
                    return
                else:  # pragma: no cover - protocol guard
                    raise ValueError("unknown message %r" % (kind,))
            except Exception:
                _send_frame(conn, ("error", traceback.format_exc()))
                return

    def _recv(self, conn):
        """Read one worker reply, surfacing worker-side failures."""
        if not conn.poll(_WINDOW_TIMEOUT_S):  # pragma: no cover - hang guard
            raise RuntimeError("parallel worker did not answer within %.0fs"
                               % _WINDOW_TIMEOUT_S)
        blob = conn.recv_bytes()
        self.stats.frame_bytes += len(blob)
        reply = pickle.loads(blob)
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise RuntimeError("parallel worker failed:\n%s" % reply[1])
        return reply

    # -- reporting / teardown ------------------------------------------------

    def _shard_report(self, sid: int) -> dict:
        sim = self.sims[sid]
        report = {
            "shard": sid,
            "now": sim.now,
            "events_dispatched": sim.events_dispatched,
            "schedule_digest": sim.schedule_digest,
            "digest_events": sim.schedule_digest_events,
        }
        probe = self.probes.get(sid)
        if probe is not None:
            report["probe"] = probe()
        return report

    def collect(self) -> Dict[int, dict]:
        """Per-shard reports (digest, event counts, probe payloads).

        Safe to call whenever no :meth:`run` is in progress — forked
        workers answer from their blocking receive between windows.
        After :meth:`stop_workers` the final snapshot is returned.
        """
        if self._final_reports is not None:
            return self._final_reports
        reports = {sid: self._shard_report(sid) for sid in self._parent_shards}
        for proc, conn, shard_ids, slot in self._children:
            _send_frame(conn, ("collect",))
        for proc, conn, shard_ids, slot in self._children:
            reports.update(self._recv(conn))
        return {sid: reports[sid] for sid in sorted(reports)}

    def stop_workers(self) -> None:
        """Terminate forked workers (idempotent); no further runs."""
        if self._stopped:
            return
        self._final_reports = self.collect()
        for proc, conn, shard_ids, slot in self._children:
            try:
                _send_frame(conn, ("exit",))
                self._recv(conn)
            except (OSError, EOFError, RuntimeError):  # pragma: no cover
                pass
        for proc, conn, shard_ids, slot in self._children:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
            conn.close()
        self._children = []
        if self._slab is not None:
            self._slab.close()
            self._slab.unlink()
            self._slab = None
        self._stopped = True
