"""Partition-parallel simulation: conservative windowed execution.

A sharded cluster splits its components across several
:class:`~repro.sim.core.Simulator` instances — clients and the control
plane on the coordinator shard 0, each JBOF on its own shard — and
steps them in *windows* bounded by the minimum cross-shard network
delay (the classic conservative lookahead of Chandy-Misra-Bryant
engines):

1. Compute the horizon ``H``: the earliest pending event or in-flight
   cross-shard delivery anywhere in the cluster.
2. Every shard dispatches all of its events in ``[H, H + L)``, where
   ``L`` is the lookahead (:meth:`Network.min_cross_shard_delay_us`).
   A message sent at ``u >= H`` is delivered no earlier than
   ``u + L >= H + L``, so no shard can receive anything inside the
   window it is currently executing — shards are independent and may
   run concurrently.
3. At the barrier, cross-shard records captured on
   :attr:`Network.boundary` are gathered, sorted by their canonical
   ``(deliver_at, dst, src, seq)`` key, and routed to their
   destination shards for the next window.

Determinism: each shard's schedule is a pure function of its initial
state and the sorted record sequences injected at barriers — neither
depends on how many OS processes execute the windows.  ``workers=1``
(all shards stepped in-process) and ``workers=N`` (shards spread over
forked workers) therefore produce byte-identical per-shard schedule
digests and figure metrics.

Worker processes are created lazily with ``fork`` at the first
:meth:`ParallelEngine.run`, so they inherit the fully constructed and
bootstrapped object graph; afterwards each process only ever *steps*
its own shards, and all cross-shard traffic travels as picklable
message records over pipes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.core import Simulator
from repro.sim.events import Event

#: Timeout (seconds of wall time) for a worker to finish one window.
_WINDOW_TIMEOUT_S = 600.0


@dataclass
class ShardPlan:
    """Assignment of component addresses to shard ids.

    Shard 0 is the coordinator shard (clients + control plane); each
    JBOF gets its own shard.  The plan is what
    :meth:`Network.configure_shards` consumes.
    """

    shard_of: Dict[str, int] = field(default_factory=dict)
    num_shards: int = 1

    @classmethod
    def for_cluster(cls, control_plane_address: str,
                    client_addresses: List[str],
                    jbof_addresses: List[str]) -> "ShardPlan":
        shard_of = {control_plane_address: 0}
        for address in client_addresses:
            shard_of[address] = 0
        for index, address in enumerate(jbof_addresses):
            shard_of[address] = index + 1
        return cls(shard_of=shard_of, num_shards=len(jbof_addresses) + 1)


class CoordinatorSimulator(Simulator):
    """Shard 0's simulator: ``run()`` drives the whole sharded cluster.

    Components on shard 0 use it exactly like a plain
    :class:`Simulator`; once :meth:`bind_engine` attaches a
    :class:`ParallelEngine`, ``run()`` delegates to the engine's
    windowed loop so existing harness code (``cluster.sim.run(...)``)
    works unchanged.
    """

    def __init__(self, start_time: float = 0.0):
        super().__init__(start_time)
        self._engine: Optional["ParallelEngine"] = None

    def bind_engine(self, engine: "ParallelEngine") -> None:
        self._engine = engine

    def run(self, until: Any = None) -> Any:
        if self._engine is None:
            return super().run(until)
        return self._engine.run(until)


class ParallelEngine:
    """Conservative windowed executor over a set of shard simulators.

    ``workers`` counts OS processes including the coordinator: 1 steps
    every shard in-process (same schedule, no concurrency), ``N >= 2``
    forks ``N - 1`` workers and deals the non-coordinator shards to
    them round-robin.  Shard 0 always stays in the coordinator.
    """

    def __init__(self, network, sims: Dict[int, Simulator], workers: int,
                 probes: Optional[Dict[int, Callable[[], dict]]] = None):
        if 0 not in sims:
            raise ValueError("shard 0 (coordinator) simulator is required")
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % workers)
        self.network = network
        self.sims = dict(sims)
        self.workers = min(workers, len(self.sims))
        #: Per-shard report extras (e.g. node energy), run on whichever
        #: process owns the shard.  Closures survive ``fork``.
        self.probes = dict(probes or {})
        self._lookahead: Optional[float] = None
        self._forked = False
        #: (process, pipe connection, shard ids) per forked worker.
        self._children: list = []
        self._parent_shards: List[int] = sorted(self.sims)
        #: Last reported ``peek()`` / ``now`` per remotely-owned shard.
        self._child_peeks: Dict[int, float] = {}
        self._child_nows: Dict[int, float] = {}
        #: Records awaiting injection, per destination shard, already
        #: in canonical order.
        self._pending: Dict[int, List[tuple]] = {sid: [] for sid in self.sims}
        self._stopped = False
        self._final_reports: Optional[Dict[int, dict]] = None

    # -- introspection -------------------------------------------------------

    @property
    def forked(self) -> bool:
        """True once worker processes exist (state has diverged)."""
        return self._forked

    @property
    def lookahead_us(self) -> Optional[float]:
        """The window lookahead ``L``, known after the first run."""
        return self._lookahead

    def enable_schedule_digests(self) -> None:
        """Turn on schedule digests for every shard (pre-fork only)."""
        if self._forked:
            raise RuntimeError(
                "digests must be enabled before the first run() forks "
                "worker processes")
        for sim in self.sims.values():
            sim.enable_schedule_digest()

    # -- the windowed loop ---------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Windowed equivalent of :meth:`Simulator.run` for the cluster."""
        if self._stopped:
            raise RuntimeError("parallel engine already stopped")
        if self.workers >= 2 and not self._forked:
            self._fork()
        sim0 = self.sims[0]
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(sim0._stop_on_event)
            elif stop_event.triggered:
                return sim0._event_outcome(stop_event)
        else:
            deadline = float(until)
            if deadline < sim0.now:
                raise ValueError("cannot run until %r, now is %r"
                                 % (deadline, sim0.now))
        if self._lookahead is None:
            self._lookahead = self.network.min_cross_shard_delay_us()
        lookahead = self._lookahead
        # User code running between run() calls (cluster.shutdown(),
        # test drivers poking shard-0 components) may have transmitted
        # cross-shard messages; fold them in before sizing the first
        # window or the horizon would miss them.
        self._absorb_boundary()

        while True:
            horizon = self._horizon()
            if horizon == float("inf"):
                if stop_event is not None:
                    raise RuntimeError(
                        "run() until an event, but the simulation ran out "
                        "of events before %r triggered" % stop_event)
                if deadline == float("inf"):
                    # Drained dry: align every shard clock to the global
                    # last-event time, as the single-simulator engine's
                    # shared clock would read (time-integrated reports
                    # like energy depend on it).
                    self._sync_all(self._max_now())
                break
            if horizon > deadline:
                break
            t_end = horizon + lookahead
            inclusive = False
            if t_end > deadline:
                t_end, inclusive = deadline, True
            stop = self._run_window(t_end, inclusive)
            if stop is not None:
                if stop_event is not None and stop_event.triggered:
                    return sim0._event_outcome(stop_event)
                return stop.value
        if deadline != float("inf"):
            self._sync_all(deadline)
        return None

    def _absorb_boundary(self) -> None:
        """Move stray boundary records into the pending queues."""
        records = self.network.take_boundary()
        if not records:
            return
        shard_of = self.network.shard_of
        touched = set()
        for record in sorted(records, key=lambda record: record[:4]):
            sid = shard_of(record[1])
            self._pending[sid].append(record)
            touched.add(sid)
        for sid in touched:
            self._pending[sid].sort(key=lambda record: record[:4])

    def _horizon(self) -> float:
        """Earliest pending event or undelivered record, cluster-wide."""
        horizon = float("inf")
        for sid in self._parent_shards:
            peek = self.sims[sid].peek()
            if peek < horizon:
                horizon = peek
        for peek in self._child_peeks.values():
            if peek < horizon:
                horizon = peek
        for records in self._pending.values():
            if records and records[0][0] < horizon:
                horizon = records[0][0]
        return horizon

    def _max_now(self) -> float:
        """Latest shard clock (the serial engine's notion of "now")."""
        latest = max(self.sims[sid].now for sid in self._parent_shards)
        for now in self._child_nows.values():
            if now > latest:
                latest = now
        return latest

    def _run_window(self, t_end: float, inclusive: bool):
        """One window on every shard; exchange records at the barrier.

        Returns the :class:`~repro.sim.errors.StopSimulation` escaping
        a coordinator-shard callback, or ``None``.
        """
        for proc, conn, shard_ids in self._children:
            records = []
            for sid in shard_ids:
                records.extend(self._pending[sid])
                self._pending[sid] = []
            conn.send(("run", t_end, inclusive, records))
        stop = None
        for sid in self._parent_shards:
            pending = self._pending[sid]
            if pending:
                self._pending[sid] = []
                inject = self.network.inject
                for record in pending:
                    inject(record)
            outcome = self.sims[sid].run_window(t_end, inclusive)
            if outcome is not None:
                stop = outcome
        boundary = self.network.take_boundary()
        for proc, conn, shard_ids in self._children:
            child_boundary, peeks, nows = self._recv(conn)
            boundary.extend(child_boundary)
            self._child_peeks.update(peeks)
            self._child_nows.update(nows)
        # Canonical merge: identical record sets must reach each pump in
        # identical order regardless of which process produced them
        # (pump insertion order shapes drain-event sequence numbers and
        # therefore the shard's schedule digest).
        boundary.sort(key=lambda record: record[:4])
        shard_of = self.network.shard_of
        for record in boundary:
            self._pending[shard_of(record[1])].append(record)
        return stop

    def _sync_all(self, when: float) -> None:
        """Mirror ``run(until=number)``'s final clock advance everywhere."""
        for proc, conn, shard_ids in self._children:
            conn.send(("sync", when))
        for sid in self._parent_shards:
            self.sims[sid].sync_now(when)
        for proc, conn, shard_ids in self._children:
            self._recv(conn)
        for sid, now in self._child_nows.items():
            if now < when:
                self._child_nows[sid] = when

    # -- worker processes ----------------------------------------------------

    def _fork(self) -> None:
        """Spread non-coordinator shards over forked worker processes."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self.workers = 1
            return
        remote = [sid for sid in sorted(self.sims) if sid != 0]
        child_count = min(self.workers - 1, len(remote))
        if child_count < 1:
            self.workers = 1
            return
        assignment: List[List[int]] = [[] for _ in range(child_count)]
        for index, sid in enumerate(remote):
            assignment[index % child_count].append(sid)
        for shard_ids in assignment:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=self._child_main, args=(child_conn, shard_ids),
                daemon=True)
            process.start()
            child_conn.close()
            self._children.append((process, parent_conn, shard_ids))
        owned = {sid for shard_ids in assignment for sid in shard_ids}
        self._parent_shards = [sid for sid in sorted(self.sims)
                               if sid not in owned]
        for sid in owned:
            self._child_peeks[sid] = self.sims[sid].peek()
            self._child_nows[sid] = self.sims[sid].now
        self._forked = True

    def _child_main(self, conn, shard_ids: List[int]) -> None:
        """Worker loop: step owned shards window by window."""
        import traceback
        sims = {sid: self.sims[sid] for sid in shard_ids}
        network = self.network
        while True:
            message = conn.recv()
            kind = message[0]
            try:
                if kind == "run":
                    _, t_end, inclusive, records = message
                    for record in records:
                        network.inject(record)
                    for sid in shard_ids:
                        sims[sid].run_window(t_end, inclusive)
                    peeks = {sid: sims[sid].peek() for sid in shard_ids}
                    nows = {sid: sims[sid].now for sid in shard_ids}
                    conn.send((network.take_boundary(), peeks, nows))
                elif kind == "sync":
                    for sid in shard_ids:
                        sims[sid].sync_now(message[1])
                    conn.send(("ok",))
                elif kind == "collect":
                    conn.send({sid: self._shard_report(sid) for sid in shard_ids})
                elif kind == "exit":
                    conn.send(("ok",))
                    return
                else:  # pragma: no cover - protocol guard
                    raise ValueError("unknown message %r" % (kind,))
            except Exception:
                conn.send(("error", traceback.format_exc()))
                return

    def _recv(self, conn):
        """Read one worker reply, surfacing worker-side failures."""
        if not conn.poll(_WINDOW_TIMEOUT_S):  # pragma: no cover - hang guard
            raise RuntimeError("parallel worker did not answer within %.0fs"
                               % _WINDOW_TIMEOUT_S)
        reply = conn.recv()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise RuntimeError("parallel worker failed:\n%s" % reply[1])
        return reply

    # -- reporting / teardown ------------------------------------------------

    def _shard_report(self, sid: int) -> dict:
        sim = self.sims[sid]
        report = {
            "shard": sid,
            "now": sim.now,
            "events_dispatched": sim.events_dispatched,
            "schedule_digest": sim.schedule_digest,
            "digest_events": sim.schedule_digest_events,
        }
        probe = self.probes.get(sid)
        if probe is not None:
            report["probe"] = probe()
        return report

    def collect(self) -> Dict[int, dict]:
        """Per-shard reports (digest, event counts, probe payloads).

        Safe to call whenever no :meth:`run` is in progress — forked
        workers answer from their blocking receive between windows.
        After :meth:`stop_workers` the final snapshot is returned.
        """
        if self._final_reports is not None:
            return self._final_reports
        reports = {sid: self._shard_report(sid) for sid in self._parent_shards}
        for proc, conn, shard_ids in self._children:
            conn.send(("collect",))
        for proc, conn, shard_ids in self._children:
            reports.update(self._recv(conn))
        return {sid: reports[sid] for sid in sorted(reports)}

    def stop_workers(self) -> None:
        """Terminate forked workers (idempotent); no further runs."""
        if self._stopped:
            return
        self._final_reports = self.collect()
        for proc, conn, shard_ids in self._children:
            try:
                conn.send(("exit",))
                self._recv(conn)
            except (OSError, EOFError, RuntimeError):  # pragma: no cover
                pass
        for proc, conn, shard_ids in self._children:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
            conn.close()
        self._children = []
        self._stopped = True
