"""Spec sheets for the three storage platforms the paper compares.

Numbers come from §2.1, §4.1, §4.3 and Table 1 of the paper plus the
referenced product sheets:

* **Stingray PS1100R SmartNIC JBOF** — 8-core ARM A72 @3.0 GHz, 8 GB
  DDR4, 100 GbE, PCIe Gen3 x16 switch, up to 4 NVMe SSDs; 45 W idle,
  52.5 W max active; onboard memory bandwidth 4390 MB/s.
* **Server JBOF** — 2x Intel Xeon Gold 5218 (32 cores @2.3 GHz), 96 GB
  DRAM, 100 GbE ConnectX-5, 4-8 NVMe SSDs; the 3-JBOF cluster draws
  756 W in §4.3 (252 W per node active).
* **Raspberry Pi 3B+ embedded node** — 4-core A53 @1.4 GHz, 1 GB
  DRAM, 1 GbE (USB2-attached, ~300 Mb/s effective), 32 GB SD card;
  3.6 W idle, 4.2 W active.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.hw.ssd import SDCARD_PROFILE, SSDProfile


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one storage-node platform."""

    name: str
    num_cores: int
    freq_ghz: float
    dram_bytes: int
    dram_bandwidth_bpus: float
    nic_gbps: float
    max_ssds: int
    ssd_profile: SSDProfile
    idle_power_w: float
    max_power_w: float
    #: Extra watts when all cores poll (measured: +7.5 W on Stingray).
    polling_power_w: float

    # -- derived quantities used by Table 1 -------------------------------------

    def flash_bytes(self, num_ssds: Optional[int] = None) -> int:
        n = self.max_ssds if num_ssds is None else num_ssds
        return n * self.ssd_profile.capacity_bytes

    def storage_skew_ratio(self, num_ssds: Optional[int] = None) -> float:
        """Flash:DRAM size ratio — challenge C1 (Table 1 row 1)."""
        return self.flash_bytes(num_ssds) / self.dram_bytes

    def network_density_gbps_per_core(self) -> float:
        """GbE each core must drive — challenge C2 (Table 1 row 2)."""
        return self.nic_gbps / self.num_cores

    def storage_density_iops_per_core(self, io_bytes: int = 4096,
                                      num_ssds: Optional[int] = None) -> float:
        """4 KB random-read IOPS each core must drive (Table 1 row 3)."""
        n = self.max_ssds if num_ssds is None else num_ssds
        return n * self.ssd_profile.peak_read_iops(io_bytes) / self.num_cores

    def active_power_w(self, utilization: float = 1.0) -> float:
        """Wall power at a given utilization (linear idle->max model)."""
        utilization = min(max(utilization, 0.0), 1.0)
        return self.idle_power_w + utilization * (self.max_power_w - self.idle_power_w)


STINGRAY = PlatformSpec(
    name="stingray-ps1100r",
    num_cores=8,
    freq_ghz=3.0,
    dram_bytes=8 * 2**30,
    dram_bandwidth_bpus=4390.0,
    nic_gbps=100.0,
    max_ssds=4,
    ssd_profile=SSDProfile(),
    idle_power_w=45.0,
    max_power_w=52.5,
    polling_power_w=7.5,
)

SERVER_JBOF = PlatformSpec(
    name="xeon-server-jbof",
    num_cores=32,
    freq_ghz=2.3,
    dram_bytes=96 * 2**30,
    dram_bandwidth_bpus=20000.0,
    nic_gbps=100.0,
    max_ssds=8,
    ssd_profile=SSDProfile(),
    idle_power_w=180.0,
    max_power_w=252.0,
    polling_power_w=20.0,
)

RASPBERRY_PI = PlatformSpec(
    name="raspberry-pi-3b-plus",
    num_cores=4,
    freq_ghz=1.4,
    dram_bytes=1 * 2**30,
    dram_bandwidth_bpus=2000.0,
    nic_gbps=1.0,
    max_ssds=1,
    ssd_profile=SDCARD_PROFILE,
    idle_power_w=3.6,
    max_power_w=4.2,
    polling_power_w=0.3,
)

#: Per-node power of shared networking fabric: a FAWN cluster needs
#: rack switches; we charge a flat per-node share (§2.2.2).
SWITCH_SHARE_W = {"embedded": 1.5, "jbof": 5.0}


def platform_by_name(name: str) -> PlatformSpec:
    """Look up one of the three built-in platforms."""
    table = {
        STINGRAY.name: STINGRAY,
        SERVER_JBOF.name: SERVER_JBOF,
        RASPBERRY_PI.name: RASPBERRY_PI,
        "stingray": STINGRAY,
        "server": SERVER_JBOF,
        "pi": RASPBERRY_PI,
    }
    if name not in table:
        raise KeyError("unknown platform %r (have %s)" % (name, sorted(table)))
    return table[name]


def with_ssds(spec: PlatformSpec, num_ssds: int) -> PlatformSpec:
    """A copy of ``spec`` limited to ``num_ssds`` drive bays."""
    if num_ssds < 1 or num_ssds > spec.max_ssds:
        raise ValueError("platform %s supports 1..%d SSDs, got %d"
                         % (spec.name, spec.max_ssds, num_ssds))
    return replace(spec, max_ssds=num_ssds)
