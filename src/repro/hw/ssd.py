"""NVMe SSD model: functional flash plus a timing/queueing model.

The timing model captures the device properties LEED's design leans
on (§2.3, §3.2.1):

* fast random reads served by many parallel flash channels;
* sequential writes that are individually quick (SLC buffer) but
  bandwidth-limited in aggregate — the read/write bandwidth
  discrepancy that makes write overload a first-class problem;
* a bounded submission queue depth, beyond which submissions wait —
  the signal the intra-JBOF token engine converts into tokens.

Each I/O is processed as::

    wait for a queue-depth slot
    wait for a free flash channel        (parallelism limit)
    hold the channel for service time    (base latency + transfer)
    release; complete

Service times come from a :class:`SSDProfile` and carry lognormal-ish
jitter via a named RNG stream, reproducing the "varied unpredictably"
per-IO cost the paper calls out (§3.4).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hw.flash import FlashArray
from repro.sim.core import Simulator
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class SSDProfile:
    """Timing parameters for one SSD model.

    Defaults approximate the Samsung DCT983 960 GB used in the paper:
    up to ~400 K 4 KB random-read IOPS, ~3 GB/s sequential read,
    ~1.4 GB/s sequential write, tens-of-µs access latency.
    """

    name: str = "samsung-dct983-960g"
    capacity_bytes: int = 960 * 10**9
    #: LBA format: the DCT983 supports 512e sectors, and LEED sizes
    #: its buckets to the sector (512 B for small-object workloads,
    #: §3.2.2), so 512 is the default here.
    block_size: int = 512
    #: Parallel flash channels (concurrent in-service I/Os).
    channels: int = 24
    #: Hardware queue depth per device.
    queue_depth: int = 128
    #: Fixed read latency before data transfer, microseconds.
    read_base_us: float = 55.0
    #: Fixed write latency (SLC buffer program), microseconds.
    write_base_us: float = 26.0
    #: Sustained read bandwidth, bytes per microsecond (3 GB/s).
    read_bw_bpus: float = 3000.0
    #: Sustained write bandwidth, bytes per microsecond (1.4 GB/s).
    write_bw_bpus: float = 1400.0
    #: Multiplicative jitter half-width (0.1 -> +/-10%).
    jitter: float = 0.10
    #: Active power draw when serving I/O, watts.
    active_power_w: float = 8.5
    #: Idle power draw, watts.
    idle_power_w: float = 1.9

    def read_service_us(self, nbytes: int) -> float:
        """Mean read service time for ``nbytes``."""
        return self.read_base_us + nbytes / self.read_bw_bpus

    def write_service_us(self, nbytes: int) -> float:
        """Mean write service time for ``nbytes``."""
        return self.write_base_us + nbytes / self.write_bw_bpus

    def peak_read_iops(self, io_bytes: int = 4096) -> float:
        """Theoretical random-read IOPS ceiling for ``io_bytes`` I/Os."""
        return self.channels / (self.read_service_us(io_bytes) * 1e-6)

    def peak_write_iops(self, io_bytes: int = 4096) -> float:
        """Write IOPS ceiling: channel-bound or bandwidth-bound."""
        channel_bound = self.channels / (self.write_service_us(io_bytes) * 1e-6)
        bandwidth_bound = (self.write_bw_bpus * 1e6) / io_bytes
        return min(channel_bound, bandwidth_bound)


#: The 32 GB SanDisk SD card of the Raspberry Pi 3B+ testbed
#: (60-80 MB/s sequential).  Random reads are slow (hundreds of µs of
#: controller latency); sequential appends ride the write buffer and
#: are much cheaper per op — the asymmetry FAWN's log-structured
#: design exploits (Fig. 12: FAWN speeds up as the PUT share grows).
SDCARD_PROFILE = SSDProfile(
    name="sandisk-sd-32g",
    capacity_bytes=32 * 10**9,
    block_size=4096,
    channels=1,
    queue_depth=8,
    read_base_us=700.0,
    write_base_us=220.0,
    read_bw_bpus=80.0,   # 80 MB/s
    write_bw_bpus=60.0,  # 60 MB/s
    jitter=0.15,
    active_power_w=0.4,
    idle_power_w=0.05,
)


@dataclass
class SSDStats:
    """Cumulative per-device statistics."""

    reads_completed: int = 0
    writes_completed: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    total_read_latency_us: float = 0.0
    total_write_latency_us: float = 0.0
    busy_time_us: float = 0.0
    queue_wait_us: float = 0.0

    @property
    def mean_read_latency_us(self) -> float:
        if not self.reads_completed:
            return 0.0
        return self.total_read_latency_us / self.reads_completed

    @property
    def mean_write_latency_us(self) -> float:
        if not self.writes_completed:
            return 0.0
        return self.total_write_latency_us / self.writes_completed


class NVMeSSD:
    """A simulated NVMe device: timing model over a functional flash array.

    All I/O entry points are generator methods intended to be driven
    by a simulation process (``data = yield from ssd.read(off, n)``).
    """

    def __init__(self, sim: Simulator, profile: Optional[SSDProfile] = None,
                 rng: Optional[RngRegistry] = None, name: str = "nvme0",
                 capacity_bytes: Optional[int] = None):
        self.sim = sim
        self.profile = profile or SSDProfile()
        if capacity_bytes is not None:
            self.profile = SSDProfile(**{
                **self.profile.__dict__, "capacity_bytes": capacity_bytes})
        self.name = name
        self.flash = FlashArray(self.profile.capacity_bytes, self.profile.block_size)
        self._queue_slots = Resource(sim, self.profile.queue_depth, name + ".qd")
        self._channels = Resource(sim, self.profile.channels, name + ".chan")
        self._rng = (rng or RngRegistry()).stream("ssd/" + name)
        self.stats = SSDStats()
        # Aggregate write-bandwidth pacing: sustained writes cannot exceed
        # profile.write_bw_bpus even when channels are free.
        self._write_drain_free_at = 0.0
        #: Analytic channel fast path (``LeedOptions.fast_datapath``):
        #: channel admission is computed from a heap of busy-until
        #: times instead of two Resource grants per I/O, so each I/O
        #: costs a single timeout event.  Service times, jitter draws
        #: and statistics are identical to the Resource-based path.
        self.fast_path = False
        self._chan_busy: list = []

    # -- properties ----------------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.profile.block_size

    @property
    def capacity_bytes(self) -> int:
        return self.profile.capacity_bytes

    @property
    def inflight(self) -> int:
        """I/Os admitted to the device and not yet completed."""
        return self._queue_slots.in_use

    @property
    def queue_available(self) -> int:
        """Free submission-queue slots — the raw token signal (§3.4)."""
        return self._queue_slots.available

    def _jittered(self, mean_us: float) -> float:
        j = self.profile.jitter
        if j <= 0:
            return mean_us
        return mean_us * self._rng.uniform(1.0 - j, 1.0 + j)

    def _fast_admit(self, service_us: float) -> Tuple[float, float]:
        """Analytic channel admission: returns ``(start, done)`` times.

        Expired busy-until entries are pruned; when all channels are
        busy the I/O starts when the earliest one frees — the same
        FCFS order the channel Resource produces.
        """
        return self._fast_admit_at(service_us, self.sim.now)

    def _fast_admit_at(self, service_us: float, at: float) -> Tuple[float, float]:
        """:meth:`_fast_admit` for an I/O submitted at a future ``at``.

        Entries are only pruned against ``sim.now`` so traffic
        submitted between now and ``at`` still sees them as busy.
        """
        busy = self._chan_busy
        now = self.sim.now
        while busy and busy[0] <= now:
            heapq.heappop(busy)
        if len(busy) >= self.profile.channels:
            start = max(heapq.heappop(busy), at)
        else:
            start = at
        done = start + service_us
        heapq.heappush(busy, done)
        return start, done

    def _batch_plan(self, services: Sequence[float], admitted: float) -> List[float]:
        """Per-I/O completion times for one batched doorbell.

        Fast path: the shared busy-until heap, so batches and single
        I/Os contend for the same channels.  Slow path: a lane heap
        local to the batch (cross-traffic contends only through the
        queue-depth slot held for the whole batch).
        """
        if self.fast_path:
            return [self._fast_admit(service)[1] for service in services]
        lanes: list = []
        dones = []
        limit = max(self.profile.channels, 1)
        for service in services:
            if len(lanes) < limit:
                done = admitted + service
            else:
                done = heapq.heappop(lanes) + service
            heapq.heappush(lanes, done)
            dones.append(done)
        return dones

    # -- I/O generators ----------------------------------------------------------

    def read(self, offset: int, length: int, trace=None):
        """Read ``length`` bytes at ``offset``; yields, returns the bytes.

        ``trace`` is a duck-typed trace context (this layer never
        imports :mod:`repro.obs`): an ``ssd.read`` device span covers
        queue wait plus service.
        """
        ctx = None
        if trace is not None:
            ctx = trace.child("ssd.read", track=self.name, cat="device",
                              args={"bytes": length})
        submitted = self.sim.now
        if self.fast_path:
            service = self._jittered(self.profile.read_service_us(max(length, 1)))
            start, done = self._fast_admit(service)
            yield self.sim.timeout(done - submitted)
            data = self.flash.read(offset, length)
            admitted = start
        else:
            yield self._queue_slots.acquire()
            yield self._channels.acquire()
            admitted = self.sim.now
            service = self._jittered(self.profile.read_service_us(max(length, 1)))
            yield self.sim.timeout(service)
            data = self.flash.read(offset, length)
            self._channels.release()
            self._queue_slots.release()
        completed = self.sim.now
        self.stats.reads_completed += 1
        self.stats.read_bytes += length
        self.stats.total_read_latency_us += completed - submitted
        self.stats.queue_wait_us += admitted - submitted
        self.stats.busy_time_us += service
        if ctx is not None:
            ctx.finish({"queue_wait_us": admitted - submitted})
        return data

    def read_at(self, offset: int, length: int, at: float) -> Tuple[bytes, float]:
        """Analytic read (fast datapath): returns ``(data, done_us)``.

        Synchronous companion to :meth:`read` for fused server paths:
        admission, jitter draw and statistics are identical, but the
        caller chains the returned completion time instead of yielding
        on a timeout.  ``at`` is the submission time (>= now).
        """
        service = self._jittered(self.profile.read_service_us(max(length, 1)))
        start, done = self._fast_admit_at(service, at)
        data = self.flash.read(offset, length)
        self.stats.reads_completed += 1
        self.stats.read_bytes += length
        self.stats.total_read_latency_us += done - at
        self.stats.queue_wait_us += start - at
        self.stats.busy_time_us += service
        return data, done

    def charge_read_at(self, length: int, at: float) -> float:
        """:meth:`read_at` timing/statistics without the functional read.

        Used by caches above the device (e.g. the store's decoded
        segment cache): a cache hit still pays full device timing —
        only the byte shuffling and decode compute are skipped.
        """
        service = self._jittered(self.profile.read_service_us(max(length, 1)))
        start, done = self._fast_admit_at(service, at)
        self.stats.reads_completed += 1
        self.stats.read_bytes += length
        self.stats.total_read_latency_us += done - at
        self.stats.queue_wait_us += start - at
        self.stats.busy_time_us += service
        return done

    def write(self, offset: int, data: bytes, trace=None):
        """Program ``data`` at a block-aligned ``offset``; yields until durable."""
        ctx = None
        if trace is not None:
            ctx = trace.child("ssd.write", track=self.name, cat="device",
                              args={"bytes": len(data)})
        submitted = self.sim.now
        if self.fast_path:
            service = self._jittered(self.profile.write_service_us(max(len(data), 1)))
            drain = len(data) / self.profile.write_bw_bpus
            dstart = max(submitted, self._write_drain_free_at)
            self._write_drain_free_at = dstart + drain
            extra_wait = dstart - submitted
            admitted, done = self._fast_admit(service)
            yield self.sim.timeout(done + extra_wait - submitted)
            self.flash.write(offset, data)
        else:
            yield self._queue_slots.acquire()
            yield self._channels.acquire()
            admitted = self.sim.now
            service = self._jittered(self.profile.write_service_us(max(len(data), 1)))
            # Aggregate bandwidth pacing: each write reserves drain time on the
            # device's shared program path.
            drain = len(data) / self.profile.write_bw_bpus
            start = max(self.sim.now, self._write_drain_free_at)
            self._write_drain_free_at = start + drain
            extra_wait = start - self.sim.now
            yield self.sim.timeout(service + extra_wait)
            self.flash.write(offset, data)
            self._channels.release()
            self._queue_slots.release()
        completed = self.sim.now
        self.stats.writes_completed += 1
        self.stats.write_bytes += len(data)
        self.stats.total_write_latency_us += completed - submitted
        self.stats.queue_wait_us += admitted - submitted
        self.stats.busy_time_us += service + extra_wait
        if ctx is not None:
            ctx.finish({"queue_wait_us": admitted - submitted})
        return len(data)

    def read_multi(self, extents: Sequence[Tuple[int, int]], trace=None):
        """Vectored read: one doorbell, per-I/O channel overlap.

        ``extents`` is a sequence of ``(offset, length)`` pairs.  The
        batch rings a single doorbell (one queue-depth slot covers the
        whole submission), each I/O draws its own jittered service time
        and occupies a flash channel, and the generator resumes once
        the last I/O of the batch completes.  Returns the list of byte
        strings in submission order.  Statistics count every I/O
        individually (``reads_completed`` grows by ``len(extents)``).
        """
        extents = list(extents)
        if not extents:
            return []
        ctx = None
        if trace is not None:
            ctx = trace.child("ssd.read_multi", track=self.name, cat="device",
                              args={"ios": len(extents),
                                    "bytes": sum(e[1] for e in extents)})
        submitted = self.sim.now
        if not self.fast_path:
            yield self._queue_slots.acquire()
        admitted = self.sim.now
        services = [self._jittered(self.profile.read_service_us(max(length, 1)))
                    for _offset, length in extents]
        dones = self._batch_plan(services, admitted)
        yield self.sim.timeout(max(dones) - self.sim.now)
        data = [self.flash.read(offset, length) for offset, length in extents]
        if not self.fast_path:
            self._queue_slots.release()
        self.stats.reads_completed += len(extents)
        self.stats.read_bytes += sum(length for _offset, length in extents)
        self.stats.total_read_latency_us += sum(done - submitted for done in dones)
        self.stats.queue_wait_us += admitted - submitted
        self.stats.busy_time_us += sum(services)
        if ctx is not None:
            ctx.finish({"queue_wait_us": admitted - submitted})
        return data

    def write_multi(self, writes: Sequence[Tuple[int, bytes]], trace=None):
        """Vectored write: one doorbell, per-I/O channel overlap.

        ``writes`` is a sequence of ``(offset, data)`` pairs.  The
        batch reserves aggregate drain bandwidth for its total bytes,
        then overlaps the per-I/O programs across channels like
        :meth:`read_multi`.  Returns the total bytes written.
        """
        writes = list(writes)
        if not writes:
            return 0
        total = sum(len(data) for _offset, data in writes)
        ctx = None
        if trace is not None:
            ctx = trace.child("ssd.write_multi", track=self.name, cat="device",
                              args={"ios": len(writes), "bytes": total})
        submitted = self.sim.now
        if not self.fast_path:
            yield self._queue_slots.acquire()
        admitted = self.sim.now
        services = [self._jittered(self.profile.write_service_us(max(len(data), 1)))
                    for _offset, data in writes]
        drain = total / self.profile.write_bw_bpus
        dstart = max(self.sim.now, self._write_drain_free_at)
        self._write_drain_free_at = dstart + drain
        extra_wait = dstart - self.sim.now
        dones = self._batch_plan(services, admitted)
        yield self.sim.timeout(max(dones) + extra_wait - self.sim.now)
        for offset, data in writes:
            self.flash.write(offset, data)
        if not self.fast_path:
            self._queue_slots.release()
        self.stats.writes_completed += len(writes)
        self.stats.write_bytes += total
        self.stats.total_write_latency_us += sum(
            done + extra_wait - submitted for done in dones)
        self.stats.queue_wait_us += admitted - submitted
        self.stats.busy_time_us += sum(services) + extra_wait
        if ctx is not None:
            ctx.finish({"queue_wait_us": admitted - submitted})
        return total

    def trim(self, offset: int, length: int):
        """Discard a range; near-free on the device."""
        yield self.sim.timeout(1.0)
        self.flash.trim(offset, length)

    # -- energy ---------------------------------------------------------------

    def energy_joules(self, elapsed_us: Optional[float] = None) -> float:
        """Energy consumed: idle draw over elapsed time + active premium."""
        if elapsed_us is None:
            elapsed_us = self.sim.now
        busy = min(self.stats.busy_time_us / max(self.profile.channels, 1), elapsed_us)
        active_premium = self.profile.active_power_w - self.profile.idle_power_w
        return (self.profile.idle_power_w * elapsed_us
                + active_premium * busy) * 1e-6

    def __repr__(self):
        return "<NVMeSSD %s inflight=%d reads=%d writes=%d>" % (
            self.name, self.inflight,
            self.stats.reads_completed, self.stats.writes_completed)
