"""Functional flash storage: real bytes, block granularity.

This is the *functional* half of the SSD substitution (see DESIGN.md):
it stores actual data so that the LEED data store, its compactions,
and recovery paths can be tested for correctness, independent of the
timing model in :mod:`repro.hw.ssd`.

The device is block-addressed.  Writes must be whole blocks (the LEED
bucket is sized to the SSD block for exactly this reason, §3.2.2);
reads may span multiple blocks.  Erase-block accounting tracks
program/erase counters so wear behaviour is observable in tests.
"""

from __future__ import annotations

from typing import Dict, Optional


class FlashError(Exception):
    """Raised on out-of-range or misaligned flash access."""


class FlashArray:
    """A block-granular persistent byte store.

    Parameters
    ----------
    capacity_bytes:
        Total device capacity.  Must be a multiple of ``block_size``.
    block_size:
        The write granularity (512 B or 4 KB on real devices).
    erase_block_blocks:
        Blocks per erase block, for wear accounting only.
    """

    def __init__(self, capacity_bytes: int, block_size: int = 4096,
                 erase_block_blocks: int = 256):
        if capacity_bytes <= 0 or block_size <= 0:
            raise ValueError("capacity and block size must be positive")
        if capacity_bytes % block_size:
            raise ValueError("capacity %d not a multiple of block size %d"
                             % (capacity_bytes, block_size))
        self.capacity_bytes = int(capacity_bytes)
        self.block_size = int(block_size)
        self.num_blocks = capacity_bytes // block_size
        self.erase_block_blocks = int(erase_block_blocks)
        self._blocks: Dict[int, bytes] = {}
        # Counters for observability / wear tests.
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._program_counts: Dict[int, int] = {}

    # -- address helpers ------------------------------------------------------

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity_bytes:
            raise FlashError(
                "access [%d, %d) outside device of %d bytes"
                % (offset, offset + length, self.capacity_bytes))

    def block_of(self, offset: int) -> int:
        """Block index containing byte ``offset``."""
        return offset // self.block_size

    # -- I/O -------------------------------------------------------------------

    def write_block(self, block_index: int, data: bytes) -> None:
        """Program one block.  Short data is zero-padded to the block."""
        if not 0 <= block_index < self.num_blocks:
            raise FlashError("block %d out of range" % block_index)
        if len(data) > self.block_size:
            raise FlashError("data of %d bytes exceeds block size %d"
                             % (len(data), self.block_size))
        if len(data) < self.block_size:
            data = bytes(data) + b"\x00" * (self.block_size - len(data))
        self._blocks[block_index] = bytes(data)
        self.writes += 1
        self.bytes_written += self.block_size
        erase_block = block_index // self.erase_block_blocks
        self._program_counts[erase_block] = self._program_counts.get(erase_block, 0) + 1

    def write(self, offset: int, data: bytes) -> None:
        """Program ``data`` starting at a block-aligned ``offset``."""
        if offset % self.block_size:
            raise FlashError("write offset %d not block-aligned" % offset)
        self._check_range(offset, len(data))
        block = offset // self.block_size
        view = memoryview(bytes(data))
        for start in range(0, len(data), self.block_size):
            self.write_block(block, bytes(view[start:start + self.block_size]))
            block += 1

    def read_block(self, block_index: int) -> bytes:
        """Read one whole block (unwritten blocks read as zeros)."""
        if not 0 <= block_index < self.num_blocks:
            raise FlashError("block %d out of range" % block_index)
        self.reads += 1
        self.bytes_read += self.block_size
        return self._blocks.get(block_index, b"\x00" * self.block_size)

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes from an arbitrary ``offset``."""
        self._check_range(offset, length)
        if length == 0:
            return b""
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        chunks = []
        for block in range(first, last + 1):
            self.reads += 1
            self.bytes_read += self.block_size
            chunks.append(self._blocks.get(block, b"\x00" * self.block_size))
        blob = b"".join(chunks)
        start = offset - first * self.block_size
        return blob[start:start + length]

    def trim(self, offset: int, length: int) -> None:
        """Discard whole blocks in the range (partial blocks are kept)."""
        self._check_range(offset, length)
        first = -(-offset // self.block_size)  # ceil: only fully-covered blocks
        last = (offset + length) // self.block_size
        for block in range(first, last):
            self._blocks.pop(block, None)

    # -- observability ----------------------------------------------------------

    @property
    def blocks_in_use(self) -> int:
        """Blocks that have been programmed and not trimmed."""
        return len(self._blocks)

    def max_program_count(self) -> int:
        """Worst-case per-erase-block program count (wear proxy)."""
        return max(self._program_counts.values(), default=0)

    def snapshot(self) -> Dict[int, bytes]:
        """Copy of programmed blocks — used by recovery tests."""
        return dict(self._blocks)

    def __repr__(self):
        return "<FlashArray %dB blocks=%d/%d>" % (
            self.capacity_bytes, len(self._blocks), self.num_blocks)
