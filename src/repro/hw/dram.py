"""DRAM capacity and bandwidth accounting.

Challenge C1 is the skewed Flash:DRAM ratio — a SmartNIC JBOF has
~1024x more flash than DRAM, so every in-memory index byte matters.
:class:`Dram` is a strict allocator: stores must reserve the bytes
their in-memory structures occupy, and allocation fails when the
modeled capacity is exhausted.  This is what limits FAWN-JBOF to
7.7 % and KVell-JBOF to 0.9 % usable flash in Table 3.
"""

from __future__ import annotations

from typing import Dict


class OutOfMemoryError(Exception):
    """A reservation exceeded the modeled DRAM capacity."""


class Dram:
    """Byte-accurate DRAM capacity accounting with named reservations."""

    def __init__(self, capacity_bytes: int, bandwidth_bpus: float = 4390.0,
                 name: str = "dram"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        #: Onboard memory bandwidth in bytes/µs (Stingray: 4390 MB/s, §4.8).
        self.bandwidth_bpus = float(bandwidth_bpus)
        self.name = name
        self._reservations: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def reserve(self, label: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``label`` (adds to prior reservations)."""
        if nbytes < 0:
            raise ValueError("negative reservation")
        if nbytes > self.free_bytes:
            raise OutOfMemoryError(
                "%s: reserving %d bytes for %r but only %d free of %d"
                % (self.name, nbytes, label, self.free_bytes, self.capacity_bytes))
        self._reservations[label] = self._reservations.get(label, 0) + nbytes

    def resize(self, label: str, nbytes: int) -> None:
        """Set the reservation for ``label`` to exactly ``nbytes``."""
        current = self._reservations.get(label, 0)
        delta = nbytes - current
        if delta > self.free_bytes:
            raise OutOfMemoryError(
                "%s: growing %r by %d bytes but only %d free"
                % (self.name, label, delta, self.free_bytes))
        if nbytes:
            self._reservations[label] = nbytes
        else:
            self._reservations.pop(label, None)

    def release(self, label: str) -> int:
        """Free the reservation for ``label``; returns the bytes freed."""
        return self._reservations.pop(label, 0)

    def reservation(self, label: str) -> int:
        return self._reservations.get(label, 0)

    def transfer_time_us(self, nbytes: int) -> float:
        """Time to move ``nbytes`` through the memory system."""
        return nbytes / self.bandwidth_bpus

    def __repr__(self):
        return "<Dram %s %d/%d bytes used>" % (
            self.name, self.used_bytes, self.capacity_bytes)
