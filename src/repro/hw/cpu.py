"""CPU core model: run-to-completion execution with cycle accounting.

LEED's challenge C2 is the tiny per-I/O compute headroom of a
SmartNIC core.  We model each core as a serially-executing resource:
work items charge cycles, a core runs one item at a time, and cycle
budgets differ per platform (A72 vs Xeon vs A53).  This is what makes
KVell's B-tree "computation-heavy" on the SmartNIC in Table 3 and
bounds FAWN's embedded nodes at 1 GbE.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.core import Simulator
from repro.sim.resources import Resource


class Core:
    """One CPU core; work executes FCFS and to completion."""

    def __init__(self, sim: Simulator, freq_ghz: float, core_id: int = 0,
                 name: str = "core"):
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        self.sim = sim
        self.freq_ghz = float(freq_ghz)
        self.core_id = int(core_id)
        self.name = "%s%d" % (name, core_id)
        self._unit = Resource(sim, capacity=1, name=self.name)
        self.cycles_executed = 0
        self.busy_time_us = 0.0
        #: Analytic fast path (``LeedOptions.fast_datapath``): work
        #: reserves a slice of the future-reservation calendar instead
        #: of queueing on the Resource, saving the grant event per work
        #: item.  Timing is identical for serial work; concurrent items
        #: backfill the gaps a pipelined request leaves between its CPU
        #: stages (see :meth:`_reserve`).
        self.fast_path = False
        self._free_at = 0.0
        #: Future reserved slices ``(start, end)``, sorted by start.
        self._reserved: List[Tuple[float, float]] = []

    def us_for_cycles(self, cycles: int) -> float:
        """Wall time (µs) to execute ``cycles`` on this core."""
        return cycles / (self.freq_ghz * 1e3)

    def _reserve(self, at: float, duration: float) -> float:
        """Earliest start >= ``at`` with ``duration`` of free core time.

        A fused request chains ``charge_at`` calls at future instants,
        so its CPU slices land with SSD-sized gaps between them.  An
        earlier free-at-horizon model reserved straight past those
        gaps, which convoyed every concurrent request behind whole
        pipelines instead of sub-microsecond CPU slices (mean latency
        roughly doubled at closed-loop concurrency).  Scanning the
        reservation calendar for the first wide-enough gap restores
        the interleaving the process-based model produces.
        """
        reserved = self._reserved
        now = self.sim.now
        while reserved and reserved[0][1] <= now:
            reserved.pop(0)
        start = at
        index = len(reserved)
        for i, (begin, end) in enumerate(reserved):
            if start + duration <= begin:
                index = i
                break
            if end > start:
                start = end
        reserved.insert(index, (start, start + duration))
        if start + duration > self._free_at:
            self._free_at = start + duration
        return start

    def execute(self, cycles: int):
        """Generator: occupy the core for ``cycles`` of work."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        duration = self.us_for_cycles(cycles)
        if self.fast_path:
            start = self._reserve(self.sim.now, duration)
            self.cycles_executed += cycles
            self.busy_time_us += duration
            yield self.sim.timeout(start + duration - self.sim.now)
            return
        yield self._unit.acquire()
        yield self.sim.timeout(duration)
        self._unit.release()
        self.cycles_executed += cycles
        self.busy_time_us += duration

    def charge_at(self, cycles: int, at: float) -> float:
        """Analytic charge (fast datapath): returns the completion time.

        Reserves ``cycles`` of work starting no earlier than ``at``
        (>= now) on the reservation calendar, without yielding — fused
        server paths chain these completion times and sleep once.
        """
        duration = self.us_for_cycles(cycles)
        start = self._reserve(at, duration)
        self.cycles_executed += cycles
        self.busy_time_us += duration
        return start + duration

    def execute_us(self, duration_us: float):
        """Generator: occupy the core for a wall-time duration."""
        if self.fast_path:
            start = self._reserve(self.sim.now, duration_us)
            self.cycles_executed += int(duration_us * self.freq_ghz * 1e3)
            self.busy_time_us += duration_us
            yield self.sim.timeout(start + duration_us - self.sim.now)
            return
        yield self._unit.acquire()
        yield self.sim.timeout(duration_us)
        self._unit.release()
        self.cycles_executed += int(duration_us * self.freq_ghz * 1e3)
        self.busy_time_us += duration_us

    @property
    def busy(self) -> bool:
        return self._unit.in_use > 0 or self._free_at > self.sim.now

    @property
    def queue_length(self) -> int:
        return self._unit.queue_length

    def backlog_us(self) -> float:
        """Reserved-but-unfinished work on the fast-path horizon."""
        return max(self._free_at - self.sim.now, 0.0)

    def utilization(self) -> float:
        """Fraction of wall time spent executing since creation."""
        if self.sim.now <= 0:
            return 0.0
        return min(self.busy_time_us / self.sim.now, 1.0)

    def __repr__(self):
        return "<Core %s %.1fGHz busy=%s>" % (self.name, self.freq_ghz, self.busy)


class CpuComplex:
    """A set of cores sharing a frequency (one SoC)."""

    def __init__(self, sim: Simulator, num_cores: int, freq_ghz: float,
                 name: str = "cpu"):
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.name = name
        self.cores = [Core(sim, freq_ghz, core_id=i, name=name + ".c")
                      for i in range(num_cores)]

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, index: int) -> Core:
        return self.cores[index]

    def least_loaded(self) -> Core:
        """Core with the shortest queue (for work placement)."""
        return min(self.cores,
                   key=lambda c: (c.queue_length, c.busy, c.backlog_us()))

    def total_cycles(self) -> int:
        return sum(core.cycles_executed for core in self.cores)

    def mean_utilization(self) -> float:
        return sum(c.utilization() for c in self.cores) / len(self.cores)


#: Cycle costs (per operation) used by the stores.  These are coarse
#: software-path costs calibrated so the relative compute weight of
#: each design matches the paper's observations: LEED's hash + chain
#: walk is cheap; KVell's B-tree descent is expensive on wimpy cores;
#: FAWN's single hash probe is cheapest.
CYCLE_COSTS = {
    "rpc_receive": 1200,          # parse + dispatch one request
    "rpc_reply": 800,             # format + post one response
    "hash_lookup": 300,           # SegTbl / hash-index probe
    "bucket_scan_per_key": 60,    # linear scan within a fetched bucket
    "bucket_update": 500,         # insert/overwrite a key item
    "btree_node_visit": 2500,     # KVell B-tree node binary search + pointer chase
    "kvell_commit": 30000,        # KVell write path: journaling, batching bookkeeping
    "log_append_bookkeeping": 400,
    "compaction_per_entry": 250,
    "token_accounting": 150,
    "replication_forward": 900,
    "dirty_map_op": 200,
}
