"""Hardware models: flash, NVMe SSDs, CPUs, DRAM, platform specs."""

from repro.hw.cpu import CYCLE_COSTS, Core, CpuComplex
from repro.hw.dram import Dram, OutOfMemoryError
from repro.hw.flash import FlashArray, FlashError
from repro.hw.platforms import (
    RASPBERRY_PI,
    SERVER_JBOF,
    STINGRAY,
    PlatformSpec,
    platform_by_name,
    with_ssds,
)
from repro.hw.ssd import SDCARD_PROFILE, NVMeSSD, SSDProfile, SSDStats

__all__ = [
    "FlashArray",
    "FlashError",
    "NVMeSSD",
    "SSDProfile",
    "SSDStats",
    "SDCARD_PROFILE",
    "Core",
    "CpuComplex",
    "CYCLE_COSTS",
    "Dram",
    "OutOfMemoryError",
    "PlatformSpec",
    "STINGRAY",
    "SERVER_JBOF",
    "RASPBERRY_PI",
    "platform_by_name",
    "with_ssds",
]
