"""Simulation-time observability: tracing spans and metrics.

The evaluation of LEED (§4) is built on *per-phase* latency
breakdowns — where a GET spends its microseconds across the NIC,
flow-control queueing, engine tokens, and flash.  This package is the
measurement substrate that produces those breakdowns for every
experiment:

* :mod:`repro.obs.spans` — a :class:`Tracer` records begin/end
  sim-timestamps per phase as a request crosses the client, RPC
  layer, JBOF dispatch, I/O engine, and device; traces export as
  Chrome-trace-viewer JSON (`chrome://tracing`, Perfetto).
* :mod:`repro.obs.hist` — a fixed-bucket log-scale
  :class:`LatencyHistogram` with p50/p95/p99/p999, the bounded
  replacement for raw latency lists.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` whose
  periodic sampler turns cumulative counters/gauges/histograms into
  timeseries records the bench harness dumps as ``BENCH_*.json``.
* :mod:`repro.obs.merge` — canonical merging of per-shard histogram /
  counter / span exports from partition-parallel runs.
* ``python -m repro.obs.trace`` — run a small traced benchmark and
  export its trace (see :mod:`repro.obs.trace`).

Everything here reads **simulated** time only (``sim.now``); two runs
with the same seed produce byte-identical trace and metrics output.
"""

from repro.obs.hist import LatencyHistogram
from repro.obs.merge import merge_counters, merge_histograms, merge_span_exports
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, TraceContext, Tracer, span_coverage

__all__ = [
    "LatencyHistogram",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "merge_counters",
    "merge_histograms",
    "merge_span_exports",
    "span_coverage",
]
