"""Fixed-bucket log-scale latency histogram.

The histogram covers 1 µs to ~16.7 s with four buckets per doubling
(growth factor 2**0.25, ~19% relative width), which is plenty of
resolution for p999 at a fixed, small memory footprint — the bounded
replacement for the unbounded raw latency lists the client used to
keep.

Percentile convention matches the raw-list quantile the repo has
always used (``index = min(int(q * n), n - 1)`` on the sorted list):
the reported value is the geometric midpoint of the bucket holding
that rank, clamped to the observed min/max, so histogram and raw
quantiles agree within one bucket width.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Bucket growth factor: four buckets per doubling of latency.
GROWTH = 2.0 ** 0.25

#: Lower edge of the first finite bucket, in microseconds.
MIN_US = 1.0

#: Number of buckets: 96 buckets of x1.19 span 1 µs .. ~16.7 s.
NUM_BUCKETS = 96


def _bucket_edges() -> List[float]:
    edges = [MIN_US]
    for _ in range(NUM_BUCKETS):
        edges.append(edges[-1] * GROWTH)
    return edges


#: Precomputed upper edges; EDGES[i] is the inclusive upper bound of
#: bucket i (bucket 0 also absorbs anything below MIN_US).
EDGES = tuple(_bucket_edges()[1:])


class LatencyHistogram:
    """Log-scale histogram of latencies in microseconds."""

    __slots__ = ("counts", "_count", "_sum_us", "_min_us", "_max_us")

    def __init__(self):
        self.counts = [0] * NUM_BUCKETS
        self._count = 0
        self._sum_us = 0.0
        self._min_us: Optional[float] = None
        self._max_us: Optional[float] = None

    # -- recording ----------------------------------------------------------

    @staticmethod
    def bucket_index(value_us: float) -> int:
        """Bucket for a value: underflow clamps to 0, overflow to the
        last bucket."""
        if value_us <= MIN_US:
            return 0
        lo, hi = 0, NUM_BUCKETS - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value_us <= EDGES[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def record(self, value_us: float) -> None:
        self.counts[self.bucket_index(value_us)] += 1
        self._count += 1
        self._sum_us += value_us
        if self._min_us is None or value_us < self._min_us:
            self._min_us = value_us
        if self._max_us is None or value_us > self._max_us:
            self._max_us = value_us

    def merge(self, other: "LatencyHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self._count += other._count
        self._sum_us += other._sum_us
        if other._min_us is not None:
            if self._min_us is None or other._min_us < self._min_us:
                self._min_us = other._min_us
        if other._max_us is not None:
            if self._max_us is None or other._max_us > self._max_us:
                self._max_us = other._max_us

    # -- inspection ---------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_us(self) -> float:
        return self._sum_us

    @property
    def min_us(self) -> float:
        return self._min_us if self._min_us is not None else 0.0

    @property
    def max_us(self) -> float:
        return self._max_us if self._max_us is not None else 0.0

    def mean_us(self) -> float:
        """Exact mean — tracked from the raw sum, not the buckets."""
        if self._count == 0:
            return 0.0
        return self._sum_us / self._count

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` (0..1).

        Rank convention matches the repo's historical raw-list
        quantile: ``rank = min(int(q * count), count - 1)``.  The
        returned value is the geometric midpoint of the bucket
        containing that rank, clamped to the observed range.
        """
        if self._count == 0:
            return 0.0
        rank = min(int(q * self._count), self._count - 1)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen > rank:
                lower = MIN_US if i == 0 else EDGES[i - 1]
                upper = EDGES[i]
                mid = (lower * upper) ** 0.5
                return max(self.min_us, min(self.max_us, mid))
        return self.max_us  # pragma: no cover - counts always sum to _count

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def to_dict(self) -> Dict[str, object]:
        """Summary + sparse buckets, ready for JSON dumps."""
        return {
            "count": self._count,
            "sum_us": self._sum_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
            "mean_us": self.mean_us(),
            "p50_us": self.p50,
            "p95_us": self.p95,
            "p99_us": self.p99,
            "p999_us": self.p999,
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
        }

    def __repr__(self):
        return "<LatencyHistogram n=%d mean=%.1fus p99=%.1fus>" % (
            self._count, self.mean_us(), self.p99)
