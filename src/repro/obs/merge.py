"""Deterministic merging of per-shard observability exports.

Partition-parallel runs (:mod:`repro.sim.parallel`) leave each shard
with its own slice of the observability state: client latency
histograms on the coordinator shard, per-node counters on the JBOF
shards, spans wherever the span was opened.  These helpers combine
such slices into one cluster-level view with a *canonical* result —
the merge output is a pure function of the input multiset, never of
the order shards happened to report in, so merged figures can be
digest-compared across worker counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.obs.hist import LatencyHistogram
from repro.obs.spans import Span


def merge_histograms(parts: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Sum latency histograms into a fresh one.

    Bucket counts, totals, and extrema are all order-independent, so
    any reporting order yields the identical merged histogram.
    """
    merged = LatencyHistogram()
    for part in parts:
        merged.merge(part)
    return merged


def merge_counters(parts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Sum per-shard counter dictionaries key-wise."""
    merged: Dict[str, float] = {}
    for part in parts:
        for name, value in part.items():
            merged[name] = merged.get(name, 0.0) + value
    return merged


def merge_span_exports(parts: Iterable[List[Span]]) -> List[Span]:
    """Combine per-shard span lists into one canonically ordered list.

    Spans sort by ``(begin_us, track, name, trace_id, span_id)`` —
    time first so the merged list reads as a cluster-wide timeline,
    with the remaining fields breaking simultaneous-begin ties the
    same way on every run.
    """
    spans: List[Span] = []
    for part in parts:
        spans.extend(part)
    spans.sort(key=lambda span: (span.begin_us, span.track, span.name,
                                 span.trace_id, span.span_id))
    return spans
