"""Traced-benchmark CLI: drive a small cluster, export Chrome traces.

Usage::

    python -m repro.obs.trace --ops 32 --output trace.json
    python -m repro.obs.trace --jbofs 3 --clients 2 --output - \
        --metrics-output metrics.json --metrics-interval-us 10000

Runs a deterministic PUT+GET workload on a :class:`LeedCluster` with
request tracing enabled, then writes the spans as canonical
Chrome-trace JSON (open in ``chrome://tracing`` or Perfetto).  Two
runs with the same arguments produce byte-identical output — the
export is the CI trace artifact.

This module sits above :mod:`repro.core` on purpose (it composes the
full stack); it is the one :mod:`repro.obs` file exempted from the
import-layering lint rule.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.cluster import LeedCluster
from repro.obs.spans import span_coverage


def _workload(client, count: int, value_size: int, offset: int):
    """One client's share: ``count`` PUT+GET pairs over distinct keys."""
    for index in range(count):
        key = ("key%06d" % (offset + index)).encode()
        value = bytes([(offset + index) % 251]) * value_size
        yield from client.put(key, value)
        yield from client.get(key)


def run_traced(num_jbofs: int, num_clients: int, ops: int, value_size: int,
               seed: int, sample_interval: int,
               metrics_interval_us: float) -> LeedCluster:
    """Run the traced workload to completion; returns the (shut down)
    cluster so callers can export its tracer/metrics."""
    with LeedCluster(num_jbofs=num_jbofs, num_clients=num_clients,
                     seed=seed, trace_sample_interval=sample_interval,
                     metrics_interval_us=metrics_interval_us) as cluster:
        cluster.start()
        share = max(ops // num_clients, 1)
        procs = [
            cluster.sim.process(
                _workload(client, share, value_size, index * share),
                name="trace.workload%d" % index)
            for index, client in enumerate(cluster.clients)
        ]
        cluster.sim.run(until=cluster.sim.all_of(procs))
        cluster.shutdown()
        # Drain in-flight background events (flushes, pushes) so every
        # span is finished before export.
        cluster.sim.run()
    return cluster


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Run a small traced benchmark and export the spans "
                    "as Chrome-trace JSON.")
    parser.add_argument("--jbofs", type=int, default=3)
    parser.add_argument("--clients", type=int, default=1)
    parser.add_argument("--ops", type=int, default=32,
                        help="total PUT+GET pairs across all clients")
    parser.add_argument("--value-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-interval", type=int, default=1,
                        help="trace every Nth request (1 = all)")
    parser.add_argument("--output", default="-",
                        help="trace JSON path, or - for stdout")
    parser.add_argument("--metrics-output", default=None,
                        help="also dump MetricsRegistry records here")
    parser.add_argument("--metrics-interval-us", type=float, default=0.0)
    args = parser.parse_args(argv)

    cluster = run_traced(args.jbofs, args.clients, args.ops,
                         args.value_size, args.seed, args.sample_interval,
                         args.metrics_interval_us)
    document = cluster.tracer.to_json()
    if args.output == "-":
        print(document)
    else:
        with open(args.output, "w") as handle:
            handle.write(document)
            handle.write("\n")
    if args.metrics_output is not None:
        with open(args.metrics_output, "w") as handle:
            handle.write(cluster.metrics.to_json())
            handle.write("\n")

    roots = [span for span in cluster.tracer.roots() if span.finished]
    coverages = [span_coverage(cluster.tracer, span) for span in roots]
    mean_coverage = (sum(coverages) / len(coverages)) if coverages else 0.0
    print("traced %d requests, %d spans, mean phase coverage %.1f%%"
          % (len(roots), len(cluster.tracer.spans), 100.0 * mean_coverage),
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
