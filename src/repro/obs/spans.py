"""Tracing spans over simulated time.

A :class:`Tracer` records *spans* — named intervals of simulated time
with a parent/child structure — as a request crosses the client, the
RPC layer, JBOF dispatch, the I/O engine token gate, and finally the
device.  The output renders directly in Chrome's trace viewer
(``chrome://tracing``) or Perfetto via :meth:`Tracer.chrome_trace`.

Design constraints, in order:

* **Determinism.** Span ids are assigned from a per-tracer counter,
  timestamps come from ``sim.now``, and JSON export sorts keys and
  uses canonical separators — two runs with the same seed produce
  byte-identical output.
* **Layering.** ``repro.hw`` and ``repro.net`` sit below this package
  in the import DAG and must never import it.  They receive a
  :class:`TraceContext` (or ``None``) and call ``ctx.child(...)`` /
  ``ctx.finish()`` on it; the context carries its tracer with it, so
  the lower layers stay import-free.
* **Cost.** Tracing is off unless a client's sampling interval says
  otherwise; untraced requests carry ``None`` and every instrumented
  call site is a cheap ``if ctx is not None`` guard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    """One named interval of simulated time.

    ``track`` groups spans into rows in the trace viewer (one row per
    simulated actor: a client, a JBOF, an SSD).  ``cat`` is the
    coarse phase bucket used by coverage accounting — ``client``,
    ``net``, ``engine``, ``device`` or ``store``.
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    track: str
    cat: str
    begin_us: float
    end_us: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.begin_us

    @property
    def finished(self) -> bool:
        return self.end_us is not None


class TraceContext:
    """Handle threaded through the request path for one open span.

    The context bundles the tracer with the span so that code below
    the :mod:`repro.obs` layer can open children and close spans
    without importing anything — it only ever touches an object it
    was handed.
    """

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def child(self, name: str, track: Optional[str] = None, cat: str = "",
              args: Optional[Dict[str, object]] = None) -> "TraceContext":
        """Open a child span; inherits this span's track by default."""
        return self.tracer.begin(
            name,
            track=track if track is not None else self.span.track,
            cat=cat or self.span.cat,
            parent=self,
            args=args,
        )

    def finish(self, args: Optional[Dict[str, object]] = None) -> None:
        """Close the span at ``sim.now``.  Idempotent: a span that was
        already closed (e.g. by the RPC success path) keeps its first
        end timestamp; late ``args`` are still merged."""
        if args:
            self.span.args.update(args)
        if self.span.end_us is None:
            self.span.end_us = self.tracer.sim.now

    def annotate(self, **kwargs: object) -> None:
        """Attach key/value arguments to the span."""
        self.span.args.update(kwargs)


class Tracer:
    """Records spans against a simulator clock and exports them.

    One tracer serves a whole cluster; per-client sampling decides
    which requests get a root span at all.  All ids are small
    deterministic integers.
    """

    def __init__(self, sim):
        self.sim = sim
        self.spans: List[Span] = []
        self._next_trace_id = 0
        self._next_span_id = 0

    # -- recording ----------------------------------------------------------

    def trace(self, name: str, track: str, cat: str = "client",
              args: Optional[Dict[str, object]] = None) -> TraceContext:
        """Begin a new trace (a root span with a fresh trace id)."""
        self._next_trace_id += 1
        return self._begin(self._next_trace_id, None, name, track, cat, args)

    def begin(self, name: str, track: str, cat: str = "",
              parent: Optional[TraceContext] = None,
              args: Optional[Dict[str, object]] = None) -> TraceContext:
        """Begin a span, optionally as a child of ``parent``."""
        if parent is not None:
            return self._begin(parent.span.trace_id, parent.span.span_id,
                               name, track, cat or parent.span.cat, args)
        self._next_trace_id += 1
        return self._begin(self._next_trace_id, None, name, track, cat, args)

    def _begin(self, trace_id: int, parent_id: Optional[int], name: str,
               track: str, cat: str,
               args: Optional[Dict[str, object]]) -> TraceContext:
        self._next_span_id += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            track=track,
            cat=cat,
            begin_us=self.sim.now,
            args=dict(args) if args else {},
        )
        self.spans.append(span)
        return TraceContext(self, span)

    # -- queries ------------------------------------------------------------

    def roots(self) -> List[Span]:
        """All root spans, in begin order."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def spans_in_trace(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    # -- export -------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """Render spans as a Chrome trace-viewer document.

        Each finished span becomes a ``ph: "X"`` complete event; each
        track becomes a named thread (``ph: "M"`` metadata), with tids
        assigned in first-appearance order so the mapping is
        deterministic.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, object]] = []
        for span in self.spans:
            if span.track not in tids:
                tid = len(tids) + 1
                tids[span.track] = tid
                events.append({
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": span.track},
                })
            if not span.finished:
                continue
            args: Dict[str, object] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            for key in sorted(span.args):
                args[key] = span.args[key]
            events.append({
                "ph": "X",
                "pid": 1,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.cat or "span",
                "ts": span.begin_us,
                "dur": span.duration_us,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        """Canonical JSON — byte-identical across same-seed runs."""
        return json.dumps(self.chrome_trace(), sort_keys=True,
                          separators=(",", ":"))


def span_coverage(tracer: Tracer, root: Span) -> float:
    """Fraction of ``root``'s duration covered by its direct children.

    Computes the union of the child intervals clipped to the root's
    window, divided by the root duration.  This is the acceptance
    metric for end-to-end tracing: the client/net/engine/device spans
    under a request root must account for (almost) all of the
    client-measured latency.
    """
    if not root.finished or root.duration_us <= 0.0:
        return 0.0
    intervals = []
    for child in tracer.children_of(root):
        if not child.finished:
            continue
        lo = max(child.begin_us, root.begin_us)
        hi = min(child.end_us, root.end_us)
        if hi > lo:
            intervals.append((lo, hi))
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            covered += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    covered += cur_hi - cur_lo
    return covered / root.duration_us
