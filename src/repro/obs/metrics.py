"""Periodic metrics sampling over simulated time.

A :class:`MetricsRegistry` holds named counters, gauges (zero-arg
callables read at sample time), and :class:`LatencyHistogram`
instances, and snapshots them all into a timeseries record either on
demand (:meth:`sample_now`) or on a fixed simulated-time cadence
(:meth:`sample_every`).  The records are plain dicts with sorted,
stable keys — ready to dump as ``BENCH_*.json`` artifacts.

The sampler is a simulator process; call :meth:`stop` (or let
``LeedCluster.shutdown()`` do it) so a drained heap can terminate
``sim.run()``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.obs.hist import LatencyHistogram


class MetricsRegistry:
    """Named metrics plus a periodic timeseries sampler."""

    def __init__(self, sim):
        self.sim = sim
        self.records: List[Dict[str, object]] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._sampling = False
        self._process = None
        #: Scenario-phase tag stamped onto records (None = untagged;
        #: untagged records keep their pre-scenario shape).
        self._phase: Optional[str] = None

    # -- registration -------------------------------------------------------

    def counter(self, name: str, delta: float = 1.0) -> None:
        """Increment counter ``name`` by ``delta`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge read at every sample.  Re-registering a
        name replaces the callable."""
        self._gauges[name] = fn

    def register_histogram(self, name: str,
                           hist: Optional[LatencyHistogram] = None
                           ) -> LatencyHistogram:
        """Register (or create) a histogram under ``name``."""
        if hist is None:
            hist = LatencyHistogram()
        self._histograms[name] = hist
        return hist

    def histogram(self, name: str) -> LatencyHistogram:
        """Fetch-or-create a histogram by name."""
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram()
        return self._histograms[name]

    def set_phase(self, name: Optional[str]) -> None:
        """Tag subsequent samples with a scenario phase name.

        Pass ``None`` to clear.  Records taken while no phase is set
        omit the key entirely, so pre-scenario callers see identical
        bytes.
        """
        self._phase = name

    # -- sampling -----------------------------------------------------------

    def sample_now(self) -> Dict[str, object]:
        """Append and return one timeseries record at ``sim.now``."""
        record: Dict[str, object] = {
            "t_us": self.sim.now,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: float(self._gauges[k]())
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
        }
        if self._phase is not None:
            record["phase"] = self._phase
        self.records.append(record)
        return record

    def sample_every(self, interval_us: float):
        """Start the periodic sampler process; returns the process.

        Samples at ``now + interval_us``, then every ``interval_us``
        after that, until :meth:`stop`.  Starting twice is a no-op.
        """
        if interval_us <= 0:
            raise ValueError("interval_us must be positive, got %r" % interval_us)
        if self._sampling:
            return self._process
        self._sampling = True
        self._process = self.sim.process(self._sample_loop(interval_us),
                                         name="metrics.sampler")
        return self._process

    def _sample_loop(self, interval_us: float):
        while self._sampling:
            yield self.sim.timeout(interval_us)
            if not self._sampling:
                return
            self.sample_now()

    def stop(self) -> None:
        """Stop the periodic sampler (the process exits at its next
        wakeup).  A final sample is flushed so runs shorter than one
        interval still produce a record.  Safe to call when never
        started, or twice."""
        if self._sampling:
            self.sample_now()
        self._sampling = False

    # -- export -------------------------------------------------------------

    def bench_records(self, label: str) -> List[Dict[str, object]]:
        """Flatten records into one-row-per-sample dicts keyed for the
        bench harness's ``BENCH_*.json`` files: histogram summaries
        are inlined as ``<name>.p99_us`` style columns."""
        rows: List[Dict[str, object]] = []
        for record in self.records:
            row: Dict[str, object] = {"label": label, "t_us": record["t_us"]}
            if "phase" in record:
                row["phase"] = record["phase"]
            for k, v in record["counters"].items():
                row[k] = v
            for k, v in record["gauges"].items():
                row[k] = v
            for name, summary in record["histograms"].items():
                for stat in ("count", "mean_us", "p50_us", "p95_us",
                             "p99_us", "p999_us"):
                    row["%s.%s" % (name, stat)] = summary[stat]
            rows.append(row)
        return rows

    def to_json(self) -> str:
        """Canonical JSON of all records — byte-stable across runs."""
        return json.dumps(self.records, sort_keys=True,
                          separators=(",", ":"))

    def __repr__(self):
        return "<MetricsRegistry gauges=%d histograms=%d records=%d>" % (
            len(self._gauges), len(self._histograms), len(self.records))
