"""Parallel design-space autotuner for LEED configurations.

Layers (see docs/explore.md):

- :mod:`.space` — declarative, validated config spaces;
- :mod:`.fleet` — memoized, process-pooled trial execution;
- :mod:`.strategies` — deterministic grid / random / successive-halving
  hill-climb searches with multi-objective fitness;
- :mod:`.report` — Pareto front, BENCH_explore.json, markdown summary.

CLI: ``python -m repro.bench.explore --budget N --seed S``.
"""

from .fleet import TRIAL_SCALES, FleetRunner, make_trial, run_trial
from .report import build_report, pareto_front, write_markdown
from .space import (SPACES, ConfigSpace, Dimension, config_digest,
                    engine_space, leed_space)
from .strategies import (STRATEGIES, Evaluator, FitnessSpec, run_search,
                         search_grid, search_hill, search_random)

__all__ = [
    "TRIAL_SCALES", "FleetRunner", "make_trial", "run_trial",
    "build_report", "pareto_front", "write_markdown",
    "SPACES", "ConfigSpace", "Dimension", "config_digest",
    "engine_space", "leed_space",
    "STRATEGIES", "Evaluator", "FitnessSpec", "run_search",
    "search_grid", "search_hill", "search_random",
]
