"""Trial-level process-pool execution of fixed-seed explorer trials.

One *trial* is one deterministic simulation: build a LEED cluster from
a design point, load a fixed-seed YCSB keyspace, drive a closed loop,
and report sim-derived metrics (throughput, latency, energy) plus
wall-clock diagnostics.  Trials are independent, so the
:class:`FleetRunner` fans them out over a ``fork``-context process
pool — *trial-level* parallelism, complementing the *shard-level*
parallelism inside :mod:`repro.sim.parallel` (a trial whose point asks
for ``workers >= 2`` forks its own engine workers, so the fleet keeps
those in the parent process rather than nesting forks).

Results are memoized in a JSON cache keyed by
``config_digest(point + seed + run shape)``: a resumed or overlapping
search re-proposes the same trials but never re-runs them, and its
trajectory is identical to an uncached run's.

The runner also cross-checks the determinism contract for free: trials
that agree on every *digest-affecting* dimension (equal
``sim_signature``) must report byte-identical ``figure_digest``\\ s no
matter how the wall-clock dimensions (``workers``, engine tuning)
differ.  A mismatch is a determinism bug and fails the search loudly.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.baselines import make_cluster
from repro.bench.harness import load_cluster, run_closed_loop, scale_profile
from repro.bench.perf import SCALES as PERF_SCALES
from repro.bench.perf import figure_digest
from repro.core.datastore import StoreConfig
from repro.core.jbof import LeedOptions
from repro.workloads.ycsb import YCSBWorkload

from .space import canonical_json, config_digest

#: scale -> trial run shape.  ``tiny``/``small`` are explorer-native
#: (search loops run dozens of trials, so each must finish in
#: seconds); the rest alias the perf harness's tiers so engine sweeps
#: measure the same geometries CI cross-checks digests on.
TRIAL_SCALES = {
    "tiny": {"records": 200, "ops": 480, "concurrency": 16,
             "num_jbofs": 3, "num_clients": 2},
    "small": {"records": 400, "ops": 1600, "concurrency": 24,
              "num_jbofs": 3, "num_clients": 2},
    "smoke": PERF_SCALES["smoke"],
    "large": PERF_SCALES["large"],
    "xlarge-smoke": PERF_SCALES["xlarge-smoke"],
}

#: Least ops a reduced-fidelity rung may run (successive halving
#: shrinks ``ops`` by ``ops_fraction``; below this the closed loop
#: barely leaves warm-up).
MIN_TRIAL_OPS = 120


def trial_key(payload: dict) -> str:
    """Memo-cache key: everything that determines the trial's result."""
    return config_digest({
        "point": payload["point"],
        "seed": payload["seed"],
        "scale": payload["scale"],
        "workload": payload["workload"],
        "value_size": payload["value_size"],
        "ops_fraction": payload["ops_fraction"],
        "scenario": payload.get("scenario"),
    })


def signature_key(payload: dict) -> str:
    """Figure-identity key: the digest-affecting slice of a trial.

    Trials sharing this key must report equal ``figure_digest``.
    """
    return config_digest({
        "signature": payload["sim_signature"],
        "seed": payload["seed"],
        "scale": payload["scale"],
        "workload": payload["workload"],
        "value_size": payload["value_size"],
        "ops_fraction": payload["ops_fraction"],
        "scenario": payload.get("scenario"),
    })


def make_trial(point: dict, overrides, scale: str, workload: str,
               value_size: int, seed: int,
               ops_fraction: float = 1.0,
               sim_signature: Optional[dict] = None,
               scenario: Optional[str] = None) -> dict:
    """Assemble one picklable trial payload.

    ``overrides`` is the ``(cluster, options, run)`` triple from
    :meth:`ConfigSpace.overrides`; ``sim_signature`` the point's
    digest-affecting slice (defaults to the whole point).
    ``scenario`` switches the trial from the closed-loop YCSB driver
    to a :mod:`repro.scenarios` episode of that name — fitness then
    scores the config under churn/faults instead of steady state
    (``scale`` must name a scenario scale, and ``workload`` /
    ``value_size`` / ``ops_fraction`` are owned by the scenario).
    """
    if scenario is not None:
        from repro.scenarios.dsl import SCALES as SCENARIO_SCALES
        if scale not in SCENARIO_SCALES:
            raise ValueError(
                "unknown scenario scale %r (have %s)"
                % (scale, ", ".join(sorted(SCENARIO_SCALES))))
    elif scale not in TRIAL_SCALES:
        raise ValueError("unknown trial scale %r (have %s)"
                         % (scale, ", ".join(sorted(TRIAL_SCALES))))
    cluster, options, run = overrides
    return {
        "point": point,
        "cluster": cluster,
        "options": options,
        "run": run,
        "scale": scale,
        "workload": workload,
        "value_size": value_size,
        "seed": seed,
        "ops_fraction": ops_fraction,
        "scenario": scenario,
        "sim_signature": sim_signature if sim_signature is not None
        else dict(point),
    }


def run_trial(payload: dict) -> dict:
    """Execute one trial (module-level, hence pool-picklable).

    Mirrors :func:`repro.bench.perf.run_once`: build + load are setup,
    only the run phase is timed; energy is the run-phase delta of the
    cluster's back-end meters, so requests/Joule compares configs on
    the work they did, not on load-phase accounting.
    """
    if payload.get("scenario"):
        return _run_scenario_trial(payload)
    spec = TRIAL_SCALES[payload["scale"]]
    value_size = payload["value_size"]
    profile = scale_profile(spec.get("profile", "quick"), value_size)
    store = StoreConfig(num_segments=profile.num_segments,
                        key_log_bytes=profile.key_log_bytes,
                        value_log_bytes=profile.value_log_bytes)
    options = LeedOptions(**payload["options"])
    cluster_kwargs = dict(payload["cluster"])
    platform = cluster_kwargs.pop("platform", "auto")
    ssds = cluster_kwargs.pop("ssds_per_jbof", profile.ssds_per_jbof)
    cluster = make_cluster(
        "leed", platform=platform, num_nodes=spec["num_jbofs"],
        ssds_per_node=ssds, num_clients=spec["num_clients"],
        store_config=store, options=options, seed=payload["seed"],
        **cluster_kwargs)

    workload = YCSBWorkload(payload["workload"],
                            num_records=spec["records"],
                            seed=payload["seed"], value_size=value_size)
    try:
        load_cluster(cluster, workload,
                     parallelism=spec.get("load_parallelism", 16))

        num_ops = max(int(spec["ops"] * payload["ops_fraction"]),
                      MIN_TRIAL_OPS)
        concurrency = int(payload["run"].get("concurrency",
                                             spec["concurrency"]))
        cluster.settle_shards()
        energy_before = cluster.energy_joules()
        events_before = cluster.total_events_dispatched()
        started = time.perf_counter()
        stats = run_closed_loop(cluster, workload, num_ops, concurrency)
        wall_s = time.perf_counter() - started
        cluster.settle_shards()
        energy = cluster.energy_joules() - energy_before
        events = cluster.total_events_dispatched() - events_before
        exchange = cluster.exchange_stats()
        cluster.shutdown()
        cluster.sim.run()
    except Exception as exc:
        # Some design points are simply broken deployments (e.g. a
        # protocol that deterministically times out on a too-slow
        # platform).  An explorer must score those worst-feasible and
        # move on, not abort the search — and since the failure is
        # sim-deterministic, the row (and its digest) still replays
        # identically.
        return _failure_row(payload, exc)
    finally:
        cluster.stop_workers()

    row = {
        "ops": stats.completed,
        "failed": stats.failed,
        "sim_elapsed_us": round(stats.elapsed_us, 3),
        "sim_ops_per_sec": round(stats.throughput_qps, 1),
        "mean_latency_us": round(stats.mean_latency_us(), 3),
        "p99_latency_us": round(stats.percentile_us(0.99), 3),
        "energy_joules": round(energy, 6),
        "requests_per_joule": round(stats.completed / energy, 1)
        if energy > 0 else 0.0,
        "wall_s": round(wall_s, 4),
        "wall_ops_per_sec": round(stats.completed / wall_s, 1),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
        "workers": int(payload["cluster"].get("workers", 0)),
    }
    # Same 6 sim-derived fields as repro.bench.perf, so explorer rows
    # and perf rows with matching configs digest identically.
    row["figure_digest"] = figure_digest(row)
    if exchange is not None:
        sim_seconds = stats.elapsed_us / 1e6
        exchange = dict(exchange)
        exchange["windows_per_sim_sec"] = round(
            exchange["windows"] / sim_seconds, 1) if sim_seconds else 0.0
        exchange["child_messages_per_sim_sec"] = round(
            exchange["child_messages"] / sim_seconds, 1) if sim_seconds else 0.0
        row["exchange"] = exchange
    return row


def _run_scenario_trial(payload: dict) -> dict:
    """Score a design point under a :mod:`repro.scenarios` episode.

    The point's cluster overrides are appended to the scenario's
    ``config_overrides`` tuple — the runner applies that tuple *last*,
    so the point wins over both the scale's defaults and the
    scenario's own overrides.  Options are merged *into* the
    scenario's options (scale-tuned heartbeat first, then any
    scenario-override options, then the point), because an ``options``
    entry in ``config_overrides`` replaces the whole ``LeedOptions``.

    The scenario owns workload, value size, and run shape, so the
    payload's ``workload`` / ``value_size`` / ``run`` / ``ops_fraction``
    are inert — pair scenario fitness with ``grid`` or ``random``
    rather than successive halving, and with the digest-affecting
    ``leed`` space (autoscaler scenarios sample energy mid-run at
    window granularity, so wall-clock-only engine knobs need not be
    figure-neutral under them).
    """
    import dataclasses

    from repro.hw.platforms import platform_by_name
    from repro.scenarios.dsl import SCALES as SCENARIO_SCALES
    from repro.scenarios.dsl import build_scenario
    from repro.scenarios.runner import run_scenario

    scale = SCENARIO_SCALES[payload["scale"]]
    try:
        scenario = build_scenario(payload["scenario"])
        extra = dict(payload["cluster"])
        if "platform" in extra:
            extra["platform"] = platform_by_name(extra["platform"])
        merged = {"heartbeat_period_us": scale.heartbeat_period_us}
        existing = dict(scenario.config_overrides).get("options")
        if existing is not None:
            merged.update({field.name: getattr(existing, field.name)
                           for field in dataclasses.fields(existing)})
        merged.update(payload["options"])
        extra["options"] = LeedOptions(**merged)
        scenario = dataclasses.replace(
            scenario,
            config_overrides=(tuple(scenario.config_overrides)
                              + tuple(extra.items())))
        started = time.perf_counter()
        record = run_scenario(scenario=scenario, scale=payload["scale"],
                              seed=payload["seed"])
        wall_s = time.perf_counter() - started
    except Exception as exc:
        # Same contract as the closed-loop path: broken deployments
        # (worker caps, protocol timeouts) are worst-case infeasible
        # rows, and the failure is sim-deterministic.
        return _failure_row(payload, exc)

    totals = record["totals"]
    elapsed_us = totals["elapsed_us"]
    lost = record["invariants"]["lost_acked_writes"]
    row = {
        "ops": totals["ok"],
        # "failed" carries the *hard* failure count so the standard
        # feasibility gate (failed == 0) means "no lost acked writes";
        # soft failures under churn are judged via availability.
        "failed": lost,
        "sim_elapsed_us": round(elapsed_us, 3),
        "sim_ops_per_sec": round(totals["ok"] / elapsed_us * 1e6, 1)
        if elapsed_us else 0.0,
        "mean_latency_us": totals["p50_us"],
        "p99_latency_us": totals["p99_us"],
        "energy_joules": totals["energy_joules"],
        "requests_per_joule": totals["requests_per_joule"],
        "availability": totals["availability"],
        "issued": totals["issued"],
        "soft_failed": totals["failed"],
        "dropped": totals["dropped"],
        "wall_s": round(wall_s, 4),
        "wall_ops_per_sec": round(totals["ok"] / wall_s, 1)
        if wall_s else 0.0,
        "events": 0,
        "events_per_sec": 0.0,
        "workers": int(payload["cluster"].get("workers", 0)),
        "scenario": payload["scenario"],
        "scenario_digest": record["digests"]["figure"],
    }
    row["figure_digest"] = figure_digest(row)
    return row


#: p99 sentinel for failed trials: far above any plausible SLO, but
#: still a finite JSON number (``inf`` would not round-trip strictly).
FAILED_P99_US = 1e12


def _failure_row(payload: dict, exc: Exception) -> dict:
    row = {
        "ops": 0,
        "failed": 1,
        "sim_elapsed_us": 0.0,
        "sim_ops_per_sec": 0.0,
        "mean_latency_us": 0.0,
        "p99_latency_us": FAILED_P99_US,
        "energy_joules": 0.0,
        "requests_per_joule": 0.0,
        "wall_s": 0.0,
        "wall_ops_per_sec": 0.0,
        "events": 0,
        "events_per_sec": 0.0,
        "workers": int(payload["cluster"].get("workers", 0)),
        "error": "%s: %s" % (type(exc).__name__, exc),
    }
    if payload.get("scenario"):
        row["availability"] = 0.0
        row["scenario"] = payload["scenario"]
    row["figure_digest"] = figure_digest(row)
    return row


class FleetRunner:
    """Memoized, optionally process-pooled trial execution.

    ``fleet`` is the pool width; 0 or 1 runs every trial in the parent
    process (the right call on 1-CPU boxes — this container reports
    ``os.cpu_count() == 1``).  Trials whose point forks engine workers
    (``workers >= 2``) always run in the parent to avoid nested forks.
    """

    def __init__(self, cache_path: Optional[str] = None, fleet: int = 0):
        self.cache_path = cache_path
        self.fleet = max(int(fleet), 0)
        self.live_trials = 0
        self.cache_hits = 0
        self._cache: Dict[str, dict] = {}
        self._signatures: Dict[str, str] = {}
        if cache_path and os.path.exists(cache_path):
            with open(cache_path) as handle:
                self._cache = json.load(handle)

    def _save_cache(self) -> None:
        if not self.cache_path:
            return
        tmp = self.cache_path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_json(self._cache))
            handle.write("\n")
        os.replace(tmp, self.cache_path)

    def _check_signature(self, payload: dict, row: dict) -> None:
        key = signature_key(payload)
        seen = self._signatures.setdefault(key, row["figure_digest"])
        if seen != row["figure_digest"]:
            raise RuntimeError(
                "determinism violation: trials sharing digest-affecting "
                "config %s reported figure digests %s vs %s (point %s)"
                % (canonical_json(payload["sim_signature"]), seen,
                   row["figure_digest"], canonical_json(payload["point"])))

    def run(self, payloads: List[dict]) -> List[dict]:
        """Run a batch; results in submission order, cache-augmented.

        Each result row gains ``cached`` (bool) and ``trial_key``.
        """
        results: List[Optional[dict]] = [None] * len(payloads)
        pooled, parent = [], []
        for index, payload in enumerate(payloads):
            key = trial_key(payload)
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                row = dict(hit)
                row["cached"] = True
                row["trial_key"] = key
                self._check_signature(payload, row)
                results[index] = row
            elif (self.fleet >= 2
                    and int(payload["cluster"].get("workers", 0)) < 2):
                pooled.append((index, key, payload))
            else:
                parent.append((index, key, payload))

        if pooled:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=self.fleet,
                                     mp_context=context) as pool:
                rows = list(pool.map(run_trial,
                                     [p for _, _, p in pooled]))
            for (index, key, payload), row in zip(pooled, rows):
                self._finish(results, index, key, payload, row)
        for index, key, payload in parent:
            self._finish(results, index, key, payload, run_trial(payload))
        self._save_cache()
        return results  # type: ignore[return-value]

    def _finish(self, results, index, key, payload, row) -> None:
        self.live_trials += 1
        self._cache[key] = row
        row = dict(row)
        row["cached"] = False
        row["trial_key"] = key
        self._check_signature(payload, row)
        results[index] = row
