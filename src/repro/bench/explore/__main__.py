"""Design-space autotuner CLI.

Usage::

    PYTHONPATH=src python -m repro.bench.explore --budget 12 --seed 0
    PYTHONPATH=src python -m repro.bench.explore --space engine \\
        --objective wall --scale xlarge-smoke --strategy grid
    PYTHONPATH=src python -m repro.bench.explore --budget 8 \\
        --check-improves-default --markdown docs/explore_results.md

Searches a declarative config space (``--space leed`` for
sim-outcome knobs, ``--space engine`` for parallel-engine wall-clock
knobs) with a deterministic strategy and writes ``BENCH_explore.json``
— best config, full trajectory + digest, Pareto front, cache stats.
Same ``--seed`` ⇒ same proposals, same best config, same trajectory
digest; the memo cache (``--cache``) makes resumed searches free.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .fleet import TRIAL_SCALES, FleetRunner
from .report import build_report, write_markdown
from .space import SPACES
from .strategies import STRATEGIES, Evaluator, FitnessSpec, run_search

WORKLOAD_CHOICES = ("A", "B", "C", "WR")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.explore", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--space", choices=tuple(sorted(SPACES)),
                        default="leed",
                        help="config space to search (default leed)")
    parser.add_argument("--strategy", choices=tuple(sorted(STRATEGIES)),
                        default="hill",
                        help="search strategy (default hill: "
                             "successive-halving hill-climb)")
    parser.add_argument("--budget", type=int, default=12,
                        help="evaluation budget, cached or live "
                             "(default 12); the default-config "
                             "reference trial is free")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for both the simulations and the "
                             "search's RNG streams (default 0)")
    parser.add_argument("--scale", choices=tuple(sorted(TRIAL_SCALES)),
                        default="small",
                        help="trial scale (default small)")
    parser.add_argument("--workload", choices=WORKLOAD_CHOICES,
                        default="B", help="YCSB workload (default B)")
    parser.add_argument("--value-size", type=int, default=256,
                        help="value size in bytes (default 256)")
    parser.add_argument("--objective", choices=("rpj", "wall"),
                        default="rpj",
                        help="primary fitness: requests/Joule (rpj, "
                             "deterministic) or wall-clock ops/sec "
                             "(wall, for engine tuning)")
    parser.add_argument("--slo-p99-us", type=float, default=2000.0,
                        help="feasibility cap on p99 latency in µs "
                             "(default 2000; 0 disables)")
    parser.add_argument("--scenario", default=None, metavar="NAME",
                        help="score points under this repro.scenarios "
                             "episode instead of the closed-loop YCSB "
                             "driver (use with --strategy grid/random; "
                             "--scale must be a scenario scale)")
    parser.add_argument("--min-availability", type=float, default=0.0,
                        help="feasibility floor on availability for "
                             "scenario trials (default 0 = disabled)")
    parser.add_argument("--fleet", type=int, default=0,
                        help="trial process-pool width (default 0 = "
                             "run trials in-process; pointless above "
                             "the CPU count)")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="memo-cache JSON path (default: no "
                             "on-disk cache; in-memory only)")
    parser.add_argument("--output", default="BENCH_explore.json",
                        help="report path (default BENCH_explore.json)")
    parser.add_argument("--markdown", default=None, metavar="PATH",
                        help="also write a markdown summary here")
    parser.add_argument("--check-improves-default", action="store_true",
                        help="exit nonzero unless the best config is "
                             "at least as fit as the default")
    args = parser.parse_args(argv)
    if args.budget < 1:
        parser.error("--budget must be >= 1")
    if args.scenario is not None:
        from repro.scenarios.dsl import SCALES as SCENARIO_SCALES
        from repro.scenarios.dsl import scenario_names
        if args.scenario not in scenario_names():
            parser.error("unknown scenario %r (have: %s)"
                         % (args.scenario,
                            ", ".join(scenario_names())))
        if args.scale not in SCENARIO_SCALES:
            parser.error("--scenario needs a scenario scale (%s), "
                         "not %r" % (", ".join(sorted(SCENARIO_SCALES)),
                                     args.scale))
        if args.strategy == "hill":
            parser.error("--scenario pairs with --strategy grid or "
                         "random (scenarios own their run shape, so "
                         "hill's reduced-fidelity rungs would re-run "
                         "full episodes)")

    space = SPACES[args.space]()
    space.validate()
    fitness = FitnessSpec(objective=args.objective,
                          slo_p99_us=args.slo_p99_us,
                          min_availability=args.min_availability)
    runner = FleetRunner(cache_path=args.cache, fleet=args.fleet)
    evaluator = Evaluator(space, runner, fitness, args.scale,
                          args.workload, args.value_size, args.seed,
                          args.budget, scenario=args.scenario)
    print("explore: space=%s strategy=%s budget=%d seed=%d scale=%s "
          "workload=%s objective=%s slo_p99_us=%g fleet=%d%s"
          % (args.space, args.strategy, args.budget, args.seed,
             args.scale, args.workload, args.objective, args.slo_p99_us,
             args.fleet,
             " scenario=%s" % args.scenario if args.scenario else ""))
    outcome = run_search(args.strategy, space, evaluator, args.seed)
    report = build_report(space, evaluator, fitness, outcome,
                          strategy=args.strategy, seed=args.seed,
                          budget=args.budget, scale=args.scale,
                          workload=args.workload,
                          value_size=args.value_size, fleet=args.fleet,
                          cpu_count=os.cpu_count())

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % args.output)
    if args.markdown:
        write_markdown(report, args.markdown)
        print("wrote %s" % args.markdown)

    for record in evaluator.trials:
        metrics = record["metrics"]
        print("  trial %2d %-9s f=%.2f %s rpj=%.1f kqps=%.2f "
              "p99=%.1fus wall=%.0f/s%s"
              % (record["trial"], record["stage"],
                 record["ops_fraction"],
                 "ok " if record["feasible"] else "infeasible",
                 metrics["requests_per_joule"],
                 metrics["sim_ops_per_sec"] / 1000.0,
                 metrics["p99_latency_us"], metrics["wall_ops_per_sec"],
                 " (cached)" if metrics.get("cached") else ""))
    best, default = report["best"], report["default"]
    if best:
        print("best: %s" % json.dumps(best["point"], sort_keys=True))
    if report["improvement"]:
        imp = report["improvement"]
        print("%s: default %.1f -> best %.1f (%.2fx)"
              % (imp["metric"], imp["default"], imp["best"],
                 imp["ratio"] or 0.0))
    print("trajectory digest: %s (%d live trials, %d cache hits)"
          % (report["trajectory_digest"], report["live_trials"],
             report["cache_hits"]))

    if args.check_improves_default and best and default:
        if tuple(best["fitness"]) < tuple(default["fitness"]):
            print("EXPLORE CHECK FAILED: best config %s is less fit "
                  "than the default" % best["point"], file=sys.stderr)
            return 1
        print("explore check passed: best >= default on (%s)"
              % ", ".join(("feasible", report["objective"], "kqps")))
    return 0


if __name__ == "__main__":
    sys.exit(main())
