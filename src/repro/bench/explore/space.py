"""Declarative design space over LEED cluster configurations.

A :class:`ConfigSpace` is an ordered list of typed
:class:`Dimension`\\ s, each naming one knob of the deployment —
a :class:`~repro.core.cluster.ClusterConfig` field, a
:class:`~repro.core.jbof.LeedOptions` field, or a run-shape knob of
the trial driver — together with its candidate values and whether the
knob is *digest-affecting* (can change simulated outcomes) or a pure
wall-clock knob (``workers``, the parallel-engine tuning).

The space is validated up front against the real configuration types:
:meth:`ConfigSpace.validate` resolves the default point through
``ClusterConfig.from_overrides`` and ``LeedOptions`` so a typo'd
dimension fails at definition time, never mid-search.

Points are plain ``{dimension: value}`` dicts with JSON-scalar values,
so they digest canonically (:func:`config_digest`) and cross process
boundaries untouched.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.cluster import ClusterConfig
from repro.core.jbof import LeedOptions
from repro.hw.platforms import platform_by_name

#: Dimension targets: where a knob lands when a trial is built.
TARGETS = ("cluster", "options", "run")

#: Run-shape knobs the trial driver understands (everything else in a
#: ``run`` dimension is rejected by :meth:`ConfigSpace.validate`).
RUN_FIELDS = ("concurrency", "value_size")

#: ``cluster`` dimension names resolved specially by the fleet runner
#: (platform is a string alias, not a ``PlatformSpec`` instance).
SPECIAL_CLUSTER_FIELDS = ("platform",)

Point = Dict[str, object]


def canonical_json(payload) -> str:
    """Stable serialization shared by digests and the memo cache."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(payload) -> str:
    """16-hex digest of any JSON-serializable payload."""
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()[:16]


@dataclass(frozen=True)
class Dimension:
    """One knob of the design space.

    ``values`` must be JSON scalars (bool/int/float/str), unique, and
    listed in search order — :meth:`ConfigSpace.neighbors` steps to
    adjacent values, so numeric dimensions should be sorted.
    ``default`` names the stock value (the first value when omitted);
    the space's default point must reproduce the out-of-the-box
    configuration so "beats the default" is a meaningful claim.
    """

    name: str
    values: Tuple[object, ...]
    target: str = "options"
    #: True when the knob can change simulated outcomes (figure
    #: metrics); False for wall-clock-only knobs.  Trials that agree
    #: on every digest-affecting dimension must produce identical
    #: figure digests — the explorer cross-checks this for free.
    digest_affecting: bool = True
    description: str = ""
    default: object = field(default=None)

    def __post_init__(self):
        if self.target not in TARGETS:
            raise ValueError("dimension %r: target %r not in %s"
                             % (self.name, self.target, TARGETS))
        if not self.values:
            raise ValueError("dimension %r has no values" % self.name)
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError("dimension %r has duplicate values: %r"
                             % (self.name, self.values))
        for value in self.values:
            if not isinstance(value, (bool, int, float, str)):
                raise ValueError(
                    "dimension %r: value %r is not a JSON scalar"
                    % (self.name, value))
        if self.default is None:
            object.__setattr__(self, "default", self.values[0])
        elif self.default not in self.values:
            raise ValueError("dimension %r: default %r not in values %r"
                             % (self.name, self.default, self.values))

    def describe(self) -> dict:
        return {
            "name": self.name,
            "values": list(self.values),
            "target": self.target,
            "digest_affecting": self.digest_affecting,
            "default": self.default,
            "description": self.description,
        }


class ConfigSpace:
    """An ordered, validated set of dimensions."""

    def __init__(self, dimensions: Sequence[Dimension], name: str = "space"):
        self.name = name
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self._by_name = {}
        for dim in self.dimensions:
            if dim.name in self._by_name:
                raise ValueError("duplicate dimension %r" % dim.name)
            self._by_name[dim.name] = dim
        if not self.dimensions:
            raise ValueError("a config space needs at least one dimension")

    # -- introspection -----------------------------------------------------

    def __len__(self):
        return len(self.dimensions)

    def __contains__(self, name: str):
        return name in self._by_name

    def dimension(self, name: str) -> Dimension:
        return self._by_name[name]

    def size(self) -> int:
        """Number of distinct points (the full grid)."""
        size = 1
        for dim in self.dimensions:
            size *= len(dim.values)
        return size

    def describe(self) -> List[dict]:
        return [dim.describe() for dim in self.dimensions]

    # -- points ------------------------------------------------------------

    def default_point(self) -> Point:
        return {dim.name: dim.default for dim in self.dimensions}

    def check_point(self, point: Point) -> Point:
        """Validate and canonicalize one point (dimension order)."""
        unknown = sorted(set(point) - set(self._by_name))
        if unknown:
            raise ValueError("unknown dimension(s) %s; space %r has: %s"
                             % (", ".join(map(repr, unknown)), self.name,
                                ", ".join(self._by_name)))
        missing = [dim.name for dim in self.dimensions if dim.name not in point]
        if missing:
            raise ValueError("point is missing dimension(s): %s"
                             % ", ".join(missing))
        for dim in self.dimensions:
            if point[dim.name] not in dim.values:
                raise ValueError(
                    "dimension %r: value %r not in allowed values %r"
                    % (dim.name, point[dim.name], dim.values))
        return {dim.name: point[dim.name] for dim in self.dimensions}

    def grid(self) -> Iterator[Point]:
        """Every point, in deterministic declaration order."""
        names = [dim.name for dim in self.dimensions]
        for combo in itertools.product(*(d.values for d in self.dimensions)):
            yield dict(zip(names, combo))

    def sample(self, rng) -> Point:
        """One uniform random point from a named RNG stream."""
        return {dim.name: dim.values[rng.randrange(len(dim.values))]
                for dim in self.dimensions}

    def neighbors(self, point: Point) -> List[Point]:
        """One-dimension steps to adjacent values, declaration order.

        For each dimension the value index moves -1 then +1; the hill
        climber evaluates these in order, so the neighborhood sweep is
        deterministic.
        """
        point = self.check_point(point)
        moves = []
        for dim in self.dimensions:
            index = dim.values.index(point[dim.name])
            for step in (-1, +1):
                other = index + step
                if 0 <= other < len(dim.values):
                    neighbor = dict(point)
                    neighbor[dim.name] = dim.values[other]
                    moves.append(neighbor)
        return moves

    # -- trial plumbing ----------------------------------------------------

    def overrides(self, point: Point) -> Tuple[dict, dict, dict]:
        """Split a point into (cluster, options, run) override dicts."""
        point = self.check_point(point)
        cluster, options, run = {}, {}, {}
        buckets = {"cluster": cluster, "options": options, "run": run}
        for dim in self.dimensions:
            buckets[dim.target][dim.name] = point[dim.name]
        return cluster, options, run

    def sim_signature(self, point: Point) -> Point:
        """The digest-affecting slice of a point.

        Two trials with equal signatures (and equal seed / run shape)
        must produce identical figure digests no matter how the
        wall-clock dimensions differ — the fleet runner asserts this.
        """
        point = self.check_point(point)
        return {dim.name: point[dim.name] for dim in self.dimensions
                if dim.digest_affecting}

    def validate(self) -> None:
        """Resolve the default point against the real config types.

        ``cluster`` dimensions must be ``ClusterConfig`` fields (or the
        ``platform`` string alias), ``options`` dimensions must be
        ``LeedOptions`` fields, and ``run`` dimensions must be knobs
        the trial driver understands.  Raises ``TypeError`` /
        ``ValueError`` with the offending name otherwise.
        """
        cluster, options, run = self.overrides(self.default_point())
        platform = cluster.pop("platform", None)
        if platform is not None:
            platform_by_name(platform)
        try:
            resolved = LeedOptions(**options)
        except TypeError as exc:
            raise TypeError("options dimension does not match LeedOptions: %s"
                            % exc) from exc
        ClusterConfig.from_overrides(options=resolved, **cluster)
        unknown_run = sorted(set(run) - set(RUN_FIELDS))
        if unknown_run:
            raise ValueError("unknown run dimension(s) %s; driver knows: %s"
                             % (", ".join(map(repr, unknown_run)),
                                ", ".join(RUN_FIELDS)))


# -- the stock spaces -------------------------------------------------------

def leed_space() -> ConfigSpace:
    """The LEED deployment design space (sim-outcome dimensions).

    Covers the knobs the paper sampled by hand plus the ones this
    reproduction grew since: datapath batching, RPC coalescing,
    flow-control tokens, partitions per JBOF, platform mix, and the
    replication protocol (a first-class dimension — protocol choice
    alone shifts the throughput/latency frontier on wimpy NIC cores).
    Defaults reproduce the stock ``ClusterConfig`` /
    ``LeedOptions``, so "the best point beats the default" compares
    against what a user gets out of the box.
    """
    return ConfigSpace([
        Dimension("fast_datapath", (False, True), "options",
                  description="batched analytic datapath (PR 3 knobs)"),
        Dimension("admission_batch", (1, 4, 8, 16), "options",
                  description="engine commands drained per scheduler "
                              "wakeup (vectored multi_get)"),
        Dimension("rpc_coalesce_limit", (4, 8, 16), "options", default=8,
                  description="max same-destination requests per SEND"),
        Dimension("token_capacity", (48, 96, 192), "options", default=96,
                  description="flow-control token pool per partition "
                              "engine"),
        Dimension("replication_protocol", ("chain", "craq", "abd"),
                  "cluster",
                  description="write/read protocol "
                              "(repro.core.replication)"),
        Dimension("ssds_per_jbof", (2, 4), "cluster", default=4,
                  description="partitions per JBOF (1 vnode per SSD)"),
        Dimension("platform", ("stingray", "server", "pi"), "cluster",
                  description="node platform mix: SmartNIC JBOF vs "
                              "Xeon server vs Raspberry Pi"),
        Dimension("concurrency", (16, 24, 48), "run", default=24,
                  description="closed-loop requests in flight"),
    ], name="leed")


def engine_space() -> ConfigSpace:
    """The parallel-engine tuning space (wall-clock dimensions only).

    Sweeping it answers ROADMAP item 1's remaining question: where do
    the elision threshold and window sizing land on real hardware?
    Every dimension is flagged non-digest-affecting, so the sweep
    doubles as a free cross-check that figure digests are invariant
    across worker counts and engine tunings.
    """
    return ConfigSpace([
        Dimension("workers", (1, 2, 4), "cluster", digest_affecting=False,
                  description="engine processes (1 = sharded "
                              "in-process)"),
        Dimension("engine_elision_threshold_us", (0.0, 8.0, 64.0, 1e9),
                  "cluster", digest_affecting=False,
                  description="min idle gap (µs) to elide a "
                              "shard-window; 1e9 disables elision"),
        Dimension("engine_window_cap_us", (0.0, 25.0, 100.0), "cluster",
                  digest_affecting=False,
                  description="cap window length past the horizon "
                              "(µs); 0 = full lookahead bound"),
    ], name="engine")


#: CLI space registry.
SPACES = {"leed": leed_space, "engine": engine_space}
