"""Deterministic search strategies over a :class:`ConfigSpace`.

Three strategies, all driven by named RNG streams
(:func:`repro.sim.rng.derive_stream`), so the same seed replays the
same proposal sequence exactly:

``grid``
    Exhaustive declaration-order sweep, truncated at the budget.
``random``
    Budget seeded-uniform samples (duplicates are free — the fleet's
    memo cache absorbs them without a second simulation).
``hill``
    Successive-halving hill-climb: a random cohort screened at
    reduced fidelity (``ops_fraction`` rungs), survivors promoted to
    full fidelity, then greedy adjacent-value climbing from the
    incumbent until the budget runs out.

Fitness is multi-objective lexicographic: *(feasible, primary, kqps)*
where ``feasible`` means zero failed ops and p99 within the SLO,
``primary`` is requests/Joule (or wall-clock ops/sec for engine
sweeps), and sim-time kqps breaks ties.  The *budget* counts proposed
evaluations whether they hit the memo cache or run live — a resumed
search therefore walks the identical trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.rng import derive_stream

from .fleet import FleetRunner, make_trial
from .space import ConfigSpace, config_digest

#: Reduced-fidelity rungs for successive halving: fraction of the
#: scale's ops to simulate while screening, before full-fidelity
#: promotion.
HALVING_RUNGS = (0.25, 0.5)


@dataclass(frozen=True)
class FitnessSpec:
    """What "better" means for this search.

    ``objective`` is ``"rpj"`` (sim-derived requests/Joule — fully
    deterministic) or ``"wall"`` (wall-clock ops/sec, for tuning
    wall-clock-only knobs like the parallel engine; inherently
    machine-noisy, so its *trajectory* digest stays deterministic but
    its winner may not be).  ``slo_p99_us`` caps feasible p99; 0
    disables the SLO.  ``min_availability`` additionally gates
    scenario-fitness rows (closed-loop rows report no availability and
    are unaffected): under churn a config is feasible only if it kept
    at least this fraction of issued requests succeeding.
    """

    objective: str = "rpj"
    slo_p99_us: float = 0.0
    min_availability: float = 0.0

    def __post_init__(self):
        if self.objective not in ("rpj", "wall"):
            raise ValueError("objective must be 'rpj' or 'wall', not %r"
                             % (self.objective,))
        if self.slo_p99_us < 0.0:
            raise ValueError("slo_p99_us must be >= 0")
        if not 0.0 <= self.min_availability <= 1.0:
            raise ValueError("min_availability must be within [0, 1]")

    def feasible(self, row: dict) -> bool:
        if row["failed"]:
            return False
        if self.slo_p99_us > 0.0 and row["p99_latency_us"] > self.slo_p99_us:
            return False
        if (self.min_availability > 0.0
                and row.get("availability", 1.0) < self.min_availability):
            return False
        return True

    def fitness(self, row: dict) -> Tuple[int, float, float]:
        primary = (row["requests_per_joule"] if self.objective == "rpj"
                   else row["wall_ops_per_sec"])
        return (int(self.feasible(row)), primary,
                row["sim_ops_per_sec"] / 1000.0)


class Evaluator:
    """Budgeted, trajectory-recording bridge from points to metrics.

    Every proposed evaluation appends one trajectory row (whether it
    ran live or came from the memo cache) and counts against the
    budget; :meth:`exhausted` tells strategies when to stop.  The
    trajectory digest covers only deterministic coordinates — trial
    index, stage, fidelity, point, figure digest — never wall-clock or
    cache-ness, so cached replays digest identically to live runs.
    """

    def __init__(self, space: ConfigSpace, runner: FleetRunner,
                 fitness: FitnessSpec, scale: str, workload: str,
                 value_size: int, seed: int, budget: int,
                 scenario: Optional[str] = None):
        self.space = space
        self.runner = runner
        self.fitness = fitness
        self.scale = scale
        self.workload = workload
        self.value_size = value_size
        self.seed = seed
        self.budget = budget
        self.scenario = scenario
        self.spent = 0
        self.trials: List[dict] = []

    def remaining(self) -> int:
        return max(self.budget - self.spent, 0)

    def exhausted(self) -> bool:
        return self.spent >= self.budget

    def evaluate(self, points: List[dict], stage: str,
                 ops_fraction: float = 1.0,
                 charge: bool = True) -> List[dict]:
        """Evaluate points (one fleet batch); returns trial records.

        ``charge=False`` exempts the evaluation from the budget (used
        for the mandatory default-config reference trial).
        """
        if charge:
            points = points[:self.remaining()]
            self.spent += len(points)
        if not points:
            return []
        payloads = []
        for point in points:
            point = self.space.check_point(point)
            payloads.append(make_trial(
                point, self.space.overrides(point), self.scale,
                self.workload, self.value_size, self.seed,
                ops_fraction=ops_fraction,
                sim_signature=self.space.sim_signature(point),
                scenario=self.scenario))
        rows = self.runner.run(payloads)
        records = []
        for payload, row in zip(payloads, rows):
            record = {
                "trial": len(self.trials),
                "stage": stage,
                "ops_fraction": ops_fraction,
                "point": payload["point"],
                "point_digest": config_digest(payload["point"]),
                "metrics": row,
                "feasible": self.fitness.feasible(row),
                "fitness": list(self.fitness.fitness(row)),
            }
            self.trials.append(record)
            records.append(record)
        return records

    def best(self, records: Optional[List[dict]] = None,
             full_fidelity_only: bool = True) -> Optional[dict]:
        """Lexicographic argmax; ties broken by earliest trial index."""
        pool = self.trials if records is None else records
        if full_fidelity_only:
            pool = [r for r in pool if r["ops_fraction"] >= 1.0]
        winner = None
        for record in pool:
            if winner is None or tuple(record["fitness"]) > tuple(
                    winner["fitness"]):
                winner = record
        return winner

    def trajectory_digest(self) -> str:
        return config_digest([
            [r["trial"], r["stage"], r["ops_fraction"], r["point_digest"],
             r["metrics"]["figure_digest"]]
            for r in self.trials])


# -- strategies --------------------------------------------------------------

def search_grid(space: ConfigSpace, evaluator: Evaluator) -> None:
    """Declaration-order sweep, truncated at the budget."""
    batch: List[dict] = []
    for point in space.grid():
        batch.append(point)
        if len(batch) == 8:
            evaluator.evaluate(batch, "grid")
            batch = []
        if evaluator.exhausted():
            return
    if batch:
        evaluator.evaluate(batch, "grid")


def search_random(space: ConfigSpace, evaluator: Evaluator,
                  seed: int) -> None:
    """Budget uniform samples from the ``explore.random`` stream."""
    rng = derive_stream(seed, "explore.random")
    while not evaluator.exhausted():
        batch = [space.sample(rng)
                 for _ in range(min(8, evaluator.remaining()))]
        evaluator.evaluate(batch, "random")


def search_hill(space: ConfigSpace, evaluator: Evaluator,
                seed: int) -> None:
    """Successive-halving screen, then greedy adjacent-value climbing.

    Cohort sizing: roughly half the budget funds the screen (a cohort
    at rung fractions, halved per rung), the rest funds full-fidelity
    promotions and climbing.  Every arm of the search is deterministic
    given the seed: the cohort comes from the ``explore.hill`` stream,
    rung survivorship from lexicographic fitness (earliest-trial
    tie-break), and neighborhoods enumerate in declaration order.
    """
    rng = derive_stream(seed, "explore.hill")
    cohort_size = min(max(min(evaluator.budget // 2, 16), 2), space.size())
    cohort = [space.default_point()]
    seen = {config_digest(cohort[0])}
    attempts = 0
    while len(cohort) < cohort_size and attempts < 64 * cohort_size:
        attempts += 1
        point = space.sample(rng)
        digest = config_digest(point)
        if digest in seen:
            continue
        seen.add(digest)
        cohort.append(point)

    survivors = cohort
    for rung, fraction in enumerate(HALVING_RUNGS):
        if evaluator.exhausted() or len(survivors) <= 1:
            break
        records = evaluator.evaluate(survivors, "screen:%d" % rung,
                                     ops_fraction=fraction)
        if not records:
            return
        ranked = sorted(records, key=lambda r: (tuple(r["fitness"]),
                                                -r["trial"]), reverse=True)
        survivors = [r["point"] for r in
                     ranked[:max(len(ranked) // 2, 1)]]

    promoted = evaluator.evaluate(survivors[:4], "promote")
    incumbent = evaluator.best(promoted)
    if incumbent is None:
        return

    while not evaluator.exhausted():
        moves = [point for point in space.neighbors(incumbent["point"])
                 if config_digest(point) not in seen]
        if not moves:
            break
        for point in moves:
            seen.add(config_digest(point))
        records = evaluator.evaluate(moves, "climb")
        challenger = evaluator.best(records)
        if (challenger is None or tuple(challenger["fitness"])
                <= tuple(incumbent["fitness"])):
            break
        incumbent = challenger


STRATEGIES: Dict[str, Callable] = {
    "grid": lambda space, evaluator, seed: search_grid(space, evaluator),
    "random": search_random,
    "hill": search_hill,
}


def run_search(strategy: str, space: ConfigSpace,
               evaluator: Evaluator, seed: int) -> dict:
    """Reference trial for the default config, then the strategy.

    Returns ``{"default": record, "best": record}``; every evaluated
    trial sits in ``evaluator.trials``.
    """
    if strategy not in STRATEGIES:
        raise ValueError("unknown strategy %r (have %s)"
                         % (strategy, ", ".join(sorted(STRATEGIES))))
    default_records = evaluator.evaluate([space.default_point()],
                                         "default", charge=False)
    STRATEGIES[strategy](space, evaluator, seed)
    return {"default": default_records[0] if default_records else None,
            "best": evaluator.best()}
