"""Benchmark harness: per-table/figure experiment runners."""

from repro.bench.harness import (
    FULL,
    QUICK,
    ExperimentResult,
    ScaleProfile,
    build_cluster,
    build_single_store,
    drive_store,
    load_cluster,
    preload_store,
    run_closed_loop,
    run_open_loop,
    scale_profile,
)

__all__ = [
    "ExperimentResult",
    "ScaleProfile",
    "scale_profile",
    "build_cluster",
    "load_cluster",
    "run_closed_loop",
    "run_open_loop",
    "build_single_store",
    "preload_store",
    "drive_store",
    "QUICK",
    "FULL",
]
