"""Shared experiment harness for the paper's tables and figures.

Every experiment module under :mod:`repro.bench.experiments` builds on
these helpers: scaled-down cluster construction, load phases, drivers,
and an :class:`ExperimentResult` table that prints like the paper's
rows and is also machine-checkable by the benchmark suite.

Scales
------
Experiments accept ``scale="quick"`` (seconds of wall time; used by
the pytest-benchmark suite) or ``scale="full"`` (minutes; closer
statistics).  Both are scaled-down relative to the paper's 1.6 B
objects — see DESIGN.md §4 for why the shapes survive scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.baselines import make_cluster
from repro.baselines.fawn.datastore import FawnConfig, FawnDataStore
from repro.baselines.kvell.datastore import KVellConfig, KVellDataStore
from repro.core.cluster import LeedCluster
from repro.core.datastore import LeedDataStore, StoreConfig
from repro.core.jbof import LeedOptions
from repro.core.protocol import ReadPolicy
from repro.hw.platforms import RASPBERRY_PI, SERVER_JBOF, STINGRAY
from repro.hw.ssd import SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry, derive_stream
from repro.hw.ssd import NVMeSSD
from repro.hw.cpu import Core
from repro.workloads.driver import ClosedLoopDriver, DriverStats, OpenLoopDriver
from repro.workloads.ycsb import YCSBWorkload, make_key, make_value

QUICK = "quick"
FULL = "full"
XLARGE = "xlarge"


@dataclass
class ScaleProfile:
    """Knobs that shrink an experiment to simulation-friendly size."""

    num_records: int
    num_ops: int
    concurrency: int
    ssd_capacity_bytes: int
    key_log_bytes: int
    value_log_bytes: int
    block_size: int = 512
    num_jbofs: int = 3
    ssds_per_jbof: int = 2
    num_clients: int = 2
    num_segments: int = 256


def scale_profile(scale: str = QUICK, value_size: int = 1024) -> ScaleProfile:
    """A consistent scaled-down geometry for cluster experiments."""
    if scale == QUICK:
        return ScaleProfile(
            num_records=600,
            num_ops=1500,
            concurrency=24,
            ssd_capacity_bytes=96 << 20,
            key_log_bytes=4 << 20,
            value_log_bytes=24 << 20,
        )
    if scale == XLARGE:
        # Rack-scale geometry for the perf suite's 10^6-key tier: the
        # ``full`` rings are sized for thousands of keys per partition
        # and a million-key load appends an order of magnitude more
        # segment-blob churn than key-log compaction can reclaim
        # through a 16 MB ring (LogFullError mid-load).  Live state
        # per partition is ~8 MB of segments + ~30 MB of values, so
        # these rings keep fill fractions in compaction's comfortable
        # range.  Flash is dict-backed sparse storage, so the larger
        # regions only cost what is actually written.
        return ScaleProfile(
            num_records=1_000_000,
            num_ops=100_000,
            concurrency=256,
            ssd_capacity_bytes=2 << 30,
            key_log_bytes=64 << 20,
            value_log_bytes=256 << 20,
            num_segments=4096,
            num_jbofs=16,
            num_clients=64,
        )
    return ScaleProfile(
        num_records=4000,
        num_ops=12000,
        concurrency=48,
        ssd_capacity_bytes=512 << 20,
        key_log_bytes=16 << 20,
        value_log_bytes=96 << 20,
    )


@dataclass
class ExperimentResult:
    """A named table of result rows, printable like the paper's."""

    name: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **cells) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def row_for(self, **match) -> Optional[Dict[str, object]]:
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        return None

    def format(self) -> str:
        widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows))
                  if self.rows else len(c) for c in self.columns}
        lines = ["== %s ==" % self.name]
        lines.append("  ".join(c.ljust(widths[c]) for c in self.columns))
        lines.append("  ".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c])
                                   for c in self.columns))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self):
        return self.format()


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 10:
            return "%.1f" % value
        return "%.3f" % value
    return str(value)


# -- scaled cluster builders ------------------------------------------------------------

def build_cluster(system: str, scale: str = QUICK, value_size: int = 1024,
                  options: Optional[LeedOptions] = None,
                  flow_control: Optional[bool] = None,
                  crrs: Optional[bool] = None, seed: int = 0,
                  num_nodes: Optional[int] = None,
                  num_clients: Optional[int] = None,
                  replication: int = 3, workers: int = 0,
                  sanitize_seed: Optional[int] = None,
                  replication_protocol: str = "chain") -> LeedCluster:
    """A scaled-down deployment of one of the three systems.

    Platforms keep their stock hardware models (full-speed SSDs, real
    power draws); only the *store geometry* is shrunk so runs finish
    in seconds.  The functional flash is sparse, so unused capacity
    costs nothing.

    ``workers`` selects the partition-parallel engine
    (:class:`~repro.core.cluster.ClusterConfig.workers`): 0 keeps the
    classic single-simulator engine.  ``sanitize_seed`` (exclusive
    with ``workers > 0``) enables the order-dependence sanitizer:
    same-timestamp scheduling ties are permuted by the ``sim.sanitize``
    stream seeded with that value (see ``repro.lint.sanitize``).
    ``replication_protocol`` picks the write/read protocol
    (``"chain"`` | ``"craq"`` | ``"abd"``, see ``repro.core.replication``).
    """
    profile = scale_profile(scale, value_size)
    if system == "leed":
        store = StoreConfig(num_segments=profile.num_segments,
                            key_log_bytes=profile.key_log_bytes,
                            value_log_bytes=profile.value_log_bytes)
    elif system == "fawn":
        store = FawnConfig(log_bytes=profile.key_log_bytes
                           + profile.value_log_bytes)
    elif system == "kvell":
        # Page cache shrunk in proportion to the scaled-down working
        # set: at the paper's 1.6B-object scale the cache covers a
        # negligible fraction of the keys.
        store = KVellConfig(slab_bytes=profile.key_log_bytes
                            + profile.value_log_bytes,
                            slot_bytes=value_size + 64,
                            page_cache_slots=8)
    else:
        raise ValueError("unknown system %r" % system)

    cluster = make_cluster(
        system,
        num_nodes=(num_nodes if num_nodes is not None
                   else (10 if system == "fawn" else profile.num_jbofs)),
        ssds_per_node=(1 if system == "fawn" else profile.ssds_per_jbof),
        num_clients=(num_clients if num_clients is not None
                     else profile.num_clients),
        replication=replication,
        replication_protocol=replication_protocol,
        store_config=store, options=options, seed=seed, workers=workers,
        sanitize=sanitize_seed is not None,
        sanitize_seed=sanitize_seed if sanitize_seed is not None else 0)
    if flow_control is not None:
        for client in cluster.clients:
            client.flow.enabled = flow_control
    if crrs is not None:
        for client in cluster.clients:
            client.crrs = crrs
            client.read_policy = ReadPolicy.CRRS if crrs else ReadPolicy.TAIL
    return cluster


def load_cluster(cluster: LeedCluster, workload: YCSBWorkload,
                 parallelism: int = 32) -> None:
    """Run the YCSB load phase to completion."""
    cluster.start()
    done = cluster.sim.process(
        cluster.load(workload.load_pairs(), parallelism=parallelism),
        name="load")
    cluster.sim.run(until=done)


def run_closed_loop(cluster: LeedCluster, workload: YCSBWorkload,
                    num_ops: int, concurrency: int,
                    record_timeline: bool = False) -> DriverStats:
    """Drive the cluster closed-loop across all its clients."""
    sim = cluster.sim
    share = max(num_ops // len(cluster.clients), 1)
    drivers = [ClosedLoopDriver(sim, client, workload, share,
                                concurrency=max(
                                    concurrency // len(cluster.clients), 1),
                                record_timeline=record_timeline)
               for client in cluster.clients]
    procs = [sim.process(d.run(), name="bench.driver") for d in drivers]
    sim.run(until=sim.all_of(procs))
    stats = drivers[0].stats
    for driver in drivers[1:]:
        stats = stats.merge(driver.stats)
    return stats


def run_open_loop(cluster: LeedCluster, workload: YCSBWorkload,
                  rate_qps: float, duration_us: float,
                  seed: int = 0) -> DriverStats:
    """Offered-load run split evenly across clients."""
    sim = cluster.sim
    per_client_rate = rate_qps / len(cluster.clients)
    drivers = [OpenLoopDriver(sim, client, workload, per_client_rate,
                              duration_us, seed=seed + index)
               for index, client in enumerate(cluster.clients)]
    procs = [sim.process(d.run(), name="bench.odriver") for d in drivers]
    sim.run(until=sim.all_of(procs))
    stats = drivers[0].stats
    for driver in drivers[1:]:
        stats = stats.merge(driver.stats)
    return stats


def latency_summary(cluster: LeedCluster, label: str = "bench") -> list:
    """BENCH_*.json-ready latency rows from the cluster's histograms.

    One row per registered client histogram, with ``count`` /
    ``mean_us`` / ``p50_us`` / ``p95_us`` / ``p99_us`` / ``p999_us``
    columns — the digest-friendly replacement for dumping raw latency
    lists.
    """
    return cluster.metrics.bench_records(label)


# -- single-store (no network) harness: Table 3, Figs 11-13 ----------------------------------

@dataclass
class SingleStore:
    """A bare store on one simulated Stingray SSD + A72 core."""

    sim: Simulator
    store: object
    ssd: NVMeSSD
    core: Core


def build_single_store(system: str, value_size: int = 1024,
                       capacity_bytes: int = 128 << 20,
                       block_size: int = 512, seed: int = 0,
                       platform: str = "stingray",
                       store_kwargs: Optional[dict] = None,
                       sim: Optional[Simulator] = None,
                       ssd: Optional[NVMeSSD] = None,
                       core: Optional[Core] = None,
                       name: str = "bench") -> SingleStore:
    """One store instance on platform hardware, no network.

    ``platform`` picks the SSD/core models: "stingray" (NVMe + 3 GHz
    A72) or "pi" (SD card + 1.4 GHz A53, for the FAWN comparisons of
    Fig. 12).  Pass ``sim``/``ssd``/``core`` to co-locate several
    stores on shared hardware (the Table 3 four-SSD node).
    """
    from dataclasses import replace as _replace
    from repro.hw.ssd import SDCARD_PROFILE
    sim = sim or Simulator()
    rng = RngRegistry(seed)
    if ssd is None:
        if platform == "pi":
            profile = _replace(SDCARD_PROFILE,
                               capacity_bytes=capacity_bytes,
                               block_size=block_size)
        else:
            profile = SSDProfile(capacity_bytes=capacity_bytes,
                                 block_size=block_size)
        ssd = NVMeSSD(sim, profile, rng=rng, name=name + "-nvme")
    if core is None:
        freq = RASPBERRY_PI.freq_ghz if platform == "pi" else STINGRAY.freq_ghz
        core = Core(sim, freq)
    kwargs = store_kwargs or {}
    if system == "leed":
        config = kwargs.pop("config", StoreConfig(
            num_segments=512,
            key_log_bytes=min(capacity_bytes // 8, 16 << 20),
            value_log_bytes=min(capacity_bytes // 2, 64 << 20)))
        store = LeedDataStore(sim, ssd, config, core=core, name=name,
                              **kwargs)
    elif system == "fawn":
        config = kwargs.pop("config", FawnConfig(
            log_bytes=min(capacity_bytes // 2, 64 << 20)))
        store = FawnDataStore(sim, ssd, config, core=core, name=name,
                              **kwargs)
    elif system == "kvell":
        config = kwargs.pop("config", KVellConfig(
            slab_bytes=min(capacity_bytes // 2, 64 << 20),
            slot_bytes=max(value_size + 64, block_size),
            modeled_index_objects=129_000_000))
        store = KVellDataStore(sim, ssd, config, core=core, name=name,
                              **kwargs)
    else:
        raise ValueError("unknown system %r" % system)
    return SingleStore(sim, store, ssd, core)


def preload_store(single: SingleStore, num_records: int, value_size: int,
                  key_prefix: str = "user", seed: int = 7) -> None:
    """Synchronously fill a bare store with records."""
    rng = derive_stream(seed, "bench.preload")

    def loader():
        for record_id in range(num_records):
            key = make_key(record_id, key_prefix)
            value = make_value(rng, value_size)
            result = yield from single.store.put(key, value)
            if result.status != "ok":
                return record_id
        return num_records

    process = single.sim.process(loader(), name="preload")
    loaded = single.sim.run(until=process)
    if loaded != num_records:
        raise RuntimeError("preload stopped at %s/%d records"
                           % (loaded, num_records))


def drive_store(single: SingleStore, workload: YCSBWorkload, num_ops: int,
                concurrency: int = 16) -> DriverStats:
    """Closed-loop driver directly against a bare store."""
    driver = ClosedLoopDriver(single.sim, single.store, workload, num_ops,
                              concurrency=concurrency)
    process = single.sim.process(driver.run(), name="bench.store")
    single.sim.run(until=process)
    return driver.stats
