"""Wall-clock perf regression harness for the simulator datapath.

Usage::

    PYTHONPATH=src python -m repro.bench.perf            # full run
    PYTHONPATH=src python -m repro.bench.perf --smoke    # CI-sized run
    PYTHONPATH=src python -m repro.bench.perf --check    # fail on regression
    PYTHONPATH=src python -m repro.bench.perf --workers 4 --scale large
    PYTHONPATH=src python -m repro.bench.perf --rebaseline

Runs fixed-seed YCSB-B / YCSB-C / write-heavy (WR) workloads against a
quick-scale LEED cluster twice per trial: once with the batching knobs
off (the digest-stable reference datapath) and once with
``LeedOptions(fast_datapath=True, admission_batch=8)``.  Records
wall-clock ops/sec, dispatched events/sec, and sim-time latency
summaries into ``BENCH_perf.json``.

``--workers N`` runs the same workloads on the partition-parallel
engine (:mod:`repro.sim.parallel`).  Rows then also carry per-shard
schedule digests so CI can assert that ``--workers 1`` and
``--workers 4`` executed byte-identical schedules; ``figure_digest``
(a hash of the sim-derived metrics) is recorded in every mode so the
serial engine can be compared too.  ``cpu_count`` is recorded because
parallel wall-clock numbers are meaningless without it.

Wall-clock throughput on shared CI machines is noisy (we have observed
+/-35% across back-to-back identical runs), so the harness interleaves
knobs-off and knobs-on trials and reports the best of N for each mode:
best-of is far more stable than mean under external interference, and
interleaving means both modes sample the same machine conditions.  The
frozen numbers in ``perf_baseline.json`` (measured pre-batching) are
reported alongside for cross-commit context, but ``--check`` compares
against them with a generous margin for exactly this reason.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import sys
import time

from repro.bench.harness import build_cluster, load_cluster, run_closed_loop
from repro.core.jbof import LeedOptions
from repro.workloads.ycsb import YCSBWorkload

SEED = 11
VALUE_SIZE = 256

#: scale -> run shape.  The ``default`` and ``smoke`` shapes must match
#: ``perf_baseline.json``; ``large`` exists for parallel-engine speedup
#: measurements and is intentionally absent from the frozen baseline.
#: ``xlarge`` is the rack-scale tier (16 JBOFs, 64 clients, 10^6 keys,
#: 10^5 ops) backing the fig6/fig13-style claims; it runs the ``xlarge``
#: store geometry (64 MB key / 256 MB value rings, 4096 segments) so
#: three replicas of the keyspace fit with compaction headroom, and
#: pins YCSB-B only — the other workloads add hours, not coverage.
#: ``xlarge-smoke`` keeps the 16-JBOF/64-client geometry at CI-sized
#: record/op counts for worker-count digest cross-checks.
SCALES = {
    "default": {"records": 600, "ops": 3000, "concurrency": 24,
                "num_jbofs": 3, "num_clients": 2},
    "smoke": {"records": 300, "ops": 600, "concurrency": 24,
              "num_jbofs": 3, "num_clients": 2},
    "large": {"records": 2000, "ops": 20000, "concurrency": 64,
              "num_jbofs": 4, "num_clients": 8},
    "xlarge": {"records": 1_000_000, "ops": 100_000, "concurrency": 256,
               "num_jbofs": 16, "num_clients": 64, "profile": "xlarge",
               "load_parallelism": 64, "workloads": ("B",)},
    "xlarge-smoke": {"records": 1200, "ops": 2400, "concurrency": 64,
                     "num_jbofs": 16, "num_clients": 64,
                     "workloads": ("B",)},
}

#: scales captured in perf_baseline.json (``--rebaseline`` rewrites
#: exactly these; ``large`` stays out so the frozen file never churns).
FROZEN_SCALES = ("default", "smoke")

WORKLOADS = ("B", "C", "WR")

#: ``--check`` fails if best knobs-on throughput drops below this
#: fraction of the frozen baseline's knobs-off throughput.  The fast
#: datapath measures ~1.7-2x the baseline, so even a 35% slower
#: machine stays comfortably above 0.7x.
CHECK_FLOOR = 0.7

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")


def fast_options() -> LeedOptions:
    """The knobs-on configuration under test."""
    return LeedOptions(fast_datapath=True, admission_batch=8)


def figure_digest(row: dict) -> str:
    """Hash of the sim-derived metrics of a run row.

    Covers only simulated-time results (never wall-clock), so equal
    digests mean the runs produced the same figures regardless of
    engine or machine speed.
    """
    figure = {key: row[key] for key in
              ("ops", "failed", "sim_elapsed_us", "sim_ops_per_sec",
               "mean_latency_us", "p99_latency_us")}
    blob = json.dumps(figure, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def run_once(workload_name: str, spec: dict, options,
             workers: int = 0) -> dict:
    """One measured closed-loop run; returns a BENCH_perf.json row.

    Only the run phase is timed — cluster build and YCSB load are
    setup.  Events/sec counts simulator events dispatched during the
    run phase (summed across shards when ``workers > 0``).  When
    ``workers > 0`` the row also carries the engine's exchange
    counters (windows, elided shard-windows, pipe round-trips, shm
    bytes) deltaed over the run phase — these are wall-clock-side
    diagnostics and deliberately stay out of ``figure_digest``.
    """
    cluster = build_cluster("leed", scale=spec.get("profile", "quick"),
                            value_size=VALUE_SIZE,
                            seed=SEED, options=options,
                            num_nodes=spec["num_jbofs"],
                            num_clients=spec["num_clients"],
                            workers=workers)
    if workers > 0:
        # Before the first run(), hence before any fork: digests must
        # be enabled while the shards still live in this process.
        cluster.enable_schedule_digests()
    workload = YCSBWorkload(workload_name, num_records=spec["records"],
                            seed=SEED, value_size=VALUE_SIZE)
    load_cluster(cluster, workload,
                 parallelism=spec.get("load_parallelism", 16))
    events_before = cluster.total_events_dispatched()
    exchange_before = cluster.exchange_stats()
    started = time.perf_counter()
    stats = run_closed_loop(cluster, workload, spec["ops"],
                            spec["concurrency"])
    wall_s = time.perf_counter() - started
    events = cluster.total_events_dispatched() - events_before
    exchange_after = cluster.exchange_stats()
    cluster.shutdown()
    cluster.sim.run()
    row = {
        "ops": stats.completed,
        "failed": stats.failed,
        "wall_s": round(wall_s, 4),
        "wall_ops_per_sec": round(stats.completed / wall_s, 1),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
        "events_per_op": round(events / max(stats.completed, 1), 2),
        "sim_elapsed_us": round(stats.elapsed_us, 3),
        "sim_ops_per_sec": round(stats.throughput_qps, 1),
        "mean_latency_us": round(stats.mean_latency_us(), 3),
        "p99_latency_us": round(stats.percentile_us(0.99), 3),
        "workers": workers,
    }
    row["figure_digest"] = figure_digest(row)
    if workers > 0:
        row["shard_digests"] = cluster.shard_digests()
    if exchange_after is not None:
        exchange = {key: exchange_after[key] - exchange_before.get(key, 0)
                    for key in exchange_after}
        sim_seconds = stats.elapsed_us / 1e6
        # Barrier-cost visibility on 1-CPU boxes: fewer pipe
        # round-trips (and windows) per simulated second is the win
        # barrier elision buys even when there is no parallelism.
        exchange["windows_per_sim_sec"] = round(
            exchange["windows"] / sim_seconds, 1) if sim_seconds else 0.0
        exchange["child_messages_per_sim_sec"] = round(
            exchange["child_messages"] / sim_seconds, 1) if sim_seconds else 0.0
        row["exchange"] = exchange
    cluster.stop_workers()
    return row


def scale_workloads(scale: str, requested=None) -> tuple:
    """Workloads to run for ``scale``: the CLI filter if given, else
    the scale's own pin (xlarge runs YCSB-B only), else all three.

    A requested workload the scale does not allow is an error, not a
    silent filter — asking xlarge for WR should fail fast, never
    quietly run B instead.
    """
    allowed = tuple(SCALES[scale].get("workloads", WORKLOADS))
    if requested:
        unknown = [name for name in requested if name not in allowed]
        if unknown:
            raise ValueError(
                "workload(s) %s not available at scale %r "
                "(this scale allows: %s)"
                % (",".join(unknown), scale, ",".join(allowed)))
        return tuple(requested)
    return allowed


def trial_stats(samples: list) -> dict:
    """min/median/stdev across a row's trials, for noise-aware
    comparisons downstream (e.g. explore fitness): best-of-N alone
    hides how wide the machine noise was."""
    return {
        "trials": len(samples),
        "min": round(min(samples), 4),
        "median": round(statistics.median(samples), 4),
        "stdev": round(statistics.stdev(samples), 4)
        if len(samples) > 1 else 0.0,
    }


def measure_scale(scale: str, trials: int, workers: int = 0,
                  workloads=None) -> dict:
    """Interleaved best-of-N knobs-off vs knobs-on rows per workload."""
    spec = SCALES[scale]
    names = scale_workloads(scale, workloads)
    best = {name: {"baseline": None, "fast": None} for name in names}
    samples = {name: {"baseline": [], "fast": []} for name in names}
    for trial in range(trials):
        for name in names:
            for mode, options in (("baseline", None), ("fast", fast_options())):
                row = run_once(name, spec, options, workers=workers)
                row["trials"] = trials
                samples[name][mode].append(row)
                current = best[name][mode]
                if (current is None
                        or row["wall_ops_per_sec"]
                        > current["wall_ops_per_sec"]):
                    best[name][mode] = row
                print("  trial %d %s %s: %.0f ops/s (%.0f events/s)"
                      % (trial, name, mode, row["wall_ops_per_sec"],
                         row["events_per_sec"]))
    # Variance is attached after the fact so it never leaks into
    # figure_digest (computed inside run_once from sim-derived fields).
    for name in names:
        for mode in ("baseline", "fast"):
            rows = samples[name][mode]
            best[name][mode]["trial_stats"] = {
                "wall_s": trial_stats([r["wall_s"] for r in rows]),
                "wall_ops_per_sec": trial_stats(
                    [r["wall_ops_per_sec"] for r in rows]),
            }
    return best


def load_frozen_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def summarize(scale: str, best: dict, frozen: dict) -> dict:
    """Attach frozen-baseline numbers, speedups, and latency parity."""
    frozen_rows = frozen.get("scales", {}).get(scale, {})
    report = {}
    for name in best:
        baseline = best[name]["baseline"]
        fast = best[name]["fast"]
        entry = {"baseline": baseline, "fast": fast}
        entry["speedup_vs_measured_baseline"] = round(
            fast["wall_ops_per_sec"] / baseline["wall_ops_per_sec"], 2)
        # Sim-time latency parity: the fast datapath is a wall-clock
        # optimisation and must not inflate *simulated* latencies.
        # Ratios near 1.0 mean the knobs change how fast we simulate,
        # not what we simulate.
        entry["latency_parity"] = {
            "mean_ratio": round(fast["mean_latency_us"]
                                / baseline["mean_latency_us"], 4),
            "p99_ratio": round(fast["p99_latency_us"]
                               / baseline["p99_latency_us"], 4),
        }
        frozen_row = frozen_rows.get(name)
        if frozen_row:
            entry["frozen_baseline_ops_per_sec"] = (
                frozen_row["wall_ops_per_sec"])
            entry["speedup_vs_frozen_baseline"] = round(
                fast["wall_ops_per_sec"] / frozen_row["wall_ops_per_sec"], 2)
        report[name] = entry
    return report


def check_regressions(report: dict) -> list:
    """Rows failing the ``--check`` floor, as human-readable strings."""
    failures = []
    for name, entry in report.items():
        # Failed ops are a correctness signal, so they gate every
        # scale — including ones with no frozen throughput row.
        if entry["fast"]["failed"] or entry["baseline"]["failed"]:
            failures.append("%s: run reported failed operations" % name)
        frozen_ops = entry.get("frozen_baseline_ops_per_sec")
        if frozen_ops is None:
            continue
        fast_ops = entry["fast"]["wall_ops_per_sec"]
        if fast_ops < CHECK_FLOOR * frozen_ops:
            failures.append(
                "%s: fast datapath %.0f ops/s is below %.0f%% of the "
                "frozen baseline %.0f ops/s"
                % (name, fast_ops, CHECK_FLOOR * 100, frozen_ops))
    return failures


def rebaseline(trials: int) -> None:
    """Re-measure the knobs-off reference and rewrite perf_baseline.json."""
    scales = {}
    for scale in FROZEN_SCALES:
        spec = SCALES[scale]
        rows = {}
        for name in WORKLOADS:
            best = None
            for _ in range(trials):
                row = run_once(name, spec, None)
                row.pop("events", None)
                row.pop("events_per_sec", None)
                row.pop("events_per_op", None)
                if (best is None
                        or row["wall_ops_per_sec"]
                        > best["wall_ops_per_sec"]):
                    best = row
            rows[name] = best
            print("rebaseline %s %s: %.0f ops/s"
                  % (scale, name, best["wall_ops_per_sec"]))
        scales[scale] = rows
    payload = {
        "note": ("Knobs-off wall-clock baseline for repro.bench.perf. "
                 "Regenerate with: python -m repro.bench.perf --rebaseline "
                 "(only on a machine comparable to CI)."),
        "seed": SEED,
        "value_size": VALUE_SIZE,
        "scales": scales,
    }
    with open(BASELINE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % BASELINE_PATH)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI-sized smoke scale only "
                             "(alias for --scale smoke)")
    parser.add_argument("--scale", choices=tuple(SCALES), action="append",
                        help="run this scale (repeatable); without it "
                             "(or --smoke) the frozen-baseline scales "
                             "run")
    parser.add_argument("--workers", type=int, default=0,
                        help="partition-parallel engine worker count "
                             "(0 = classic serial engine; 1 = sharded "
                             "in-process; N>=2 = forked workers)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload filter, e.g. "
                             "'B' or 'B,WR' (default: all the scale "
                             "allows)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if throughput regresses more "
                             "than %d%% below the frozen baseline"
                             % round((1 - CHECK_FLOOR) * 100))
    parser.add_argument("--trials", type=int, default=3,
                        help="interleaved trials per mode (default 3); "
                             "best-of is reported")
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="report path (default BENCH_perf.json)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="re-measure the knobs-off baseline and "
                             "rewrite perf_baseline.json")
    args = parser.parse_args(argv)

    workloads = None
    if args.workloads:
        workloads = tuple(name.strip() for name in args.workloads.split(",")
                          if name.strip())
        unknown = [name for name in workloads if name not in WORKLOADS]
        if unknown:
            parser.error("unknown workloads: %s (choose from %s)"
                         % (",".join(unknown), ",".join(WORKLOADS)))

    if args.rebaseline:
        rebaseline(args.trials)
        return 0

    frozen = load_frozen_baseline()
    if args.scale:
        scales = tuple(args.scale)
    elif args.smoke:
        scales = ("smoke",)
    else:
        scales = FROZEN_SCALES
    # Fail before any measurement if a requested workload is not
    # available at one of the requested scales.
    if workloads:
        for scale in scales:
            try:
                scale_workloads(scale, workloads)
            except ValueError as exc:
                parser.error(str(exc))
    report = {
        "seed": SEED,
        "value_size": VALUE_SIZE,
        "trials": args.trials,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "fast_options": {"fast_datapath": True, "admission_batch": 8},
        "scales": {},
    }
    for scale in scales:
        spec = SCALES[scale]
        print("scale %s (%d records, %d ops, %d concurrency, %d jbofs, "
              "%d clients, profile=%s, workloads=%s, workers=%d)"
              % (scale, spec["records"], spec["ops"], spec["concurrency"],
                 spec["num_jbofs"], spec["num_clients"],
                 spec.get("profile", "quick"),
                 ",".join(scale_workloads(scale, workloads)), args.workers))
        best = measure_scale(scale, args.trials, workers=args.workers,
                             workloads=workloads)
        report["scales"][scale] = summarize(scale, best, frozen)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % args.output)

    for scale, rows in report["scales"].items():
        for name, entry in rows.items():
            print("%s/%s: baseline %.0f ops/s, fast %.0f ops/s "
                  "(%.2fx measured%s), latency parity mean %.3f p99 %.3f"
                  % (scale, name,
                     entry["baseline"]["wall_ops_per_sec"],
                     entry["fast"]["wall_ops_per_sec"],
                     entry["speedup_vs_measured_baseline"],
                     ", %.2fx vs frozen"
                     % entry["speedup_vs_frozen_baseline"]
                     if "speedup_vs_frozen_baseline" in entry else "",
                     entry["latency_parity"]["mean_ratio"],
                     entry["latency_parity"]["p99_ratio"]))

    if args.check:
        failures = []
        for rows in report["scales"].values():
            failures.extend(check_regressions(rows))
        if failures:
            for line in failures:
                print("PERF REGRESSION: %s" % line, file=sys.stderr)
            return 1
        print("perf check passed (floor %.0f%% of frozen baseline)"
              % (CHECK_FLOOR * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
