"""Ablation: CRRS request shipping vs the CRAQ-style alternative.

§3.7: "Another design option is to ask the intermediate node to issue
a version query message (similar to CRAQ) to implicitly serialize
command processing.  We find that this approach generates more
internal traffic across JBOFs and perturbs the traffic pattern."

Both mechanisms are implemented (``LeedOptions.dirty_read_mode``).
This experiment runs a read/write mix hot enough to keep dirty bits
set — so dirty reads actually occur — and compares throughput,
latency, and the cross-JBOF messages each mode generates.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_closed_loop,
    scale_profile,
)
from repro.core.jbof import LeedOptions
from repro.core.replication import DirtyReadMode
from repro.workloads.ycsb import YCSBWorkload


def run(scale: str = QUICK) -> ExperimentResult:
    profile = scale_profile(scale)
    result = ExperimentResult(
        name="Ablation: dirty-read resolution — shipping (CRRS) vs "
             "version queries (CRAQ-style)",
        columns=["mode", "kqps", "avg_ms", "p999_ms", "reads_shipped",
                 "version_queries", "extra_bytes"])
    # Few records + write-heavy mix keeps keys dirty while reads race.
    records = max(profile.num_records // 10, 40)
    for mode in (DirtyReadMode.SHIP, DirtyReadMode.CRAQ):
        options = replace(LeedOptions(), dirty_read_mode=mode)
        workload = YCSBWorkload("A", records, value_size=1024,
                                skew=0.99, seed=77)
        cluster = build_cluster("leed", scale=scale, options=options,
                                seed=77)
        load_cluster(cluster, workload)
        stats = run_closed_loop(cluster, workload, profile.num_ops,
                                profile.concurrency * 4)
        shipped = queries = extra = 0
        for node in cluster.jbofs:
            for runtime in node.vnodes.values():
                shipped += runtime.stats.reads_shipped
                queries += runtime.stats.version_queries
                extra += runtime.stats.version_query_bytes
        result.add(mode=str(mode), kqps=stats.throughput_qps / 1e3,
                   avg_ms=stats.mean_latency_us() / 1e3,
                   p999_ms=stats.percentile_us(0.999) / 1e3,
                   reads_shipped=shipped, version_queries=queries,
                   extra_bytes=extra)
    result.notes = ("The paper chose shipping because version queries "
                    "add cross-JBOF messages; extra_bytes quantifies it.")
    return result


if __name__ == "__main__":
    print(run())
