"""Figure 8: load-aware scheduling (token flow control) on/off.

YCSB-B and YCSB-C across a Zipf skew sweep, offered *past* the
cluster's capacity (open loop), with the coupled intra-JBOF token
engine + inter-JBOF flow controller enabled vs disabled ("w/o LS":
clients fire immediately, engines admit unboundedly, so the shallow
per-partition waiting queues overflow and requests are shed; shed
requests cost client retries, which is where goodput goes to die).

The paper reports +52.2% throughput and -34.4%/-33.7% average/99.9th
latency for YCSB-B, with the protection weakening under severe incast
(skew 0.95/0.99) because token backpropagation needs a round trip.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_open_loop,
    scale_profile,
)
from repro.core.jbof import LeedOptions
from repro.workloads.ycsb import YCSBWorkload

SKEWS_QUICK = (0.1, 0.5, 0.9, 0.99)
SKEWS_FULL = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99)

#: Unbounded token pool == no admission control.
NO_LS_TOKENS = 1 << 20


def run(scale: str = QUICK) -> ExperimentResult:
    profile = scale_profile(scale)
    skews = SKEWS_QUICK if scale == QUICK else SKEWS_FULL
    result = ExperimentResult(
        name="Figure 8: load-aware scheduling on/off",
        columns=["workload", "skew", "ls", "kqps", "avg_ms", "p999_ms"])
    for workload_name in ("B", "C"):
        for skew in skews:
            for load_aware in (True, False):
                options = replace(LeedOptions(), waiting_capacity=48)
                if not load_aware:
                    options = replace(options,
                                      token_capacity=NO_LS_TOKENS,
                                      waiting_capacity=48)
                workload = YCSBWorkload(workload_name, profile.num_records,
                                        value_size=1024, skew=skew, seed=8)
                cluster = build_cluster("leed", scale=scale,
                                        options=options,
                                        flow_control=load_aware, seed=8)
                load_cluster(cluster, workload)
                stats = run_open_loop(cluster, workload,
                                      rate_qps=1.3e6,
                                      duration_us=(30_000.0 if scale == QUICK
                                                   else 150_000.0),
                                      seed=8)
                result.add(workload="YCSB-" + workload_name, skew=skew,
                           ls="on" if load_aware else "off",
                           kqps=stats.throughput_qps / 1e3,
                           avg_ms=stats.mean_latency_us() / 1e3,
                           p999_ms=stats.percentile_us(0.999) / 1e3)
    return result


if __name__ == "__main__":
    print(run())
