"""Figure 11: GET/PUT/DEL latency breakdown (SSD vs CPU+MEM).

The appendix figure: per-command mean latency split into device time
and everything else, for 256 B and 1 KB objects, on an unloaded LEED
store.  The paper finds SSD accesses dominate (~97 %), and PUT adds
only ~10 µs over GET despite its third NVMe access because the first
two accesses overlap.
"""

from __future__ import annotations

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_single_store,
    preload_store,
)
from repro.sim.rng import derive_stream
from repro.workloads.ycsb import make_key, make_value


def run(scale: str = QUICK) -> ExperimentResult:
    num_records = 300 if scale == QUICK else 1500
    ops_per_kind = 150 if scale == QUICK else 1000
    result = ExperimentResult(
        name="Figure 11: command latency breakdown (unloaded LEED store)",
        columns=["command", "value_size", "total_us", "ssd_us",
                 "cpu_mem_us", "ssd_pct"])

    for value_size in (1024, 256):
        single = build_single_store("leed", value_size=value_size, seed=11)
        preload_store(single, num_records, value_size)
        rng = derive_stream(99, "bench.fig11")
        sums = {op: [0.0, 0.0, 0.0, 0] for op in ("GET", "PUT", "DEL")}

        def bench():
            for index in range(ops_per_kind):
                key = make_key(rng.randrange(num_records))
                get = yield from single.store.get(key)
                _tally(sums["GET"], get)
                put = yield from single.store.put(
                    key, make_value(rng, value_size))
                _tally(sums["PUT"], put)
            # Deletions last (fresh keys so DELs always hit).
            for index in range(ops_per_kind):
                key = make_key(index % num_records)
                dele = yield from single.store.delete(key)
                if dele.status == "ok":
                    _tally(sums["DEL"], dele)

        process = single.sim.process(bench(), name="fig11")
        single.sim.run(until=process)

        for command in ("GET", "PUT", "DEL"):
            total, ssd, cpu, count = sums[command]
            if not count:
                continue
            result.add(command=command, value_size=value_size,
                       total_us=total / count, ssd_us=ssd / count,
                       cpu_mem_us=cpu / count,
                       ssd_pct=100.0 * ssd / total if total else 0.0)
    result.notes = ("Paper: SSD accesses dominate (97.4%/97.6% for "
                    "256B/1KB); PUT adds ~10.5us over GET.")
    return result


def _tally(accumulator, op_result) -> None:
    accumulator[0] += op_result.total_us
    accumulator[1] += op_result.ssd_us
    accumulator[2] += op_result.cpu_us
    accumulator[3] += 1


if __name__ == "__main__":
    print(run())
