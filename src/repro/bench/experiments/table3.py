"""Table 3: single-node comparison of FAWN-JBOF, KVell-JBOF, LEED.

All three stores run on the *same* SmartNIC JBOF hardware (the
point of §4.2): 4 NVMe SSDs, one 3 GHz A72 core per SSD.  Rows:

* **Max. Capacity** — analytic, from the real index entry sizes and
  the full-scale 4x960 GB / 8 GB platform (see repro.core.analysis);
* **RND RD/WR latency** — measured at concurrency 1 (unloaded);
* **RND RD/WR throughput** — measured at saturating concurrency.

Expected shape: FAWN has the lowest latency (1 device access) but a
tiny usable capacity; KVell's B-tree is compute-bound on the wimpy
core (worst latency); LEED pays 2+ accesses but exposes nearly the
whole flash and the highest node throughput.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_single_store,
    preload_store,
)
from repro.core.analysis import capacity_table
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.hw.cpu import Core
from repro.hw.platforms import STINGRAY
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.workloads.driver import ClosedLoopDriver, merge_stats
from repro.workloads.ycsb import YCSBWorkload

NUM_SSDS = 4


def _build_node(system: str, value_size: int, num_records: int, seed: int):
    """4 stores on 4 SSDs with 4 cores — one Table 3 node."""
    sim = Simulator()
    rng = RngRegistry(seed)
    singles = []
    for index in range(NUM_SSDS):
        ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=256 << 20,
                                      block_size=512),
                      rng=rng.fork("ssd%d" % index), name="nvme%d" % index)
        core = Core(sim, STINGRAY.freq_ghz, core_id=index)
        single = build_single_store(system, value_size=value_size,
                                    sim=sim, ssd=ssd, core=core,
                                    name="%s%d" % (system, index))
        singles.append(single)
    for index, single in enumerate(singles):
        preload_store(single, num_records, value_size, seed=seed + index,
                      key_prefix="n%d-user" % index)
    return sim, singles


def _measure(system: str, value_size: int, num_records: int, num_ops: int,
             workload_name: str, concurrency: int, seed: int = 3):
    sim, singles = _build_node(system, value_size, num_records, seed)
    drivers = []
    for index, single in enumerate(singles):
        workload = YCSBWorkload(workload_name, num_records,
                                value_size=value_size,
                                distribution="uniform",
                                seed=seed + 17 * index,
                                key_prefix="n%d-user" % index)
        drivers.append(ClosedLoopDriver(
            sim, single.store, workload, num_ops // NUM_SSDS,
            concurrency=max(concurrency // NUM_SSDS, 1)))
    procs = [sim.process(d.run()) for d in drivers]
    sim.run(until=sim.all_of(procs))
    return merge_stats([d.stats for d in drivers])


def run(scale: str = QUICK) -> ExperimentResult:
    num_records = 400 if scale == QUICK else 2000
    num_ops = 1200 if scale == QUICK else 8000
    saturating = 160 if scale == QUICK else 256

    capacities = capacity_table()
    result = ExperimentResult(
        name="Table 3: single-node comparison on a SmartNIC JBOF",
        columns=["system", "value_size", "max_capacity_pct",
                 "rd_lat_us", "wr_lat_us", "rd_kqps", "wr_kqps"])
    label = {"fawn": "FAWN-JBOF", "kvell": "KVell-JBOF", "leed": "LEED"}
    for system in ("fawn", "kvell", "leed"):
        for value_size in (1024, 256):
            # Unloaded latency: concurrency 1.
            lat_rd = _measure(system, value_size, num_records,
                              max(num_ops // 4, 200), "C", NUM_SSDS)
            lat_wr = _measure(system, value_size, num_records,
                              max(num_ops // 4, 200), "WR", NUM_SSDS)
            # Saturating throughput.
            thr_rd = _measure(system, value_size, num_records, num_ops,
                              "C", saturating)
            thr_wr = _measure(system, value_size, num_records, num_ops,
                              "WR", saturating)
            result.add(system=label[system], value_size=value_size,
                       max_capacity_pct=100 * capacities[label[system]
                                                         if label[system] != "LEED"
                                                         else "LEED"][value_size],
                       rd_lat_us=lat_rd.mean_latency_us(),
                       wr_lat_us=lat_wr.mean_latency_us(),
                       rd_kqps=thr_rd.throughput_qps / 1e3,
                       wr_kqps=thr_wr.throughput_qps / 1e3)
    result.notes = ("Capacity is analytic at full 4x960GB/8GB scale; "
                    "latency at concurrency 4 (1 per SSD); throughput at "
                    "concurrency %d." % saturating)
    return result


if __name__ == "__main__":
    print(run())
