"""Ablation: chain replication vs CRAQ-style queries vs ABD quorums.

The pluggable protocol layer (:mod:`repro.core.replication`) makes the
paper's chain/CRRS design directly comparable to two classic
alternatives on identical hardware and workloads:

* ``chain`` — LEED's chain with CRRS request shipping (§3.7);
* ``craq``  — the same chain, dirty reads resolved by version query;
* ``abd``   — ABD majority quorums (no chain, two-phase writes,
  quorum reads with read repair).

Two measurements per protocol:

1. *Steady state* — YCSB-B closed loop: throughput, tail latency, and
   energy per operation (the JBOF power models run regardless of
   protocol, so µJ/op exposes ABD's extra quorum round trips).
2. *Recovery* — a fig9-style churn run (a vnode joins mid-stream)
   during which one JBOF fail-stops and later heals; the WAL replay
   that re-establishes its unacknowledged writes is timed via
   ``node.wal_recovery``.

Run as a module to emit a BENCH-style JSON report::

    PYTHONPATH=src python -m repro.bench.experiments.ablation_replication \
        --output BENCH_replication.json
"""

from __future__ import annotations

import argparse
import json

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_closed_loop,
    scale_profile,
)
from repro.core.replication import protocol_names
from repro.workloads.driver import OpenLoopDriver, merge_stats
from repro.workloads.ycsb import YCSBWorkload

SEED = 23


def _steady_state(protocol: str, scale: str) -> dict:
    """Closed-loop YCSB-B: kqps, p99, and energy per op."""
    profile = scale_profile(scale)
    workload = YCSBWorkload("B", profile.num_records, value_size=1024,
                            seed=SEED)
    cluster = build_cluster("leed", scale=scale, seed=SEED,
                            replication_protocol=protocol)
    load_cluster(cluster, workload)
    energy_before = cluster.energy_joules()
    stats = run_closed_loop(cluster, workload, profile.num_ops,
                            profile.concurrency)
    energy = cluster.energy_joules() - energy_before
    quorum_bytes = 0
    for node in cluster.jbofs:
        for runtime in node.vnodes.values():
            quorum_bytes += runtime.stats.quorum_bytes
            quorum_bytes += runtime.stats.version_query_bytes
    return {
        "kqps": stats.throughput_qps / 1e3,
        "p99_ms": stats.percentile_us(0.99) / 1e3,
        "uj_per_op": energy / max(stats.completed, 1) * 1e6,
        "extra_bytes": quorum_bytes,
    }


def _recovery(protocol: str, scale: str) -> dict:
    """Fig9-style churn with a crash: WAL replay time and counts.

    While an open-loop YCSB-A stream runs, a new vnode joins (COPY
    traffic and view churn, as in Figure 9), one JBOF fail-stops
    mid-churn, and heals a phase later.  Any write the crashed node
    had journaled but not yet retired is replayed on :meth:`recover`;
    the report row times that replay.
    """
    profile = scale_profile(scale)
    phase_us = 60_000.0 if scale == QUICK else 400_000.0
    workload = YCSBWorkload("A", profile.num_records, value_size=1024,
                            seed=SEED)
    cluster = build_cluster("leed", scale=scale, seed=SEED,
                            num_clients=2,
                            replication_protocol=protocol)
    load_cluster(cluster, workload)
    sim = cluster.sim
    victim = cluster.jbofs[1]
    drivers = [OpenLoopDriver(sim, client, workload,
                              45_000.0 / len(cluster.clients),
                              duration_us=3.0 * phase_us,
                              seed=SEED + i)
               for i, client in enumerate(cluster.clients)]
    procs = [sim.process(d.run(), name="ablation.driver")
             for d in drivers]

    def orchestrate():
        yield sim.timeout(phase_us)
        host = cluster.jbofs[0]
        new_vnode_id = host.address + "/pjoin"
        runtime = host._make_vnode(new_vnode_id, host.ssds[-1],
                                   len(host.ssds) - 1, 1, 100)
        host.vnodes[new_vnode_id] = runtime
        joining = sim.process(
            cluster.control_plane.join_vnode(new_vnode_id, host.address),
            name="ablation.join")
        yield sim.timeout(phase_us * 0.25)
        victim.crash()
        yield sim.timeout(phase_us)
        victim.recover()
        yield joining

    sim.process(orchestrate(), name="ablation.orchestrate")
    sim.run(until=sim.all_of(procs))
    # Let replay (and any trailing repair traffic) drain.
    sim.run(until=sim.now + 2.0 * phase_us)
    merge_stats([d.stats for d in drivers])
    report = victim.wal_recovery
    if report is None or report["completed_at_us"] is None:
        return {"recovery_ms": 0.0, "replayed": 0, "skipped": 0,
                "failed": 0}
    return {
        "recovery_ms": (report["completed_at_us"]
                        - report["started_at_us"]) / 1e3,
        "replayed": report["replayed"],
        "skipped": report["skipped"],
        "failed": report["failed"],
    }


def run(scale: str = QUICK) -> ExperimentResult:
    result = ExperimentResult(
        name="Ablation: replication protocol — chain vs craq vs abd",
        columns=["protocol", "kqps", "p99_ms", "uj_per_op",
                 "extra_bytes", "recovery_ms", "replayed", "skipped"])
    for protocol in protocol_names():
        row = {"protocol": protocol}
        row.update(_steady_state(protocol, scale))
        row.update(_recovery(protocol, scale))
        row.pop("failed", None)
        result.add(**row)
    result.notes = ("extra_bytes counts quorum/version-query wire "
                    "traffic; recovery_ms times WAL replay after a "
                    "mid-churn fail-stop.")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="replication-protocol ablation")
    parser.add_argument("--scale", default=QUICK,
                        choices=(QUICK, "full"))
    parser.add_argument("--output", default="BENCH_replication.json",
                        help="report path (default BENCH_replication.json)")
    args = parser.parse_args(argv)
    result = run(scale=args.scale)
    print(result)
    report = {"experiment": "ablation_replication", "scale": args.scale,
              "seed": SEED, "rows": result.rows}
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
