"""Figure 9: throughput variation during a node join and leave.

A LEED cluster (replication 3) runs YCSB-A and YCSB-B (1 KB) at a
steady offered load while the control plane first *joins* a new
virtual node and later *leaves* one.  Completed requests are bucketed
into time windows to trace the throughput timeline.

The paper observes 49.1%/15.9% (A/B) throughput drops after join
start and 66.0%/43.9% after leave start — the cost of COPY traffic
competing for tokens and of view-inconsistency NACK retries — with
recovery after each membership operation completes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    scale_profile,
)
from repro.workloads.driver import OpenLoopDriver, merge_stats
from repro.workloads.ycsb import YCSBWorkload


def run(scale: str = QUICK, workloads=("A", "B")) -> ExperimentResult:
    profile = scale_profile(scale)
    phase_us = 60_000.0 if scale == QUICK else 400_000.0
    bucket_us = phase_us / 8.0
    #: Offered rates near each mix's measured capacity, so COPY
    #: traffic and view-inconsistency NACKs visibly dent throughput.
    rates = {"A": 90_000.0, "B": 540_000.0}
    num_records = profile.num_records * 4
    result = ExperimentResult(
        name="Figure 9: throughput during node join/leave",
        columns=["workload", "bucket_ms", "kqps", "phase"])

    for workload_name in workloads:
        rate = rates.get(workload_name, 100_000.0)
        workload = YCSBWorkload(workload_name, num_records,
                                value_size=1024, seed=9)
        cluster = build_cluster("leed", scale=scale, seed=9,
                                num_clients=2)
        load_cluster(cluster, workload)
        sim = cluster.sim
        start = sim.now
        # Steady offered load across three phases: baseline, join, leave.
        drivers = [OpenLoopDriver(sim, client, workload,
                                  rate / len(cluster.clients),
                                  duration_us=3.2 * phase_us,
                                  seed=90 + i, record_timeline=True)
                   for i, client in enumerate(cluster.clients)]
        procs = [sim.process(d.run(), name="fig9.driver") for d in drivers]

        # Membership operations at phase boundaries.
        new_vnode_id = None

        def orchestrate():
            nonlocal new_vnode_id
            yield sim.timeout(phase_us)
            # Join: a new virtual node on an existing JBOF.
            host = cluster.jbofs[0]
            new_vnode_id = host.address + "/pjoin"
            runtime = host._make_vnode(new_vnode_id, host.ssds[-1],
                                       len(host.ssds) - 1,
                                       1, 100)
            host.vnodes[new_vnode_id] = runtime
            yield from cluster.control_plane.join_vnode(new_vnode_id,
                                                        host.address)
            yield sim.timeout(phase_us)
            # Leave: the node we just joined departs voluntarily.
            yield from cluster.control_plane.leave_vnode(new_vnode_id)

        orchestration = sim.process(orchestrate(), name="fig9.orchestrate")
        sim.run(until=sim.all_of(procs))
        stats = merge_stats([d.stats for d in drivers])
        events = {kind: t for t, kind, _ in
                  cluster.control_plane.membership_events}

        # Bucket completions into the timeline.
        buckets: Dict[int, int] = {}
        for when, _latency in stats.timeline:
            buckets[int((when - start) // bucket_us)] = \
                buckets.get(int((when - start) // bucket_us), 0) + 1
        for bucket_index in sorted(buckets):
            mid = start + (bucket_index + 0.5) * bucket_us
            phase = "steady"
            if events.get("join_start", 1e18) <= mid <= events.get(
                    "join_end", 1e18):
                phase = "joining"
            elif events.get("leave_start", 1e18) <= mid <= events.get(
                    "leave_end", 1e18):
                phase = "leaving"
            elif mid > events.get("leave_end", 1e18):
                phase = "after"
            elif mid > events.get("join_end", 1e18):
                phase = "between"
            result.add(workload="YCSB-" + workload_name,
                       bucket_ms=(bucket_index + 0.5) * bucket_us / 1e3,
                       kqps=buckets[bucket_index] / bucket_us * 1e3,
                       phase=phase)
    return result


if __name__ == "__main__":
    print(run(workloads=("B",)))
