"""Figure 5: energy efficiency (queries/Joule) across three platforms.

Six YCSB workloads x {Embedded-FAWN, Server-KVell, SmartNIC-LEED} x
{256 B, 1 KB} with replication factor 3 and default Zipf skew.  Each
system runs on its native platform at saturating closed-loop load;
energy integrates the back-end power meters over the run.

Paper's headline: SmartNIC-LEED beats Server-KVell by 4.2x/3.8x and
Embedded-FAWN by 17.5x/19.1x on average — except YCSB-C (read-only),
where Server-KVell's in-memory sorted index wins on queries/Joule.
"""

from __future__ import annotations

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_closed_loop,
    scale_profile,
)
from repro.workloads.ycsb import YCSBWorkload

WORKLOAD_SET = ("A", "B", "C", "D", "F", "WR")
SYSTEM_LABELS = {"fawn": "Embedded-FAWN", "kvell": "Server-KVell",
                 "leed": "SmartNIC-LEED"}


def run(scale: str = QUICK, value_sizes=(256, 1024)) -> ExperimentResult:
    profile = scale_profile(scale)
    result = ExperimentResult(
        name="Figure 5: energy efficiency (KQueries/Joule)",
        columns=["workload", "value_size", "system", "kqps", "watts",
                 "kq_per_joule"])
    for value_size in value_sizes:
        for workload_name in WORKLOAD_SET:
            for system in ("fawn", "kvell", "leed"):
                workload = YCSBWorkload(workload_name, profile.num_records,
                                        value_size=value_size, seed=5)
                cluster = build_cluster(system, scale=scale,
                                        value_size=value_size, seed=5)
                load_cluster(cluster, workload)
                # Reset meters after the load phase so only the run
                # phase is billed (as the paper measures).
                energy_before = cluster.energy_joules()
                time_before = cluster.sim.now
                num_ops = profile.num_ops
                concurrency = profile.concurrency * 6
                if system == "fawn":
                    num_ops = max(num_ops // 6, 300)  # Pi nodes are slow
                    concurrency = profile.concurrency
                stats = run_closed_loop(cluster, workload, num_ops,
                                        concurrency)
                energy = cluster.energy_joules() - energy_before
                elapsed_s = (cluster.sim.now - time_before) * 1e-6
                watts = energy / max(elapsed_s, 1e-9)
                result.add(workload="YCSB-" + workload_name,
                           value_size=value_size,
                           system=SYSTEM_LABELS[system],
                           kqps=stats.throughput_qps / 1e3,
                           watts=watts,
                           kq_per_joule=stats.completed / max(energy, 1e-9)
                           / 1e3)
    return result


if __name__ == "__main__":
    print(run(value_sizes=(1024,)))
