"""Figure 1: raw-device energy efficiency vs storage capacity.

The paper's motivation figure: KIOPS/Joule for 4 KB random reads and
4 KB sequential writes on the three platforms as capacity grows from
32 GB to 16 TB (maxing out a node's drive bays before adding nodes).

We *measure* one node's IOPS by driving its devices at saturation in
the simulator, then sweep capacity analytically exactly as the paper
describes (per-node numbers scale linearly with node count; power is
node count x active power plus the per-node switch share).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.bench.harness import QUICK, ExperimentResult
from repro.hw.platforms import (
    RASPBERRY_PI,
    SERVER_JBOF,
    STINGRAY,
    SWITCH_SHARE_W,
    PlatformSpec,
)
from repro.hw.ssd import NVMeSSD
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

IO_BYTES = 4096

#: Capacity sweep points (bytes), as in Figure 1's x-axis.
CAPACITY_POINTS = [32 * 10**9, 256 * 10**9, 2048 * 10**9, 16384 * 10**9]


def measure_node_iops(spec: PlatformSpec, num_ssds: int, pattern: str,
                      num_ios: int = 2000, seed: int = 0) -> float:
    """Saturating IOPS of one node with ``num_ssds`` drives."""
    sim = Simulator()
    rng = RngRegistry(seed)
    ssds = [NVMeSSD(sim, spec.ssd_profile, rng=rng, name="n%d" % i)
            for i in range(num_ssds)]
    per_ssd = num_ios // num_ssds
    stream = rng.stream("fig1")

    def driver(ssd, count):
        blocks = ssd.capacity_bytes // IO_BYTES
        write_cursor = 0
        for index in range(count):
            if pattern == "read":
                offset = stream.randrange(max(blocks // 4, 1)) * IO_BYTES
                yield from ssd.read(offset, IO_BYTES)
            else:
                offset = (write_cursor % max(blocks // 4, 1)) * IO_BYTES
                write_cursor += 1
                yield from ssd.write(offset, b"\xAB" * IO_BYTES)

    # Enough concurrent streams per device to saturate its channels.
    streams_per_ssd = max(spec.ssd_profile.channels, 2)
    procs = []
    for ssd in ssds:
        share = max(per_ssd // streams_per_ssd, 1)
        for _ in range(streams_per_ssd):
            procs.append(sim.process(driver(ssd, share)))
    sim.run(until=sim.all_of(procs))
    total_ios = sum(s.stats.reads_completed + s.stats.writes_completed
                    for s in ssds)
    return total_ios / (sim.now * 1e-6)


def run(scale: str = QUICK) -> ExperimentResult:
    num_ios = 1200 if scale == QUICK else 8000
    result = ExperimentResult(
        name="Figure 1: energy efficiency (KIOPS/J) vs capacity",
        columns=["pattern", "capacity_gb", "platform", "nodes", "ssds",
                 "kiops", "watts", "kiops_per_joule"])
    platforms = [("raspberry-pi", RASPBERRY_PI, "embedded"),
                 ("server-jbof", SERVER_JBOF, "jbof"),
                 ("smartnic-jbof", STINGRAY, "jbof")]
    # Measure per-(platform, ssd count) IOPS once.
    measured: Dict[Tuple[str, int, str], float] = {}
    for label, spec, _kind in platforms:
        for num_ssds in sorted({1, spec.max_ssds}):
            for pattern in ("read", "write"):
                measured[(label, num_ssds, pattern)] = measure_node_iops(
                    spec, num_ssds, pattern, num_ios)

    for pattern in ("read", "write"):
        for capacity in CAPACITY_POINTS:
            for label, spec, kind in platforms:
                per_ssd_capacity = spec.ssd_profile.capacity_bytes
                # Fill a node's bays first, then add nodes (Figure 1).
                if capacity <= per_ssd_capacity * spec.max_ssds:
                    nodes = 1
                    ssds = max(-(-capacity // per_ssd_capacity), 1)
                    ssds = min(ssds, spec.max_ssds)
                else:
                    ssds = spec.max_ssds
                    nodes = -(-capacity // (per_ssd_capacity * ssds))
                per_node_ssds = min(ssds, spec.max_ssds)
                key = (label, per_node_ssds, pattern)
                if key not in measured:
                    measured[key] = measure_node_iops(spec, per_node_ssds,
                                                      pattern, num_ios)
                node_iops = measured[key]
                total_iops = node_iops * nodes
                watts = nodes * (spec.max_power_w + SWITCH_SHARE_W[kind])
                result.add(pattern=pattern, capacity_gb=capacity / 1e9,
                           platform=label, nodes=nodes, ssds=per_node_ssds,
                           kiops=total_iops / 1e3, watts=watts,
                           kiops_per_joule=total_iops / 1e3 / watts)
    return result


if __name__ == "__main__":
    print(run())
