"""Figure 13: the impact of execution parallelism on compaction.

Two ablations on the LEED compactor (§3.3.1):

* **(a) intra-parallelism** — throughput of a store under compaction
  pressure as the number of sub-compaction workers sweeps 1 → 32
  (paper: ~1.9x improvement by 8 workers, then flat);
* **(b) inter-parallelism** — co-scheduling 1 → 4 concurrent
  compactions across partitions on one SSD (paper: +17.9%).

Workloads: WR-ONLY (uniform random writes), MIX-50 (50/50 uniform),
MIX-50-Zip (50/50 Zipf 0.99) — small logs so compaction runs
constantly, making its efficiency visible in end-to-end throughput.
"""

from __future__ import annotations

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_single_store,
    drive_store,
    preload_store,
)
from repro.core.compaction import CompactionConfig, Compactor
from repro.core.datastore import StoreConfig
from repro.hw.cpu import Core
from repro.hw.platforms import STINGRAY
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.driver import ClosedLoopDriver, merge_stats
from repro.workloads.ycsb import YCSBWorkload

WORKLOAD_DEFS = (
    ("WR-ONLY", "WR", "uniform", None),
    ("MIX-50", "A", "uniform", None),
    ("MIX-50-Zip", "A", "zipfian", 0.99),
)

#: Tight store geometry: the value log barely exceeds the live data
#: set, so PUT progress is gated by how fast compaction reclaims
#: space — making compaction efficiency visible in throughput.
def _pressure_config() -> StoreConfig:
    return StoreConfig(num_segments=512,
                       key_log_bytes=2 << 20,
                       value_log_bytes=256 << 10,
                       compact_high_watermark=0.70,
                       compact_low_watermark=0.45)


class BlockingStore:
    """Store adapter: PUTs wait for compaction instead of failing.

    Mirrors a deployment where the engine holds a write until the log
    has room (the paper: "PUTs would be served slowly if the new log
    entry generation speed cannot catch up").
    """

    def __init__(self, sim, store):
        self.sim = sim
        self.store = store

    def get(self, key):
        return (yield from self.store.get(key))

    def delete(self, key):
        return (yield from self.store.delete(key))

    def put(self, key, value):
        while True:
            result = yield from self.store.put(key, value)
            if result.status != "store_full":
                return result
            yield self.sim.timeout(60.0)


def _run_with_compactor(workload_def, subcompactions: int, prefetch: bool,
                        num_records: int, num_ops: int,
                        seed: int = 13) -> float:
    label, mix, dist, skew = workload_def
    single = build_single_store(
        "leed", value_size=256, seed=seed,
        store_kwargs={"config": _pressure_config()})
    compactor = Compactor(single.store,
                          CompactionConfig(prefetch=prefetch,
                                           subcompactions=subcompactions))
    single.sim.process(compactor.maintenance_loop(poll_us=100.0),
                       name="fig13.maint")
    preload_store(single, num_records, 256)
    workload = YCSBWorkload(mix, num_records, value_size=256,
                            distribution=dist, skew=skew or 0.99, seed=seed)
    from repro.workloads.driver import ClosedLoopDriver
    blocking = BlockingStore(single.sim, single.store)
    driver = ClosedLoopDriver(single.sim, blocking, workload, num_ops,
                              concurrency=24)
    process = single.sim.process(driver.run(), name="fig13.drive")
    single.sim.run(until=process)
    return driver.stats.throughput_qps


def run_intra(scale: str = QUICK) -> ExperimentResult:
    """Figure 13a: sub-compaction count sweep."""
    num_records = 450 if scale == QUICK else 600
    num_ops = 900 if scale == QUICK else 6000
    counts = (1, 2, 4, 8, 16) if scale == QUICK else (1, 2, 4, 8, 16, 32)
    result = ExperimentResult(
        name="Figure 13a: compaction intra-parallelism",
        columns=["workload", "subcompactions", "kqps"])
    for workload_def in WORKLOAD_DEFS:
        for count in counts:
            kqps = _run_with_compactor(workload_def, count, True,
                                       num_records, num_ops) / 1e3
            result.add(workload=workload_def[0], subcompactions=count,
                       kqps=kqps)
    return result


def run_inter(scale: str = QUICK) -> ExperimentResult:
    """Figure 13b: co-scheduled compactions across partitions.

    Four partitions share one SSD; a coordinator allows at most K
    partitions to compact concurrently.
    """
    num_records = 450 if scale == QUICK else 600
    num_ops = 2400 if scale == QUICK else 9600
    partitions = 4
    result = ExperimentResult(
        name="Figure 13b: compaction inter-parallelism",
        columns=["workload", "concurrent_compactions", "kqps"])

    for workload_def in WORKLOAD_DEFS:
        label, mix, dist, skew = workload_def
        for limit in (1, 2, 3, 4):
            sim = Simulator()
            rng = RngRegistry(31)
            ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=256 << 20,
                                          block_size=512),
                          rng=rng, name="fig13b")
            cores = [Core(sim, STINGRAY.freq_ghz, core_id=i)
                     for i in range(partitions)]
            singles = []
            compactors = []
            config = _pressure_config()
            for index in range(partitions):
                single = build_single_store(
                    "leed", value_size=256, sim=sim, ssd=ssd,
                    core=cores[index], name="p%d" % index,
                    store_kwargs={
                        "config": config,
                        "region_offset": index * config.total_bytes()})
                singles.append(single)
                compactors.append(Compactor(single.store,
                                            CompactionConfig()))

            # Coordinator: round-robin maintenance, at most ``limit``
            # concurrent compaction rounds.
            slots = [0]

            def coordinator():
                while True:
                    yield sim.timeout(150.0)
                    for compactor in compactors:
                        store = compactor.store
                        if slots[0] >= limit:
                            break
                        if (store.needs_key_compaction()
                                or store.needs_value_compaction()):
                            slots[0] += 1

                            def one(compactor=compactor):
                                try:
                                    yield from compactor.maintenance()
                                finally:
                                    slots[0] -= 1
                            sim.process(one(), name="fig13b.compact")

            sim.process(coordinator(), name="fig13b.coord")
            for index, single in enumerate(singles):
                preload_store(single, num_records, 256,
                              key_prefix="p%d-user" % index,
                              seed=40 + index)
            drivers = []
            for index, single in enumerate(singles):
                workload = YCSBWorkload(mix, num_records, value_size=256,
                                        distribution=dist,
                                        skew=skew or 0.99,
                                        seed=50 + index,
                                        key_prefix="p%d-user" % index)
                drivers.append(ClosedLoopDriver(
                    sim, BlockingStore(sim, single.store), workload,
                    num_ops // partitions, concurrency=10))
            procs = [sim.process(d.run()) for d in drivers]
            sim.run(until=sim.all_of(procs))
            stats = merge_stats([d.stats for d in drivers])
            result.add(workload=label, concurrent_compactions=limit,
                       kqps=stats.throughput_qps / 1e3)
    return result


def run(scale: str = QUICK):
    intra = run_intra(scale)
    inter = run_inter(scale)
    combined = ExperimentResult(
        name="Figure 13: compaction parallelism (a: intra, b: inter)",
        columns=["part", "workload", "x", "kqps"])
    for row in intra.rows:
        combined.add(part="13a", workload=row["workload"],
                     x=row["subcompactions"], kqps=row["kqps"])
    for row in inter.rows:
        combined.add(part="13b", workload=row["workload"],
                     x=row["concurrent_compactions"], kqps=row["kqps"])
    return combined


if __name__ == "__main__":
    print(run())
