"""Figure 12: throughput varying with the PUT percentage.

Single-node throughput as the PUT fraction sweeps 0% → 100%, for
LEED (on Stingray hardware) and the FAWN datastore (on Raspberry Pi
hardware, as deployed).  The paper's observation: LEED drops mildly
as PUTs rise (~3% per +10% PUT); FAWN *rises*, because its
log-structured design makes PUTs (sequential appends) faster than
GETs on its SD-card medium.
"""

from __future__ import annotations

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_single_store,
    drive_store,
    preload_store,
)
from repro.workloads.ycsb import YCSBWorkload

PUT_FRACTIONS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


class MixWorkload(YCSBWorkload):
    """A custom read/update mix at an arbitrary PUT fraction."""

    def __init__(self, put_fraction: float, num_records: int,
                 value_size: int, seed: int = 0):
        super().__init__("A", num_records, value_size=value_size,
                         distribution="uniform", seed=seed)
        self.put_fraction = put_fraction

    def next_operation(self):
        from repro.workloads.ycsb import Operation, make_value
        if self.rng.random() < self.put_fraction:
            return Operation("put", self._existing_key(),
                             make_value(self.rng, self.value_size))
        return Operation("get", self._existing_key())


def run(scale: str = QUICK) -> ExperimentResult:
    num_records = 250 if scale == QUICK else 1200
    num_ops = 800 if scale == QUICK else 5000
    result = ExperimentResult(
        name="Figure 12: throughput vs PUT fraction",
        columns=["system", "put_pct", "kqps"])

    for system, platform, value_size_list in (
            ("leed", "stingray", (1024, 256)),
            ("fawn", "pi", (1024, 256))):
        for value_size in value_size_list:
            for put_fraction in PUT_FRACTIONS:
                single = build_single_store(system, value_size=value_size,
                                            platform=platform, seed=12,
                                            block_size=(4096 if platform == "pi"
                                                        else 512))
                preload_store(single, num_records, value_size)
                workload = MixWorkload(put_fraction, num_records,
                                       value_size, seed=21)
                ops = num_ops if platform != "pi" else max(num_ops // 8, 100)
                stats = drive_store(single, workload, ops,
                                    concurrency=32 if platform != "pi" else 4)
                result.add(system="%s-%s-%dB" % (system.upper(), platform,
                                                 value_size),
                           put_pct=int(put_fraction * 100),
                           kqps=stats.throughput_qps / 1e3)
    result.notes = ("Paper: LEED throughput drops ~3% per +10% PUT; "
                    "FAWN (on Pi) speeds up with PUTs since appends beat "
                    "random reads on its medium.")
    return result


if __name__ == "__main__":
    print(run())
