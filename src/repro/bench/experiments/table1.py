"""Table 1: data-store node comparison across the three platforms.

Analytic, computed from the platform spec sheets: storage-hierarchy
skew (Flash:DRAM), computing density for network (GbE/core) and
storage (4 KB random-read IOPS/core), and the balls-into-bins maximum
load for the paper's cluster sizes (100 embedded nodes vs 3 JBOFs).
"""

from __future__ import annotations

from repro.bench.harness import QUICK, ExperimentResult
from repro.core.analysis import balls_into_bins_max_load, table1_rows


def run(scale: str = QUICK) -> ExperimentResult:
    result = ExperimentResult(
        name="Table 1: platform comparison",
        columns=["platform", "flash_dram_skew", "gbe_per_core",
                 "iops_per_core", "max_load", "max_load_at_1m"])
    for row in table1_rows(embedded_nodes=100, jbof_nodes=3):
        nodes = 100 if "pi" in row.platform else 3
        result.add(platform=row.platform,
                   flash_dram_skew=row.storage_skew_ratio,
                   gbe_per_core=row.network_density_gbps_per_core,
                   iops_per_core=row.storage_density_iops_per_core,
                   max_load=row.max_load_expression,
                   max_load_at_1m=balls_into_bins_max_load(1e6, nodes))
    result.notes = ("Paper row 4 uses m = client request rate; the last "
                    "column evaluates the bound at m = 1M req/s.")
    return result


if __name__ == "__main__":
    print(run())
