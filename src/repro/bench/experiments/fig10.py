"""Figure 10: intra-JBOF data swapping under imbalanced writes.

A write-only Zipf workload sweeping the skewness, on a LEED cluster
with the data-swapping mechanism (§3.6) enabled vs disabled.  The
paper: the higher the skew, the bigger the win — +15.4%/+17.2%
throughput at 0.99 skew for 256 B/1 KB, and ~29%/32% average/99.9th
latency savings across skewed runs, because a burst of writes to one
partition's SSD is absorbed by idle co-located drives.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_closed_loop,
)
from repro.core.jbof import LeedOptions
from repro.workloads.ycsb import YCSBWorkload

SKEWS_QUICK = (0.1, 0.5, 0.9, 0.99)
SKEWS_FULL = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99)


def run(scale: str = QUICK, value_sizes=(1024, 256)) -> ExperimentResult:
    """Single-JBOF, replication 1: the configuration where intra-JBOF
    swapping is the only defense against a write-hot partition, as in
    the paper's controlled experiment."""
    skews = SKEWS_QUICK if scale == QUICK else SKEWS_FULL
    num_records = 2400 if scale == QUICK else 6000
    num_ops = 3000 if scale == QUICK else 12000
    result = ExperimentResult(
        name="Figure 10: data swapping on/off (write-only Zipf)",
        columns=["value_size", "skew", "swap", "kqps", "avg_ms",
                 "p999_ms", "redirects"])
    for value_size in value_sizes:
        for skew in skews:
            for swap in (True, False):
                options = replace(LeedOptions(), enable_swap=swap,
                                  swap_threshold=4)
                workload = YCSBWorkload("WR", num_records,
                                        value_size=value_size, skew=skew,
                                        seed=10)
                cluster = build_cluster("leed", scale=scale,
                                        options=options, seed=10,
                                        num_nodes=1, replication=1,
                                        num_clients=2)
                load_cluster(cluster, workload)
                stats = run_closed_loop(cluster, workload, num_ops, 256)
                redirects = sum(node.swap_redirects
                                for node in cluster.jbofs)
                result.add(value_size=value_size, skew=skew,
                           swap="on" if swap else "off",
                           kqps=stats.throughput_qps / 1e3,
                           avg_ms=stats.mean_latency_us() / 1e3,
                           p999_ms=stats.percentile_us(0.999) / 1e3,
                           redirects=redirects)
    return result


if __name__ == "__main__":
    print(run(value_sizes=(1024,)))
