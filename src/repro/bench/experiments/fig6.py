"""Figures 6 and 14: latency vs throughput for six YCSB workloads.

Open-loop (Poisson) offered-load sweeps against Embedded-FAWN(10),
Server-KVell, and SmartNIC-LEED.  FAWN(100) is the paper's artificial
ideal-linear-scaling point: 10x FAWN(10)'s throughput at identical
latency (§4.4) — synthesized here exactly the same way.

Figure 6 is the 1 KB case; Figure 14 (appendix) is 256 B.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_open_loop,
    scale_profile,
)
from repro.workloads.ycsb import YCSBWorkload

WORKLOAD_SET = ("A", "B", "C", "D", "F", "WR")

#: Offered rates as a fraction of each system's rough saturation point
#: (measured closed-loop in Fig. 5); absolute rates differ by orders
#: of magnitude between a Pi cluster and a JBOF cluster.
RATE_FRACTIONS = (0.3, 0.6, 0.85, 1.0)

#: Rough single-run saturation KQPS per (system); used only to choose
#: sweep rates, the *measured* throughput is reported.
SATURATION_KQPS = {
    "fawn": {"A": 5, "B": 4.5, "C": 4.5, "D": 4, "F": 3.5, "WR": 6},
    "kvell": {"A": 200, "B": 700, "C": 1800, "D": 900, "F": 190, "WR": 110},
    "leed": {"A": 75, "B": 600, "C": 900, "D": 700, "F": 100, "WR": 28},
}


def run(scale: str = QUICK, value_size: int = 1024,
        workloads=WORKLOAD_SET) -> ExperimentResult:
    profile = scale_profile(scale)
    duration_us = 40_000.0 if scale == QUICK else 200_000.0
    result = ExperimentResult(
        name="Figure %s: latency vs throughput (%d B)"
             % ("6" if value_size == 1024 else "14", value_size),
        columns=["workload", "system", "offered_kqps", "kqps",
                 "avg_latency_ms", "p999_ms"])
    for workload_name in workloads:
        for system in ("fawn", "kvell", "leed"):
            saturation = SATURATION_KQPS[system][workload_name] * 1e3
            workload = YCSBWorkload(workload_name, profile.num_records,
                                    value_size=value_size, seed=6)
            for fraction in RATE_FRACTIONS:
                rate = saturation * fraction
                cluster = build_cluster(system, scale=scale,
                                        value_size=value_size, seed=6)
                load_cluster(cluster, workload)
                sweep_duration = duration_us
                if system == "fawn":
                    sweep_duration = duration_us * 10  # Pis are slow
                stats = run_open_loop(cluster, workload, rate,
                                      sweep_duration, seed=int(fraction * 10))
                label = ("Embedded-FAWN(10)" if system == "fawn"
                         else "Server-KVell" if system == "kvell"
                         else "SmartNIC-LEED")
                result.add(workload="YCSB-" + workload_name, system=label,
                           offered_kqps=rate / 1e3,
                           kqps=stats.throughput_qps / 1e3,
                           avg_latency_ms=stats.mean_latency_us() / 1e3,
                           p999_ms=stats.percentile_us(0.999) / 1e3)
                if system == "fawn":
                    # FAWN(100): ideal linear scaling, as in the paper.
                    result.add(workload="YCSB-" + workload_name,
                               system="Embedded-FAWN(100)",
                               offered_kqps=rate / 1e3 * 10,
                               kqps=stats.throughput_qps / 1e3 * 10,
                               avg_latency_ms=stats.mean_latency_us() / 1e3,
                               p999_ms=stats.percentile_us(0.999) / 1e3)
    result.notes = ("FAWN(100) rows are FAWN(10) scaled 10x at equal "
                    "latency — the paper's ideal-scaling assumption.")
    return result


if __name__ == "__main__":
    print(run(workloads=("B",)))
