"""One module per paper table/figure; each exposes ``run(scale)``.

=============  ==========================================================
Module         Reproduces
=============  ==========================================================
``fig1``       Energy efficiency vs capacity, raw 4 KB IO, 3 platforms
``table1``     Platform comparison (skew, compute density, max load)
``table3``     Single-node FAWN-JBOF / KVell-JBOF / LEED
``fig5``       Queries/Joule, 6 YCSB workloads, 3 systems, 2 sizes
``fig6``       Latency vs throughput, 6 workloads (1 KB; fig14 = 256 B)
``fig7``       CRRS on/off vs Zipf skew
``fig8``       Load-aware scheduling on/off vs Zipf skew
``fig9``       Throughput timeline during node join/leave
``fig10``      Intra-JBOF data swapping on/off, write-only Zipf sweep
``fig11``      GET/PUT/DEL latency breakdown (SSD vs CPU+MEM)
``fig12``      Throughput vs PUT fraction, FAWN-Pi vs LEED
``fig13``      Compaction intra-/inter-parallelism
=============  ==========================================================
"""
