"""Ablation: LEED's circular log vs an LSM-tree on SmartNIC hardware.

§3.2.1's design rationale for the circular log: "(2) it consumes
fewer CPU cycles on reads/writes, unlike the sorting or
synchronization phase in an LSM-based or B tree-based
implementation."  With a leveled LSM store implemented
(`repro.baselines.lsm`), the claim is measurable: run the same
write-heavy workload through both designs on identical Stingray
hardware and compare CPU time per operation, write amplification,
and throughput.
"""

from __future__ import annotations

from repro.baselines.lsm.datastore import LsmConfig, LsmDataStore
from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_single_store,
    drive_store,
    preload_store,
)
from repro.core.compaction import Compactor
from repro.core.datastore import StoreConfig
from repro.hw.cpu import Core
from repro.hw.platforms import STINGRAY
from repro.hw.ssd import NVMeSSD, SSDProfile
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.ycsb import YCSBWorkload


def _build_lsm(value_size: int, seed: int):
    sim = Simulator()
    ssd = NVMeSSD(sim, SSDProfile(capacity_bytes=256 << 20, block_size=512,
                                  jitter=0.0), rng=RngRegistry(seed))
    core = Core(sim, STINGRAY.freq_ghz)
    store = LsmDataStore(sim, ssd, LsmConfig(
        region_bytes=192 << 20,
        memtable_bytes=32 << 10,
        l1_bytes=256 << 10))
    store.core = core
    from repro.bench.harness import SingleStore
    return SingleStore(sim, store, ssd, core)


def run(scale: str = QUICK, value_size: int = 256) -> ExperimentResult:
    num_records = 300 if scale == QUICK else 1200
    num_ops = 1200 if scale == QUICK else 6000
    result = ExperimentResult(
        name="Ablation: circular log (LEED) vs leveled LSM-tree",
        columns=["design", "workload", "kqps", "cpu_us_per_op",
                 "write_amplification", "device_mb_written",
                 "dram_bytes_per_obj"])
    for workload_name in ("WR", "A"):
        for design in ("circular-log", "lsm-tree"):
            if design == "circular-log":
                single = build_single_store(
                    "leed", value_size=value_size,
                    capacity_bytes=256 << 20, seed=9)
                compactor = Compactor(single.store)
                single.sim.process(compactor.maintenance_loop(200.0),
                                   name="ablation.maint")
            else:
                single = _build_lsm(value_size, seed=9)
                single.store.core = single.core

                def lsm_maintenance(store=single.store, sim=single.sim):
                    while True:
                        yield sim.timeout(200.0)
                        yield from store.maintenance()

                single.sim.process(lsm_maintenance(),
                                   name="ablation.lsm.maint")
            preload_store(single, num_records, value_size)
            workload = YCSBWorkload(workload_name, num_records,
                                    value_size=value_size,
                                    distribution="uniform", seed=19)
            written_before = single.ssd.stats.write_bytes
            cpu_before = single.core.busy_time_us
            stats = drive_store(single, workload, num_ops, concurrency=16)
            device_written = single.ssd.stats.write_bytes - written_before
            cpu_spent = single.core.busy_time_us - cpu_before
            store_stats = single.store.stats
            if design == "lsm-tree":
                amplification = store_stats.write_amplification()
                dram = (sum(t.index_bytes
                            for level in single.store.levels
                            for t in level)
                        + single.store.memtable_bytes)
            else:
                user = (store_stats.puts
                        * (value_size + 28))  # value entry + key item
                amplification = device_written / max(user, 1)
                dram = single.store.segtbl.footprint_bytes()
            live = max(getattr(single.store, "live_objects", 1), 1)
            result.add(design=design, workload="YCSB-" + workload_name,
                       kqps=stats.throughput_qps / 1e3,
                       cpu_us_per_op=cpu_spent / max(stats.completed, 1),
                       write_amplification=amplification,
                       device_mb_written=device_written / 1e6,
                       dram_bytes_per_obj=dram / live)
    result.notes = ("§3.2.1: the circular log avoids the LSM's merge-"
                    "sort CPU phase and level-rewrite write amplification"
                    "; DRAM/object shows the memtable+filter footprint an"
                    " LSM needs (LEED's SegTbl cost is per *segment* and"
                    " amortizes to <0.5 B/object at scale).")
    return result


if __name__ == "__main__":
    print(run())
