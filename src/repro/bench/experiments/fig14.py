"""Figure 14 (appendix): latency vs throughput at 256 B objects.

The same sweep as Figure 6 with small objects — the paper reports
similar shapes to the 1 KB case, and so do we.
"""

from __future__ import annotations

from repro.bench.experiments import fig6
from repro.bench.harness import QUICK, ExperimentResult


def run(scale: str = QUICK, workloads=fig6.WORKLOAD_SET) -> ExperimentResult:
    return fig6.run(scale, value_size=256, workloads=workloads)


if __name__ == "__main__":
    print(run(workloads=("B",)))
